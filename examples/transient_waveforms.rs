//! Transient analysis of a power grid before and after reduction (the
//! experiment behind Fig. 1 of the paper).
//!
//! Run with `cargo run --example transient_waveforms --release`.

use effres::prelude::EffresConfig;
use effres_powergrid::analysis::{transient_solve, LoadScale, TransientOptions};
use effres_powergrid::generator::{synthetic_grid, SyntheticGridOptions};
use effres_powergrid::reduce::{reduce, ErMethod, ReductionOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = synthetic_grid(&SyntheticGridOptions::small())?;
    let observed = grid.loads().first().expect("grid has loads").node;

    let options = TransientOptions {
        time_step: 1e-11,
        steps: 1000,
        record_nodes: vec![observed],
        load_scale: LoadScale::Pulse {
            period: 2e-9,
            duty: 0.5,
        },
    };
    let original = transient_solve(&grid, &options)?;

    let reduced = reduce(
        &grid,
        &ReductionOptions {
            er_method: ErMethod::ApproxInverse(EffresConfig::default()),
            ..ReductionOptions::default()
        },
    )?;
    let reduced_node = reduced.node_map[observed].expect("load nodes are ports");
    let reduced_solution = transient_solve(
        &reduced.grid,
        &TransientOptions {
            record_nodes: vec![reduced_node],
            ..options
        },
    )?;

    let orig_wave = &original.waveforms[0];
    let red_wave = &reduced_solution.waveforms[0];
    println!(
        "node {observed}: original grid has {} nodes, reduced grid {} nodes",
        grid.node_count(),
        reduced.grid.node_count()
    );
    println!(
        "maximum waveform deviation over 1000 steps: {:.3e} V",
        orig_wave.max_abs_difference(red_wave)
    );
    println!("\ntime(ns)  v_original(V)  v_reduced(V)");
    for i in (0..orig_wave.times.len()).step_by(100) {
        println!(
            "{:7.2}  {:13.6}  {:12.6}",
            orig_wave.times[i] * 1e9,
            orig_wave.values[i],
            red_wave.values[i]
        );
    }
    Ok(())
}
