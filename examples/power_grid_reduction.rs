//! Power-grid reduction with effective-resistance based sparsification
//! (Alg. 1 of the paper), comparing the three effective-resistance methods.
//!
//! Run with `cargo run --example power_grid_reduction --release`.

use effres::prelude::EffresConfig;
use effres::random_projection::RandomProjectionOptions;
use effres_powergrid::analysis::dc_solve;
use effres_powergrid::generator::{synthetic_grid, SyntheticGridOptions};
use effres_powergrid::reduce::{compare_port_voltages, reduce, ErMethod, ReductionOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = synthetic_grid(&SyntheticGridOptions::default())?;
    println!(
        "original grid: {} nodes, {} resistors, {} pads, {} loads",
        grid.node_count(),
        grid.resistor_count(),
        grid.pads().len(),
        grid.loads().len()
    );
    let original = dc_solve(&grid)?;
    println!(
        "original DC solve: max voltage drop {:.3} mV",
        original.max_drop(grid.supply_voltage()) * 1e3
    );

    for (name, method) in [
        ("accurate effective resistances", ErMethod::Exact),
        (
            "random projection (WWW'15)",
            ErMethod::RandomProjection(RandomProjectionOptions::default()),
        ),
        (
            "approximate inverse (Alg. 3)",
            ErMethod::ApproxInverse(EffresConfig::default()),
        ),
    ] {
        let options = ReductionOptions {
            er_method: method,
            ..ReductionOptions::default()
        };
        let reduced = reduce(&grid, &options)?;
        let solution = dc_solve(&reduced.grid)?;
        let (err, rel) =
            compare_port_voltages(&grid, original.voltages(), &reduced, solution.voltages());
        println!(
            "\n{name}:\n  reduced to {} nodes / {} resistors in {:.3} s (ER time {:.3} s)\n  port voltage error {:.4} mV ({:.2} % of the maximum drop)",
            reduced.stats.reduced_nodes,
            reduced.stats.reduced_resistors,
            reduced.stats.total_time.as_secs_f64(),
            reduced.stats.er_time.as_secs_f64(),
            err * 1e3,
            rel * 100.0
        );
    }
    Ok(())
}
