//! Quickstart: compute effective resistances on a weighted graph and compare
//! the paper's Alg. 3 against the exact direct method.
//!
//! Run with `cargo run --example quickstart --release`.

use effres::prelude::*;
use effres_graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64x64 power-grid-like mesh with random conductances.
    let graph = generators::grid_2d(64, 64, 0.5, 2.0, 42)?;
    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Build the Alg. 3 estimator with the paper's default parameters
    // (incomplete-Cholesky drop tolerance 1e-3, pruning threshold 1e-3).
    let config = EffresConfig::default();
    let estimator = EffectiveResistanceEstimator::build(&graph, &config)?;
    let stats = estimator.stats();
    println!(
        "approximate inverse: {} nonzeros ({:.2} x n log2 n), max filled-graph depth {}",
        stats.inverse_nnz, stats.inverse_nnz_ratio, stats.max_depth
    );

    // Compare a few queries against the exact direct method.
    let exact = ExactEffectiveResistance::build(&graph, 1.0)?;
    for &(p, q) in &[(0usize, 1usize), (100, 2100), (17, 4000), (2048, 2049)] {
        let approx = estimator.query(p, q)?;
        let truth = exact.query(p, q)?;
        println!(
            "R({p:4}, {q:4}) = {approx:.6}  (exact {truth:.6}, relative error {:.2e})",
            ((approx - truth) / truth).abs()
        );
    }

    // Effective resistances for every edge — the workload of Table I.
    let all = estimator.query_all_edges(&graph)?;
    let mean = all.iter().sum::<f64>() / all.len() as f64;
    println!("mean edge effective resistance: {mean:.4}");
    Ok(())
}
