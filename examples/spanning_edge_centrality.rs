//! Spanning-edge centrality of a social-network-like graph.
//!
//! The spanning-edge centrality of an edge `e = (u, v)` with weight `w_e` is
//! `w_e · R(u, v)` — the probability that the edge appears in a random
//! spanning tree. This is the original application of the WWW'15 baseline
//! the paper compares against; here we compute it with the paper's Alg. 3.
//!
//! Run with `cargo run --example spanning_edge_centrality --release`.

use effres::centrality::spanning_edge_centralities;
use effres::prelude::*;
use effres_graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A preferential-attachment graph standing in for a collaboration network.
    let graph = generators::preferential_attachment(5000, 3, 1.0, 1.0, 7)?;
    println!(
        "social graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Centrality = w_e * R_e; for a spanning-tree probability it lies in (0, 1].
    let scores = spanning_edge_centralities(&graph, &EffresConfig::default())?;
    let mut centrality: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
    centrality.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite centralities"));

    println!("\nten most critical edges (bridges have centrality ~= 1):");
    for &(id, score) in centrality.iter().take(10) {
        let e = graph.edge(id);
        println!("  edge ({:5}, {:5})  centrality {score:.4}", e.u, e.v);
    }
    println!("\nten most redundant edges:");
    for &(id, score) in centrality.iter().rev().take(10) {
        let e = graph.edge(id);
        println!("  edge ({:5}, {:5})  centrality {score:.4}", e.u, e.v);
    }

    let sum: f64 = centrality.iter().map(|&(_, s)| s).sum();
    println!(
        "\nsum of centralities = {sum:.1} (should be close to n - 1 = {})",
        graph.node_count() - 1
    );
    Ok(())
}
