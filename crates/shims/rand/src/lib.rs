//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this workspace has no access to crates.io, so
//! this crate re-implements the *deterministic* subset of the `rand` 0.8 API
//! the workspace actually uses: [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`], the [`Rng`] sampling methods `gen`,
//! `gen_range` and `gen_bool`, and the [`seq::SliceRandom`] helpers
//! `shuffle` and `choose`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — high quality and
//! fully deterministic, which is all the workspace needs (every caller seeds
//! explicitly; there is intentionally no `from_entropy`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface of the random number generators.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

/// Distribution of "a natural uniform value" per type, backing [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight bias of
                // the plain product is irrelevant for test workloads but this
                // form is exact for power-of-two spans and cheap everywhere.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let u = f64::sample(rng);
        start + u * (end - start)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (stand-in for `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling and element selection.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..1.5);
            assert!((0.25..1.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
