//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of the proptest API the workspace's property tests use:
//! [`Strategy`] with `prop_map`, range and [`any`] strategies, tuple
//! composition, [`ProptestConfig::with_cases`], and the [`proptest!`] /
//! [`prop_assert!`] macros.
//!
//! Sampling is deterministic (a fixed-seed xoshiro-style generator advanced
//! per case) and there is **no shrinking** — a failing case reports the case
//! number so it can be replayed by running the same binary again.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic generator used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fresh deterministic generator.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x853c_49e6_748f_ea9b,
        }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy is just a deterministic sampler.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of type `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.start + 1 == self.len.end {
                self.len.start
            } else {
                self.len.clone().sample(rng)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing a `Vec` of `element` samples with a length drawn
    /// from `len` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(
            !len.is_empty(),
            "cannot sample a length from an empty range"
        );
        VecStrategy { element, len }
    }
}

/// Runner configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy, TestRng,
    };
}

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies for the configured number
/// of cases and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::deterministic();
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);
                    )+
                    let _ = __case;
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Asserts a property holds (panics with the formatted message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..40, y in 0.5f64..2.0) {
            prop_assert!((3..40).contains(&x));
            prop_assert!((0.5..2.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0u32..10, any::<u64>()).prop_map(|(a, s)| (a, s | 1))) {
            prop_assert!(a < 10);
            prop_assert_eq!(b & 1, 1);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = (0usize..100, any::<u64>());
        let mut r1 = TestRng::deterministic();
        let mut r2 = TestRng::deterministic();
        for _ in 0..10 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
