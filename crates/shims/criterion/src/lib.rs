//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate mirrors
//! the slice of the criterion 0.5 API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with plain
//! wall-clock timing instead of criterion's statistical machinery.
//!
//! Each benchmark runs a short warm-up followed by `sample_size` timed
//! samples and reports the minimum, median and mean per-iteration time.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn with_sample_size(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Runs `routine` once as warm-up, then `sample_size` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{label:<40} min {:>12}   median {:>12}   mean {:>12}   ({} samples)",
        human(min),
        human(median),
        human(mean),
        samples.len()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine`.
    pub fn bench_function<F, I>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        I: Into<BenchmarkId>,
    {
        let id = id.into();
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        routine(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        report(&label, &mut bencher.samples);
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<F, I, D>(&mut self, id: I, input: &D, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &D),
        D: ?Sized,
        I: Into<BenchmarkId>,
    {
        let id = id.into();
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        routine(&mut bencher, input);
        let label = format!("{}/{}", self.name, id);
        report(&label, &mut bencher.samples);
        self
    }

    /// Ends the group (prints a separating blank line).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup {
            name,
            sample_size: if self.default_sample_size == 0 {
                10
            } else {
                self.default_sample_size
            },
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .bench_function(BenchmarkId::from_parameter("default"), routine);
        self
    }
}

/// Declares a function running a list of benchmark functions
/// (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main` (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function(BenchmarkId::from_parameter("sum"), |b| {
            b.iter(|| (0..1000u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &k| {
            b.iter(|| (0..1000u64).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_timing_run() {
        benches();
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(
            BenchmarkId::from_parameter("eps_1e-3").to_string(),
            "eps_1e-3"
        );
    }
}
