//! Multilevel graph partitioning.
//!
//! The power-grid reduction flow (Alg. 1 of the paper) starts by partitioning
//! the grid into blocks; the authors use METIS. This module provides a
//! self-contained multilevel recursive-bisection partitioner in the same
//! spirit: heavy-edge-matching coarsening, BFS region-growing initial
//! bisection on the coarsest graph, and greedy Fiduccia–Mattheyses-style
//! boundary refinement during uncoarsening. It optimizes edge cut under a
//! node-balance constraint, which is all the reduction flow needs.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Size (in nodes) below which a graph is bisected directly instead of being
/// coarsened further.
const COARSEN_LIMIT: usize = 64;

/// Allowed imbalance: a side may hold at most `BALANCE_TOLERANCE` times half
/// of the total node weight.
const BALANCE_TOLERANCE: f64 = 1.10;

/// A k-way node partition of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    labels: Vec<usize>,
    parts: usize,
}

impl Partition {
    /// Builds a partition from explicit labels.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if a label is `>= parts`.
    pub fn from_labels(labels: Vec<usize>, parts: usize) -> Result<Self, GraphError> {
        if let Some(&bad) = labels.iter().find(|&&l| l >= parts) {
            return Err(GraphError::InvalidParameter {
                name: "labels",
                message: format!("label {bad} out of range for {parts} parts"),
            });
        }
        Ok(Partition { labels, parts })
    }

    /// Part label of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn part_of(&self, node: NodeId) -> usize {
        self.labels[node]
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// All labels, indexed by node.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Nodes assigned to `part`.
    pub fn members(&self, part: usize) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == part)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of nodes in each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Total weight of edges whose endpoints lie in different parts.
    ///
    /// # Panics
    ///
    /// Panics if the graph has a different number of nodes.
    pub fn edge_cut(&self, graph: &Graph) -> f64 {
        assert_eq!(graph.node_count(), self.labels.len(), "node count mismatch");
        graph
            .edges()
            .filter(|(_, e)| self.labels[e.u] != self.labels[e.v])
            .map(|(_, e)| e.weight)
            .sum()
    }

    /// Ratio of the largest part size to the ideal size `n / parts`.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = sizes.iter().copied().max().unwrap_or(0) as f64;
        let ideal = self.labels.len() as f64 / self.parts as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }
}

/// Partitions a graph into `parts` blocks with multilevel recursive bisection.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `parts == 0` or
/// `parts > graph.node_count()` for a nonempty graph.
pub fn partition_graph(graph: &Graph, parts: usize, seed: u64) -> Result<Partition, GraphError> {
    if parts == 0 {
        return Err(GraphError::InvalidParameter {
            name: "parts",
            message: "must be positive".to_string(),
        });
    }
    let n = graph.node_count();
    if n > 0 && parts > n {
        return Err(GraphError::InvalidParameter {
            name: "parts",
            message: format!("cannot split {n} nodes into {parts} parts"),
        });
    }
    let mut labels = vec![0usize; n];
    if parts == 1 || n == 0 {
        return Partition::from_labels(labels, parts.max(1));
    }
    let all_nodes: Vec<NodeId> = (0..n).collect();
    let weights = vec![1.0; n];
    recursive_bisect(graph, &all_nodes, &weights, parts, 0, &mut labels, seed);
    Partition::from_labels(labels, parts)
}

/// Recursively bisects the subgraph induced by `nodes` into `parts` parts,
/// writing labels `first_label..first_label + parts` into `labels`.
fn recursive_bisect(
    graph: &Graph,
    nodes: &[NodeId],
    node_weights: &[f64],
    parts: usize,
    first_label: usize,
    labels: &mut [usize],
    seed: u64,
) {
    if parts == 1 {
        for &v in nodes {
            labels[v] = first_label;
        }
        return;
    }
    // Build the induced subgraph (local indices 0..nodes.len()).
    let (sub, mapping) = graph
        .induced_subgraph(nodes)
        .expect("nodes come from the caller's valid set");
    let local_weights: Vec<f64> = mapping.iter().map(|&old| node_weights[old]).collect();
    let left_parts = parts / 2;
    let right_parts = parts - left_parts;
    let target_fraction = left_parts as f64 / parts as f64;
    let side = multilevel_bisect(&sub, &local_weights, target_fraction, seed);
    let mut left_nodes = Vec::new();
    let mut right_nodes = Vec::new();
    for (local, &global) in mapping.iter().enumerate() {
        if side[local] {
            right_nodes.push(global);
        } else {
            left_nodes.push(global);
        }
    }
    // Degenerate splits can happen on tiny or disconnected graphs; fall back
    // to an even split by index so recursion always terminates.
    if left_nodes.is_empty() || right_nodes.is_empty() {
        let mut sorted = nodes.to_vec();
        sorted.sort_unstable();
        let cut = (sorted.len() * left_parts) / parts;
        left_nodes = sorted[..cut.max(1).min(sorted.len() - 1)].to_vec();
        right_nodes = sorted[cut.max(1).min(sorted.len() - 1)..].to_vec();
    }
    recursive_bisect(
        graph,
        &left_nodes,
        node_weights,
        left_parts,
        first_label,
        labels,
        seed.wrapping_add(1),
    );
    recursive_bisect(
        graph,
        &right_nodes,
        node_weights,
        right_parts,
        first_label + left_parts,
        labels,
        seed.wrapping_add(2),
    );
}

/// Bisects a graph with the multilevel scheme; returns `side[v] == true` for
/// nodes assigned to the second side. `target_fraction` is the desired weight
/// fraction of the *first* side.
fn multilevel_bisect(
    graph: &Graph,
    node_weights: &[f64],
    target_fraction: f64,
    seed: u64,
) -> Vec<bool> {
    let n = graph.node_count();
    if n <= COARSEN_LIMIT {
        let mut side = initial_bisection(graph, node_weights, target_fraction, seed);
        refine(graph, node_weights, &mut side, target_fraction, 8);
        return side;
    }
    // Coarsen.
    let (coarse, coarse_weights, fine_to_coarse) = coarsen(graph, node_weights, seed);
    // Stop coarsening if it is no longer making progress.
    let side_coarse = if coarse.node_count() as f64 > 0.95 * n as f64 {
        let mut side = initial_bisection(graph, node_weights, target_fraction, seed);
        refine(graph, node_weights, &mut side, target_fraction, 8);
        return side;
    } else {
        multilevel_bisect(
            &coarse,
            &coarse_weights,
            target_fraction,
            seed.wrapping_add(17),
        )
    };
    // Project and refine.
    let mut side: Vec<bool> = (0..n).map(|v| side_coarse[fine_to_coarse[v]]).collect();
    refine(graph, node_weights, &mut side, target_fraction, 4);
    side
}

/// Heavy-edge-matching coarsening. Returns the coarse graph, its node
/// weights, and the fine-to-coarse node map.
fn coarsen(graph: &Graph, node_weights: &[f64], seed: u64) -> (Graph, Vec<f64>, Vec<usize>) {
    let n = graph.node_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut visit_order: Vec<NodeId> = (0..n).collect();
    visit_order.shuffle(&mut rng);
    let mut matched = vec![usize::MAX; n];
    let mut coarse_count = 0usize;
    for &v in &visit_order {
        if matched[v] != usize::MAX {
            continue;
        }
        // Find the heaviest unmatched neighbour.
        let mut best: Option<(f64, NodeId)> = None;
        for (u, e) in graph.neighbors(v) {
            if matched[u] == usize::MAX && u != v {
                let w = graph.edge(e).weight;
                if best.is_none_or(|(bw, _)| w > bw) {
                    best = Some((w, u));
                }
            }
        }
        match best {
            Some((_, u)) => {
                matched[v] = coarse_count;
                matched[u] = coarse_count;
            }
            None => {
                matched[v] = coarse_count;
            }
        }
        coarse_count += 1;
    }
    let mut coarse_weights = vec![0.0; coarse_count];
    for v in 0..n {
        coarse_weights[matched[v]] += node_weights[v];
    }
    // Build the coarse graph, merging parallel edges.
    let mut coarse = Graph::with_capacity(coarse_count, graph.edge_count());
    for (_, e) in graph.edges() {
        let cu = matched[e.u];
        let cv = matched[e.v];
        if cu != cv {
            coarse
                .add_edge(cu, cv, e.weight)
                .expect("coarse indices are in range");
        }
    }
    (coarse.coalesced(), coarse_weights, matched)
}

/// BFS region-growing initial bisection: grow side 0 from a pseudo-peripheral
/// seed until it holds `target_fraction` of the total node weight.
fn initial_bisection(
    graph: &Graph,
    node_weights: &[f64],
    target_fraction: f64,
    seed: u64,
) -> Vec<bool> {
    let n = graph.node_count();
    let total: f64 = node_weights.iter().sum();
    let target = total * target_fraction;
    let mut side = vec![true; n];
    if n == 0 {
        return side;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let start = *(0..n)
        .collect::<Vec<_>>()
        .choose(&mut rng)
        .expect("nonempty");
    let start = farthest_node(graph, start);
    let mut grown = 0.0;
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    let mut order: Vec<NodeId> = Vec::new();
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for (u, _) in graph.neighbors(v) {
            if !visited[u] {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    // Include unreachable nodes at the end so disconnected graphs still split.
    for v in 0..n {
        if !visited[v] {
            order.push(v);
        }
    }
    for v in order {
        if grown >= target {
            break;
        }
        side[v] = false;
        grown += node_weights[v];
    }
    side
}

/// Farthest node from `start` by BFS (a cheap pseudo-peripheral heuristic).
fn farthest_node(graph: &Graph, start: NodeId) -> NodeId {
    let n = graph.node_count();
    let mut dist = vec![usize::MAX; n];
    dist[start] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    let mut far = start;
    while let Some(v) = queue.pop_front() {
        for (u, _) in graph.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                if dist[u] > dist[far] {
                    far = u;
                }
                queue.push_back(u);
            }
        }
    }
    far
}

/// Greedy boundary refinement: repeatedly move the boundary node with the
/// best cut-weight gain to the other side, as long as balance permits.
fn refine(
    graph: &Graph,
    node_weights: &[f64],
    side: &mut [bool],
    target_fraction: f64,
    max_passes: usize,
) {
    let n = graph.node_count();
    let total: f64 = node_weights.iter().sum();
    let target0 = total * target_fraction;
    let target1 = total - target0;
    let max0 = target0 * BALANCE_TOLERANCE + f64::EPSILON;
    let max1 = target1 * BALANCE_TOLERANCE + f64::EPSILON;
    let mut weight0: f64 = (0..n).filter(|&v| !side[v]).map(|v| node_weights[v]).sum();
    let mut weight1 = total - weight0;

    for _ in 0..max_passes {
        let mut improved = false;
        for v in 0..n {
            // Gain of moving v to the other side.
            let mut same = 0.0;
            let mut other = 0.0;
            for (u, e) in graph.neighbors(v) {
                let w = graph.edge(e).weight;
                if side[u] == side[v] {
                    same += w;
                } else {
                    other += w;
                }
            }
            let gain = other - same;
            if gain <= 0.0 {
                continue;
            }
            // Check balance after the move.
            let (new0, new1) = if side[v] {
                (weight0 + node_weights[v], weight1 - node_weights[v])
            } else {
                (weight0 - node_weights[v], weight1 + node_weights[v])
            };
            if new0 > max0 || new1 > max1 || new0 < 0.0 || new1 < 0.0 {
                continue;
            }
            side[v] = !side[v];
            weight0 = new0;
            weight1 = new1;
            improved = true;
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn partition_grid_into_four_balanced_parts() {
        let g = generators::grid_2d(16, 16, 1.0, 1.0, 0).expect("valid");
        let p = partition_graph(&g, 4, 0).expect("valid");
        assert_eq!(p.parts(), 4);
        assert_eq!(p.labels().len(), 256);
        assert!(p.imbalance() < 1.3, "imbalance {} too high", p.imbalance());
        let sizes = p.part_sizes();
        assert!(sizes.iter().all(|&s| s > 0), "empty part: {sizes:?}");
        // The edge cut should be far below the total edge weight.
        assert!(p.edge_cut(&g) < 0.3 * g.total_weight());
    }

    #[test]
    fn partition_into_one_part_is_trivial() {
        let g = generators::grid_2d(4, 4, 1.0, 1.0, 0).expect("valid");
        let p = partition_graph(&g, 1, 0).expect("valid");
        assert_eq!(p.edge_cut(&g), 0.0);
        assert!(p.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn grid_bisection_cut_is_near_optimal() {
        // A 8x8 unit grid has an optimal bisection cut of 8; the multilevel
        // partitioner should get within a factor of ~2.
        let g = generators::grid_2d(8, 8, 1.0, 1.0, 3).expect("valid");
        let p = partition_graph(&g, 2, 3).expect("valid");
        assert!(p.edge_cut(&g) <= 16.0, "cut {} too large", p.edge_cut(&g));
        assert!(p.imbalance() <= 1.25);
    }

    #[test]
    fn partition_handles_disconnected_graphs() {
        let g = Graph::from_edges(6, vec![(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)]).expect("valid");
        let p = partition_graph(&g, 3, 1).expect("valid");
        assert_eq!(p.parts(), 3);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn partition_social_graph() {
        let g = generators::preferential_attachment(400, 3, 1.0, 1.0, 11).expect("valid");
        let p = partition_graph(&g, 8, 11).expect("valid");
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 400);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let g = Graph::new(3);
        assert!(partition_graph(&g, 0, 0).is_err());
        assert!(partition_graph(&g, 5, 0).is_err());
        assert!(Partition::from_labels(vec![0, 3], 2).is_err());
    }

    #[test]
    fn members_and_part_of_agree() {
        let g = generators::grid_2d(6, 6, 1.0, 1.0, 2).expect("valid");
        let p = partition_graph(&g, 3, 2).expect("valid");
        for part in 0..3 {
            for v in p.members(part) {
                assert_eq!(p.part_of(v), part);
            }
        }
    }

    #[test]
    fn empty_graph_partitions() {
        let g = Graph::new(0);
        let p = partition_graph(&g, 1, 0).expect("valid");
        assert_eq!(p.labels().len(), 0);
    }

    #[test]
    fn partition_is_deterministic_for_a_fixed_seed() {
        let g = generators::grid_2d(10, 10, 1.0, 1.0, 4).expect("valid");
        let a = partition_graph(&g, 4, 9).expect("valid");
        let b = partition_graph(&g, 4, 9).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn from_labels_round_trips_accessors() {
        let p = Partition::from_labels(vec![1, 0, 1, 2], 3).expect("valid");
        assert_eq!(p.parts(), 3);
        assert_eq!(p.part_of(0), 1);
        assert_eq!(p.members(1), vec![0, 2]);
        assert_eq!(p.part_sizes(), vec![1, 2, 1]);
        // Imbalance of a 4-node, 3-part split: largest part 2 vs ideal 4/3.
        assert!((p.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edge_cut_counts_only_cross_part_weight() {
        let g = Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)]).expect("valid");
        let p = Partition::from_labels(vec![0, 0, 1, 1], 2).expect("valid");
        assert_eq!(p.edge_cut(&g), 2.0);
    }
}
