//! Connected components.

use crate::graph::{Graph, NodeId};

/// The decomposition of a graph into connected components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component label of each node (labels are `0..count`).
    labels: Vec<usize>,
    /// Number of components.
    count: usize,
    /// The lowest-index node of each component.
    representatives: Vec<NodeId>,
}

impl Components {
    /// Component label of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn label(&self, node: NodeId) -> usize {
        self.labels[node]
    }

    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The lowest-index node of each component, indexed by component label.
    pub fn representatives(&self) -> &[NodeId] {
        &self.representatives
    }

    /// All component labels, indexed by node.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Nodes of the component with the given label.
    pub fn members(&self, label: usize) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == label)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether two nodes are in the same component.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.labels[a] == self.labels[b]
    }
}

/// Computes the connected components of a graph with breadth-first searches.
pub fn connected_components(graph: &Graph) -> Components {
    let n = graph.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut representatives = Vec::new();
    let mut count = 0;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = count;
        representatives.push(start);
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for (u, _) in graph.neighbors(v) {
                if labels[u] == usize::MAX {
                    labels[u] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    Components {
        labels,
        count,
        representatives,
    }
}

/// Whether the graph is connected (a graph with no nodes counts as connected).
pub fn is_connected(graph: &Graph) -> bool {
    graph.node_count() == 0 || connected_components(graph).count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn single_component() {
        let g = Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).expect("valid");
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert!(is_connected(&g));
        assert_eq!(c.representatives(), &[0]);
        assert!(c.same_component(0, 3));
    }

    #[test]
    fn isolated_nodes_are_their_own_components() {
        let g = Graph::new(3);
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.members(1), vec![1]);
        assert!(!c.same_component(0, 2));
        assert!(!is_connected(&g));
    }

    #[test]
    fn two_components_identified() {
        let g = Graph::from_edges(5, vec![(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)]).expect("valid");
        let c = connected_components(&g);
        assert_eq!(c.count(), 2);
        assert_eq!(c.label(0), c.label(1));
        assert_eq!(c.label(2), c.label(4));
        assert_ne!(c.label(0), c.label(2));
        assert_eq!(c.members(c.label(2)), vec![2, 3, 4]);
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::new(0)));
    }
}
