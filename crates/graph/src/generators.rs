//! Synthetic graph generators.
//!
//! The paper's evaluation suite (Table I) spans three structural regimes:
//! mesh-like graphs from circuit simulation (ibmpg*, thupg*, G2/G3 circuit),
//! finite-element meshes (fe_tooth, fe_rotor, NACA0015) and social /
//! collaboration networks (com-DBLP, com-Amazon, com-Youtube, coAu*). The
//! benchmark data itself is not redistributable, so this module generates
//! synthetic stand-ins with the same structural character:
//!
//! * [`grid_2d`] and [`power_grid_mesh`] — planar, low filled-graph depth,
//!   circuit-like;
//! * [`grid_3d`] and [`fe_mesh`] — 3-D meshes with larger separators, like
//!   the finite-element cases;
//! * [`preferential_attachment`] and [`small_world`] — heavy-tailed /
//!   clustered graphs, like the social-network cases.
//!
//! All generators take an explicit seed so experiments are reproducible.

use crate::error::GraphError;
use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 2-D grid graph of `rows x cols` nodes with 4-neighbour connectivity and
/// edge weights drawn uniformly from `[min_weight, max_weight]`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if a dimension is zero or the
/// weight range is invalid.
pub fn grid_2d(
    rows: usize,
    cols: usize,
    min_weight: f64,
    max_weight: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    validate_dims(&[rows, cols])?;
    validate_weights(min_weight, max_weight)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |r: usize, c: usize| r * cols + c;
    let mut g = Graph::with_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(
                    idx(r, c),
                    idx(r, c + 1),
                    draw(&mut rng, min_weight, max_weight),
                )?;
            }
            if r + 1 < rows {
                g.add_edge(
                    idx(r, c),
                    idx(r + 1, c),
                    draw(&mut rng, min_weight, max_weight),
                )?;
            }
        }
    }
    Ok(g)
}

/// A 3-D grid graph of `nx x ny x nz` nodes with 6-neighbour connectivity.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for zero dimensions or an invalid
/// weight range.
pub fn grid_3d(
    nx: usize,
    ny: usize,
    nz: usize,
    min_weight: f64,
    max_weight: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    validate_dims(&[nx, ny, nz])?;
    validate_weights(min_weight, max_weight)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut g = Graph::with_capacity(nx * ny * nz, 3 * nx * ny * nz);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    g.add_edge(
                        idx(x, y, z),
                        idx(x + 1, y, z),
                        draw(&mut rng, min_weight, max_weight),
                    )?;
                }
                if y + 1 < ny {
                    g.add_edge(
                        idx(x, y, z),
                        idx(x, y + 1, z),
                        draw(&mut rng, min_weight, max_weight),
                    )?;
                }
                if z + 1 < nz {
                    g.add_edge(
                        idx(x, y, z),
                        idx(x, y, z + 1),
                        draw(&mut rng, min_weight, max_weight),
                    )?;
                }
            }
        }
    }
    Ok(g)
}

/// A finite-element-like mesh: a 3-D grid with additional "diagonal" edges
/// inside each cell, giving denser rows and larger separators than a plain
/// grid — structurally similar to tetrahedral FE matrices such as fe_tooth.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for zero dimensions or an invalid
/// weight range.
pub fn fe_mesh(
    nx: usize,
    ny: usize,
    nz: usize,
    min_weight: f64,
    max_weight: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    let mut g = grid_3d(nx, ny, nz, min_weight, max_weight, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                // Face diagonals in the x-y plane.
                if x + 1 < nx && y + 1 < ny {
                    g.add_edge(
                        idx(x, y, z),
                        idx(x + 1, y + 1, z),
                        draw(&mut rng, min_weight, max_weight),
                    )?;
                }
                // Body diagonal.
                if x + 1 < nx && y + 1 < ny && z + 1 < nz {
                    g.add_edge(
                        idx(x, y, z),
                        idx(x + 1, y + 1, z + 1),
                        draw(&mut rng, min_weight, max_weight),
                    )?;
                }
            }
        }
    }
    Ok(g)
}

/// Parameters of the IBM-like power-grid mesh generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerGridMeshOptions {
    /// Number of rows of the lower metal layer.
    pub rows: usize,
    /// Number of columns of the lower metal layer.
    pub cols: usize,
    /// Fraction of grid edges that are removed to mimic irregular routing
    /// (0.0 keeps the full mesh; must be `< 0.5` to stay connected in practice).
    pub missing_edge_fraction: f64,
    /// Conductance of wire segments (drawn around this value).
    pub wire_conductance: f64,
    /// Conductance of vias connecting the two layers (typically larger).
    pub via_conductance: f64,
    /// Stride (in grid nodes) of the coarser upper layer.
    pub upper_layer_stride: usize,
    /// Seed of the generator.
    pub seed: u64,
}

impl Default for PowerGridMeshOptions {
    fn default() -> Self {
        PowerGridMeshOptions {
            rows: 32,
            cols: 32,
            missing_edge_fraction: 0.05,
            wire_conductance: 10.0,
            via_conductance: 100.0,
            upper_layer_stride: 4,
            seed: 1,
        }
    }
}

/// A two-layer power-grid-like mesh: a dense lower grid, a coarser upper grid
/// and via edges between them, with a small fraction of missing segments.
/// Structurally similar to the IBM power-grid benchmarks the paper uses.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for invalid options.
pub fn power_grid_mesh(options: PowerGridMeshOptions) -> Result<Graph, GraphError> {
    validate_dims(&[options.rows, options.cols, options.upper_layer_stride])?;
    if !(0.0..0.5).contains(&options.missing_edge_fraction) {
        return Err(GraphError::InvalidParameter {
            name: "missing_edge_fraction",
            message: "must be in [0, 0.5)".to_string(),
        });
    }
    if options.wire_conductance <= 0.0 || options.via_conductance <= 0.0 {
        return Err(GraphError::InvalidParameter {
            name: "conductance",
            message: "wire and via conductances must be positive".to_string(),
        });
    }
    let rows = options.rows;
    let cols = options.cols;
    let mut rng = StdRng::seed_from_u64(options.seed);
    let lower = |r: usize, c: usize| r * cols + c;
    let upper_rows = rows.div_ceil(options.upper_layer_stride);
    let upper_cols = cols.div_ceil(options.upper_layer_stride);
    let n_lower = rows * cols;
    let upper = |r: usize, c: usize| n_lower + r * upper_cols + c;
    let n = n_lower + upper_rows * upper_cols;
    let mut g = Graph::with_capacity(n, 3 * n);

    // Lower layer mesh with a fraction of missing segments.
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen::<f64>() >= options.missing_edge_fraction {
                let w = options.wire_conductance * rng.gen_range(0.5..1.5);
                g.add_edge(lower(r, c), lower(r, c + 1), w)?;
            }
            if r + 1 < rows && rng.gen::<f64>() >= options.missing_edge_fraction {
                let w = options.wire_conductance * rng.gen_range(0.5..1.5);
                g.add_edge(lower(r, c), lower(r + 1, c), w)?;
            }
        }
    }
    // Upper (coarse) layer mesh.
    for r in 0..upper_rows {
        for c in 0..upper_cols {
            if c + 1 < upper_cols {
                let w = 4.0 * options.wire_conductance * rng.gen_range(0.5..1.5);
                g.add_edge(upper(r, c), upper(r, c + 1), w)?;
            }
            if r + 1 < upper_rows {
                let w = 4.0 * options.wire_conductance * rng.gen_range(0.5..1.5);
                g.add_edge(upper(r, c), upper(r + 1, c), w)?;
            }
        }
    }
    // Vias.
    for r in 0..upper_rows {
        for c in 0..upper_cols {
            let lr = (r * options.upper_layer_stride).min(rows - 1);
            let lc = (c * options.upper_layer_stride).min(cols - 1);
            g.add_edge(upper(r, c), lower(lr, lc), options.via_conductance)?;
        }
    }
    // Connect any stray isolated lower nodes (possible when many edges were
    // removed) to a neighbour so the graph is connected.
    let comps = crate::components::connected_components(&g);
    if comps.count() > 1 {
        let main_label = comps.label(upper(0, 0));
        for node in 0..n_lower {
            if comps.label(node) != main_label {
                let r = node / cols;
                let c = node % cols;
                let target = if c + 1 < cols {
                    lower(r, c + 1)
                } else {
                    lower(r, c - 1)
                };
                if comps.label(target) == main_label || target != node {
                    g.add_edge(node, target, options.wire_conductance)?;
                }
            }
        }
    }
    Ok(g)
}

/// A Barabási–Albert preferential-attachment graph: nodes arrive one at a
/// time and connect to `edges_per_node` existing nodes chosen proportionally
/// to their degree. Produces the heavy-tailed degree distribution of the
/// social-network cases in Table I.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `nodes <= edges_per_node` or
/// `edges_per_node == 0`, or for an invalid weight range.
pub fn preferential_attachment(
    nodes: usize,
    edges_per_node: usize,
    min_weight: f64,
    max_weight: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    if edges_per_node == 0 || nodes <= edges_per_node {
        return Err(GraphError::InvalidParameter {
            name: "edges_per_node",
            message: "need 0 < edges_per_node < nodes".to_string(),
        });
    }
    validate_weights(min_weight, max_weight)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(nodes, nodes * edges_per_node);
    // Target list where each node appears once per incident edge endpoint;
    // sampling uniformly from it implements preferential attachment.
    let mut targets: Vec<usize> = Vec::with_capacity(2 * nodes * edges_per_node);
    // Seed clique over the first edges_per_node + 1 nodes.
    for u in 0..=edges_per_node {
        for v in (u + 1)..=edges_per_node {
            g.add_edge(u, v, draw(&mut rng, min_weight, max_weight))?;
            targets.push(u);
            targets.push(v);
        }
    }
    for new_node in (edges_per_node + 1)..nodes {
        let mut chosen: Vec<usize> = Vec::with_capacity(edges_per_node);
        while chosen.len() < edges_per_node {
            let target = targets[rng.gen_range(0..targets.len())];
            if target != new_node && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &t in &chosen {
            g.add_edge(new_node, t, draw(&mut rng, min_weight, max_weight))?;
            targets.push(new_node);
            targets.push(t);
        }
    }
    Ok(g)
}

/// A Watts–Strogatz small-world graph: a ring lattice where each node links
/// to its `neighbors_per_side` nearest neighbours on each side, with every
/// edge's far endpoint rewired with probability `rewire_probability`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for degenerate parameters or an
/// invalid weight range.
pub fn small_world(
    nodes: usize,
    neighbors_per_side: usize,
    rewire_probability: f64,
    min_weight: f64,
    max_weight: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    if nodes < 4 || neighbors_per_side == 0 || 2 * neighbors_per_side >= nodes {
        return Err(GraphError::InvalidParameter {
            name: "nodes/neighbors_per_side",
            message: "need nodes >= 4 and 0 < 2*neighbors_per_side < nodes".to_string(),
        });
    }
    if !(0.0..=1.0).contains(&rewire_probability) {
        return Err(GraphError::InvalidParameter {
            name: "rewire_probability",
            message: "must be in [0, 1]".to_string(),
        });
    }
    validate_weights(min_weight, max_weight)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(nodes, nodes * neighbors_per_side);
    let mut existing = std::collections::HashSet::new();
    for u in 0..nodes {
        for k in 1..=neighbors_per_side {
            let mut v = (u + k) % nodes;
            if rng.gen::<f64>() < rewire_probability {
                // Rewire to a random non-neighbour.
                for _ in 0..16 {
                    let candidate = rng.gen_range(0..nodes);
                    if candidate != u && !existing.contains(&key(u, candidate)) {
                        v = candidate;
                        break;
                    }
                }
            }
            if v != u && existing.insert(key(u, v)) {
                g.add_edge(u, v, draw(&mut rng, min_weight, max_weight))?;
            }
        }
    }
    Ok(g)
}

/// A connected Erdős–Rényi-style random graph: a random spanning tree plus
/// `extra_edges` uniformly random non-duplicate edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `nodes == 0` or the weight
/// range is invalid.
pub fn random_connected(
    nodes: usize,
    extra_edges: usize,
    min_weight: f64,
    max_weight: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    if nodes == 0 {
        return Err(GraphError::InvalidParameter {
            name: "nodes",
            message: "must be positive".to_string(),
        });
    }
    validate_weights(min_weight, max_weight)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(nodes, nodes + extra_edges);
    // Random spanning tree: connect node i to a random earlier node.
    for i in 1..nodes {
        let j = rng.gen_range(0..i);
        g.add_edge(i, j, draw(&mut rng, min_weight, max_weight))?;
    }
    let mut existing: std::collections::HashSet<(usize, usize)> =
        g.edges().map(|(_, e)| (e.u, e.v)).collect();
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges && attempts < 50 * extra_edges + 100 {
        attempts += 1;
        let u = rng.gen_range(0..nodes);
        let v = rng.gen_range(0..nodes);
        if u == v {
            continue;
        }
        let k = key(u, v);
        if existing.insert(k) {
            g.add_edge(u, v, draw(&mut rng, min_weight, max_weight))?;
            added += 1;
        }
    }
    Ok(g)
}

fn key(u: usize, v: usize) -> (usize, usize) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

fn draw(rng: &mut StdRng, min_weight: f64, max_weight: f64) -> f64 {
    if min_weight == max_weight {
        min_weight
    } else {
        rng.gen_range(min_weight..max_weight)
    }
}

fn validate_dims(dims: &[usize]) -> Result<(), GraphError> {
    if dims.contains(&0) {
        return Err(GraphError::InvalidParameter {
            name: "dimensions",
            message: "all dimensions must be positive".to_string(),
        });
    }
    Ok(())
}

fn validate_weights(min_weight: f64, max_weight: f64) -> Result<(), GraphError> {
    if !(min_weight > 0.0) || !(max_weight >= min_weight) || !max_weight.is_finite() {
        return Err(GraphError::InvalidParameter {
            name: "weights",
            message: "need 0 < min_weight <= max_weight < inf".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn grid_2d_counts() {
        let g = grid_2d(4, 5, 1.0, 1.0, 0).expect("valid");
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_3d_counts() {
        let g = grid_3d(3, 3, 3, 0.5, 2.0, 7).expect("valid");
        assert_eq!(g.node_count(), 27);
        assert_eq!(g.edge_count(), 3 * (2 * 3 * 3));
        assert!(is_connected(&g));
    }

    #[test]
    fn fe_mesh_is_denser_than_grid() {
        let grid = grid_3d(4, 4, 4, 1.0, 1.0, 0).expect("valid");
        let fe = fe_mesh(4, 4, 4, 1.0, 1.0, 0).expect("valid");
        assert!(fe.edge_count() > grid.edge_count());
        assert!(is_connected(&fe));
    }

    #[test]
    fn power_grid_mesh_is_connected_and_two_layered() {
        let g = power_grid_mesh(PowerGridMeshOptions::default()).expect("valid");
        assert!(g.node_count() > 32 * 32);
        assert!(is_connected(&g));
    }

    #[test]
    fn power_grid_mesh_rejects_bad_fraction() {
        let o = PowerGridMeshOptions {
            missing_edge_fraction: 0.9,
            ..PowerGridMeshOptions::default()
        };
        assert!(power_grid_mesh(o).is_err());
    }

    #[test]
    fn preferential_attachment_has_heavy_hubs() {
        let g = preferential_attachment(300, 3, 1.0, 1.0, 42).expect("valid");
        assert!(is_connected(&g));
        let max_degree = (0..g.node_count())
            .map(|v| g.degree(v))
            .max()
            .expect("nonempty");
        let avg_degree = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            max_degree as f64 > 3.0 * avg_degree,
            "expected a hub: max {max_degree}, avg {avg_degree}"
        );
    }

    #[test]
    fn preferential_attachment_rejects_bad_parameters() {
        assert!(preferential_attachment(3, 3, 1.0, 1.0, 0).is_err());
        assert!(preferential_attachment(10, 0, 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn small_world_is_connected_for_moderate_rewiring() {
        let g = small_world(200, 3, 0.1, 1.0, 2.0, 5).expect("valid");
        assert!(is_connected(&g));
        assert!(g.edge_count() >= 200 * 3 - 20);
    }

    #[test]
    fn small_world_rejects_bad_parameters() {
        assert!(small_world(3, 1, 0.1, 1.0, 1.0, 0).is_err());
        assert!(small_world(10, 6, 0.1, 1.0, 1.0, 0).is_err());
        assert!(small_world(10, 2, 1.5, 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn random_connected_is_connected() {
        let g = random_connected(100, 150, 0.1, 1.0, 3).expect("valid");
        assert!(is_connected(&g));
        assert!(g.edge_count() >= 99);
    }

    #[test]
    fn generators_are_deterministic_for_a_fixed_seed() {
        let a = preferential_attachment(100, 2, 0.5, 1.5, 9).expect("valid");
        let b = preferential_attachment(100, 2, 0.5, 1.5, 9).expect("valid");
        assert_eq!(a, b);
        let c = grid_2d(5, 5, 0.5, 1.5, 11).expect("valid");
        let d = grid_2d(5, 5, 0.5, 1.5, 11).expect("valid");
        assert_eq!(c, d);
    }

    #[test]
    fn weight_validation() {
        assert!(grid_2d(2, 2, 0.0, 1.0, 0).is_err());
        assert!(grid_2d(2, 2, 2.0, 1.0, 0).is_err());
        assert!(grid_2d(0, 2, 1.0, 1.0, 0).is_err());
    }
}
