//! Breadth-first and depth-first traversals.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Breadth-first search distances (in hops) from `start`.
///
/// Unreachable nodes get `usize::MAX`.
///
/// # Panics
///
/// Panics if `start` is out of bounds.
pub fn bfs_distances(graph: &Graph, start: NodeId) -> Vec<usize> {
    assert!(start < graph.node_count(), "start node out of bounds");
    let mut dist = vec![usize::MAX; graph.node_count()];
    dist[start] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for (u, _) in graph.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Order in which nodes are visited by a breadth-first search from `start`
/// (only nodes reachable from `start` appear).
///
/// # Panics
///
/// Panics if `start` is out of bounds.
pub fn bfs_order(graph: &Graph, start: NodeId) -> Vec<NodeId> {
    assert!(start < graph.node_count(), "start node out of bounds");
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for (u, _) in graph.neighbors(v) {
            if !visited[u] {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// Order in which nodes are first visited by an iterative depth-first search
/// from `start` (only reachable nodes appear).
///
/// # Panics
///
/// Panics if `start` is out of bounds.
pub fn dfs_order(graph: &Graph, start: NodeId) -> Vec<NodeId> {
    assert!(start < graph.node_count(), "start node out of bounds");
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if visited[v] {
            continue;
        }
        visited[v] = true;
        order.push(v);
        // Push neighbours in reverse so lower-numbered nodes are visited first.
        let mut nbrs: Vec<NodeId> = graph.neighbors(v).map(|(u, _)| u).collect();
        nbrs.sort_unstable_by(|a, b| b.cmp(a));
        for u in nbrs {
            if !visited[u] {
                stack.push(u);
            }
        }
    }
    order
}

/// Weighted shortest-path distances from `start` where each edge's length is
/// the *resistance* `1 / weight` (Dijkstra). Used to sanity-check effective
/// resistances: on a tree the effective resistance equals this distance.
///
/// # Panics
///
/// Panics if `start` is out of bounds.
pub fn resistance_distances(graph: &Graph, start: NodeId) -> Vec<f64> {
    assert!(start < graph.node_count(), "start node out of bounds");
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[start] = 0.0;
    // Binary heap of (distance, node) with reversed ordering.
    use std::cmp::Ordering;
    #[derive(PartialEq)]
    struct Item(f64, NodeId);
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.1.cmp(&self.1))
        }
    }
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(Item(0.0, start));
    while let Some(Item(d, v)) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for (u, e) in graph.neighbors(v) {
            let length = 1.0 / graph.edge(e).weight;
            let nd = d + length;
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(Item(nd, u));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1.0))).expect("valid")
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_distance_unreachable_is_max() {
        let g = Graph::from_edges(3, vec![(0, 1, 1.0)]).expect("valid");
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn bfs_and_dfs_orders_cover_reachable_nodes() {
        let g = path(4);
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(dfs_order(&g, 0), vec![0, 1, 2, 3]);
        let star =
            Graph::from_edges(4, vec![(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]).expect("valid");
        assert_eq!(dfs_order(&star, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_order(&star, 0).len(), 4);
    }

    #[test]
    fn resistance_distances_sum_on_path() {
        let g = Graph::from_edges(3, vec![(0, 1, 2.0), (1, 2, 4.0)]).expect("valid");
        let d = resistance_distances(&g, 0);
        assert!((d[1] - 0.5).abs() < 1e-14);
        assert!((d[2] - 0.75).abs() < 1e-14);
    }

    #[test]
    fn resistance_distances_pick_lower_resistance_route() {
        // Two routes from 0 to 2: direct edge with small conductance (high
        // resistance) and a two-hop route with high conductance.
        let g = Graph::from_edges(3, vec![(0, 2, 0.1), (0, 1, 10.0), (1, 2, 10.0)]).expect("valid");
        let d = resistance_distances(&g, 0);
        assert!((d[2] - 0.2).abs() < 1e-12);
    }
}
