//! Streaming graph construction from edge streams of unknown size.
//!
//! Dataset files (SNAP edge lists, Matrix Market coordinates) arrive as a
//! stream of `(u, v, w)` records with no reliable node count up front, with
//! self-loops, and with the same undirected edge often listed in both
//! directions. [`GraphBuilder`] absorbs such a stream edge by edge, grows the
//! node set on demand, and resolves duplicates with a configurable
//! [`MergePolicy`] before producing a [`Graph`].

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use std::collections::HashMap;

/// What to do when the same undirected `(u, v)` pair is seen more than once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Keep the first weight seen, drop the rest. The right choice for
    /// dataset files that list each undirected edge in both directions.
    #[default]
    KeepFirst,
    /// Sum the weights (parallel conductances — the Laplacian semantics).
    Sum,
    /// Keep the largest weight.
    Max,
}

/// Counters describing what the builder saw in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildStats {
    /// Records accepted as edges (after normalization, before merging).
    pub edges_seen: usize,
    /// Self-loop records skipped.
    pub self_loops_skipped: usize,
    /// Records merged into an already-present edge.
    pub duplicates_merged: usize,
}

/// Incremental construction of a [`Graph`] from an edge stream.
///
/// ```
/// use effres_graph::builder::{GraphBuilder, MergePolicy};
///
/// # fn main() -> Result<(), effres_graph::GraphError> {
/// let mut b = GraphBuilder::new(MergePolicy::KeepFirst);
/// b.add_edge(0, 3, 1.0)?; // grows the node set to 4
/// b.add_edge(3, 0, 1.0)?; // reversed duplicate: merged
/// b.add_edge(1, 1, 1.0)?; // self-loop: counted and skipped
/// let (graph, stats) = b.finish();
/// assert_eq!(graph.node_count(), 4);
/// assert_eq!(graph.edge_count(), 1);
/// assert_eq!(stats.self_loops_skipped, 1);
/// assert_eq!(stats.duplicates_merged, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    policy: MergePolicy,
    /// Normalized `(min, max)` pair → index into `edges`.
    index: HashMap<(NodeId, NodeId), usize>,
    edges: Vec<(NodeId, NodeId, f64)>,
    node_count: usize,
    stats: BuildStats,
}

impl GraphBuilder {
    /// A builder with the given duplicate-merge policy.
    pub fn new(policy: MergePolicy) -> Self {
        GraphBuilder {
            policy,
            ..GraphBuilder::default()
        }
    }

    /// Reserves capacity for roughly `edges` edges.
    pub fn with_capacity(policy: MergePolicy, edges: usize) -> Self {
        GraphBuilder {
            policy,
            index: HashMap::with_capacity(edges),
            edges: Vec::with_capacity(edges),
            node_count: 0,
            stats: BuildStats::default(),
        }
    }

    /// Number of distinct nodes implied by the stream so far.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of distinct undirected edges absorbed so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Counters gathered so far.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Ensures the node set covers `0..=node` even if no incident edge ever
    /// arrives (isolated trailing nodes of a dataset header).
    pub fn ensure_node(&mut self, node: NodeId) {
        self.node_count = self.node_count.max(node + 1);
    }

    /// Absorbs one stream record. Self-loops are counted and skipped;
    /// duplicate undirected pairs are resolved per the merge policy; the node
    /// set grows to cover both endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidWeight`] if `weight` is not a finite
    /// positive number.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> Result<(), GraphError> {
        if !(weight > 0.0) || !weight.is_finite() {
            return Err(GraphError::InvalidWeight { weight });
        }
        self.node_count = self.node_count.max(u.max(v) + 1);
        if u == v {
            self.stats.self_loops_skipped += 1;
            return Ok(());
        }
        self.stats.edges_seen += 1;
        let key = if u < v { (u, v) } else { (v, u) };
        match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.stats.duplicates_merged += 1;
                let existing = &mut self.edges[*slot.get()].2;
                match self.policy {
                    MergePolicy::KeepFirst => {}
                    MergePolicy::Sum => *existing += weight,
                    MergePolicy::Max => *existing = existing.max(weight),
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(self.edges.len());
                self.edges.push((key.0, key.1, weight));
            }
        }
        Ok(())
    }

    /// Produces the graph and the stream counters. Edges keep their first-seen
    /// order, so the result is deterministic for a given stream.
    pub fn finish(self) -> (Graph, BuildStats) {
        let mut graph = Graph::with_capacity(self.node_count, self.edges.len());
        for (u, v, w) in self.edges {
            graph
                .add_edge(u, v, w)
                .expect("builder invariants guarantee valid edges");
        }
        (graph, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_nodes_and_merges_reversed_duplicates() {
        let mut b = GraphBuilder::new(MergePolicy::KeepFirst);
        b.add_edge(2, 7, 1.5).expect("valid");
        b.add_edge(7, 2, 9.0).expect("valid");
        b.add_edge(0, 1, 2.0).expect("valid");
        let (g, stats) = b.finish();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(stats.edges_seen, 3);
        assert_eq!(stats.duplicates_merged, 1);
        // KeepFirst: the 9.0 record was dropped.
        assert_eq!(g.edge(0).weight, 1.5);
    }

    #[test]
    fn sum_and_max_policies() {
        let mut sum = GraphBuilder::new(MergePolicy::Sum);
        sum.add_edge(0, 1, 1.0).expect("valid");
        sum.add_edge(1, 0, 2.0).expect("valid");
        let (g, _) = sum.finish();
        assert_eq!(g.edge(0).weight, 3.0);

        let mut max = GraphBuilder::new(MergePolicy::Max);
        max.add_edge(0, 1, 1.0).expect("valid");
        max.add_edge(0, 1, 2.0).expect("valid");
        max.add_edge(0, 1, 0.5).expect("valid");
        let (g, stats) = max.finish();
        assert_eq!(g.edge(0).weight, 2.0);
        assert_eq!(stats.duplicates_merged, 2);
    }

    #[test]
    fn self_loops_are_counted_not_fatal() {
        let mut b = GraphBuilder::new(MergePolicy::KeepFirst);
        b.add_edge(3, 3, 1.0).expect("self-loop is skipped");
        let (g, stats) = b.finish();
        assert_eq!(stats.self_loops_skipped, 1);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn invalid_weights_rejected() {
        let mut b = GraphBuilder::new(MergePolicy::Sum);
        assert!(b.add_edge(0, 1, 0.0).is_err());
        assert!(b.add_edge(0, 1, -1.0).is_err());
        assert!(b.add_edge(0, 1, f64::NAN).is_err());
        assert!(b.add_edge(0, 1, f64::INFINITY).is_err());
    }

    #[test]
    fn ensure_node_covers_isolated_tail() {
        let mut b = GraphBuilder::new(MergePolicy::KeepFirst);
        b.add_edge(0, 1, 1.0).expect("valid");
        b.ensure_node(9);
        let (g, _) = b.finish();
        assert_eq!(g.node_count(), 10);
    }
}
