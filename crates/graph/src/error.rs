//! Error type for graph construction and algorithms.

use std::fmt;

/// Errors produced by graph construction and graph algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was out of bounds.
    NodeOutOfBounds {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An edge weight was not positive and finite.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A self-loop was requested where none is allowed.
    SelfLoop {
        /// The node at both endpoints.
        node: usize,
    },
    /// An algorithm parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node {node} out of bounds for a graph with {node_count} nodes"
                )
            }
            GraphError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} must be positive and finite")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} is not allowed"),
            GraphError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::NodeOutOfBounds {
            node: 5,
            node_count: 3,
        };
        assert!(e.to_string().contains("node 5"));
        assert!(GraphError::SelfLoop { node: 1 }
            .to_string()
            .contains("self-loop"));
        assert!(GraphError::InvalidWeight { weight: -1.0 }
            .to_string()
            .contains("-1"));
    }
}
