//! Weighted graph substrate for the `effres` workspace.
//!
//! The crate provides everything the effective-resistance algorithms and the
//! power-grid reduction flow need from a graph library:
//!
//! * a weighted undirected multigraph type ([`Graph`]) with adjacency queries;
//! * Laplacian and incidence matrix construction ([`laplacian`]);
//! * connected components and traversals ([`components`], [`traversal`]);
//! * synthetic graph generators covering the regimes of the paper's
//!   evaluation suite — regular meshes, power-grid-like meshes,
//!   finite-element-like 3-D meshes, preferential-attachment and small-world
//!   graphs ([`generators`]);
//! * a multilevel edge-cut partitioner standing in for METIS ([`partition`]);
//! * spanning trees ([`spanning`]).
//!
//! # Example
//!
//! ```
//! use effres_graph::{Graph, laplacian::grounded_laplacian};
//!
//! # fn main() -> Result<(), effres_graph::GraphError> {
//! let mut g = Graph::new(3);
//! g.add_edge(0, 1, 1.0)?;
//! g.add_edge(1, 2, 2.0)?;
//! let lap = grounded_laplacian(&g, 1e-6);
//! assert_eq!(lap.nrows(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod components;
pub mod error;
pub mod generators;
pub mod graph;
pub mod laplacian;
pub mod partition;
pub mod spanning;
pub mod traversal;

pub use error::GraphError;
pub use graph::{Edge, EdgeId, Graph, NodeId};
