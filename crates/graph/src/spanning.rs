//! Spanning trees.
//!
//! Spanning trees serve two purposes in this workspace: they provide exact
//! closed-form effective resistances for validation (on a tree, the effective
//! resistance between two nodes is the sum of edge resistances along the
//! unique path), and low-stretch-ish trees seed the sparsifier used in the
//! power-grid reduction flow.

use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;

/// A spanning forest represented by its edge ids and parent pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningForest {
    /// Edge ids of the tree edges.
    edges: Vec<EdgeId>,
    /// Parent of every node in its BFS/greedy tree (`usize::MAX` for roots).
    parent: Vec<NodeId>,
}

impl SpanningForest {
    /// Edge ids of the forest.
    pub fn edge_ids(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Parent array (roots have `usize::MAX`).
    pub fn parent(&self) -> &[NodeId] {
        &self.parent
    }

    /// Number of tree edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the forest has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether an edge id is part of the forest.
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        self.edges.contains(&edge)
    }
}

/// Builds a breadth-first spanning forest (one BFS tree per component).
pub fn bfs_spanning_forest(graph: &Graph) -> SpanningForest {
    let n = graph.node_count();
    let mut parent = vec![usize::MAX; n];
    let mut visited = vec![false; n];
    let mut edges = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for (u, e) in graph.neighbors(v) {
                if !visited[u] {
                    visited[u] = true;
                    parent[u] = v;
                    edges.push(e);
                    queue.push_back(u);
                }
            }
        }
    }
    SpanningForest { edges, parent }
}

/// Builds a maximum-weight spanning forest with Kruskal's algorithm (heaviest
/// conductances first). Heavy edges carry most of the current, so this is the
/// natural "backbone" tree for sparsification.
pub fn maximum_weight_spanning_forest(graph: &Graph) -> SpanningForest {
    let n = graph.node_count();
    let mut order: Vec<EdgeId> = (0..graph.edge_count()).collect();
    order.sort_unstable_by(|&a, &b| {
        graph
            .edge(b)
            .weight
            .partial_cmp(&graph.edge(a).weight)
            .expect("edge weights are finite")
    });
    let mut uf = UnionFind::new(n);
    let mut edges = Vec::new();
    let mut parent = vec![usize::MAX; n];
    for e in order {
        let edge = graph.edge(e);
        if uf.union(edge.u, edge.v) {
            edges.push(e);
            // Parent pointers are only meaningful per BFS tree; record a
            // simple orientation for inspection.
            if parent[edge.v] == usize::MAX && edge.v != edge.u {
                parent[edge.v] = edge.u;
            } else {
                parent[edge.u] = edge.v;
            }
        }
    }
    SpanningForest { edges, parent }
}

/// Union-find with path compression and union by size.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unites the sets of `a` and `b`; returns `true` if they were distinct.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// Effective resistance between `p` and `q` along the unique tree path of a
/// spanning tree (sum of `1 / weight` over path edges); `None` if `p` and `q`
/// are in different trees of the forest.
///
/// # Panics
///
/// Panics if `p` or `q` is out of bounds.
pub fn tree_path_resistance(
    graph: &Graph,
    forest: &SpanningForest,
    p: NodeId,
    q: NodeId,
) -> Option<f64> {
    assert!(
        p < graph.node_count() && q < graph.node_count(),
        "node out of bounds"
    );
    if p == q {
        return Some(0.0);
    }
    // Build the forest adjacency.
    let n = graph.node_count();
    let mut adj: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
    for &e in forest.edge_ids() {
        let edge = graph.edge(e);
        adj[edge.u].push((edge.v, 1.0 / edge.weight));
        adj[edge.v].push((edge.u, 1.0 / edge.weight));
    }
    // BFS from p accumulating path resistance.
    let mut dist = vec![f64::INFINITY; n];
    dist[p] = 0.0;
    let mut queue = VecDeque::new();
    queue.push_back(p);
    while let Some(v) = queue.pop_front() {
        if v == q {
            return Some(dist[q]);
        }
        for &(u, r) in &adj[v] {
            if dist[u].is_infinite() {
                dist[u] = dist[v] + r;
                queue.push_back(u);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn grid(rows: usize, cols: usize) -> Graph {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut g = Graph::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    g.add_edge(idx(r, c), idx(r, c + 1), 1.0).expect("valid");
                }
                if r + 1 < rows {
                    g.add_edge(idx(r, c), idx(r + 1, c), 1.0).expect("valid");
                }
            }
        }
        g
    }

    #[test]
    fn bfs_forest_has_n_minus_components_edges() {
        let g = grid(3, 4);
        let f = bfs_spanning_forest(&g);
        assert_eq!(f.len(), 11);
        let disconnected = Graph::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]).expect("valid");
        assert_eq!(bfs_spanning_forest(&disconnected).len(), 2);
    }

    #[test]
    fn maximum_weight_forest_prefers_heavy_edges() {
        let g = Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 10.0), (0, 2, 5.0)]).expect("valid");
        let f = maximum_weight_spanning_forest(&g);
        assert_eq!(f.len(), 2);
        assert!(f.contains_edge(1), "heaviest edge must be kept");
        assert!(f.contains_edge(2));
        assert!(!f.contains_edge(0));
    }

    #[test]
    fn tree_path_resistance_sums_reciprocal_weights() {
        let g = Graph::from_edges(4, vec![(0, 1, 2.0), (1, 2, 4.0), (2, 3, 1.0)]).expect("valid");
        let f = bfs_spanning_forest(&g);
        let r = tree_path_resistance(&g, &f, 0, 3).expect("connected");
        assert!((r - (0.5 + 0.25 + 1.0)).abs() < 1e-14);
        assert_eq!(tree_path_resistance(&g, &f, 2, 2), Some(0.0));
    }

    #[test]
    fn tree_path_resistance_none_across_components() {
        let g = Graph::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]).expect("valid");
        let f = bfs_spanning_forest(&g);
        assert_eq!(tree_path_resistance(&g, &f, 0, 3), None);
    }

    #[test]
    fn forest_is_acyclic_spanning_structure() {
        let g = grid(4, 4);
        let f = maximum_weight_spanning_forest(&g);
        assert_eq!(f.len(), 15);
        // All nodes reachable through forest edges from node 0.
        let sub = Graph::from_edges(
            16,
            f.edge_ids().iter().map(|&e| {
                let edge = g.edge(e);
                (edge.u, edge.v, edge.weight)
            }),
        )
        .expect("valid");
        assert!(crate::components::is_connected(&sub));
    }
}
