//! Laplacian and incidence matrices of weighted graphs.
//!
//! The effective resistance of a node pair `(p, q)` is
//! `R(p, q) = (e_p - e_q)^T L⁺ (e_p - e_q)` where `L = Bᵀ W B` is the graph
//! Laplacian (Section II-A of the paper). The Laplacian is singular, so the
//! paper grounds it by adding a small conductance from one node of every
//! connected component to an implicit ground node; [`grounded_laplacian`]
//! reproduces exactly that construction.

use crate::components::connected_components;
use crate::graph::Graph;
use effres_sparse::{CscMatrix, CsrMatrix, TripletMatrix};

/// Builds the (singular) graph Laplacian `L = Bᵀ W B`.
pub fn laplacian(graph: &Graph) -> CscMatrix {
    let n = graph.node_count();
    let mut t = TripletMatrix::with_capacity(n, n, 4 * graph.edge_count() + n);
    for (_, e) in graph.edges() {
        t.add_laplacian_edge(e.u, e.v, e.weight);
    }
    t.to_csc()
}

/// Builds the grounded Laplacian: the Laplacian plus a small conductance
/// `ground_conductance` added to the diagonal entry of one representative
/// node per connected component. The result is symmetric positive definite
/// (an SDD M-matrix), matching the matrix the paper factorizes.
///
/// # Panics
///
/// Panics if `ground_conductance` is not positive and finite.
pub fn grounded_laplacian(graph: &Graph, ground_conductance: f64) -> CscMatrix {
    assert!(
        ground_conductance > 0.0 && ground_conductance.is_finite(),
        "ground conductance must be positive and finite"
    );
    let n = graph.node_count();
    let mut t = TripletMatrix::with_capacity(n, n, 4 * graph.edge_count() + n);
    for (_, e) in graph.edges() {
        t.add_laplacian_edge(e.u, e.v, e.weight);
    }
    let comps = connected_components(graph);
    for &representative in comps.representatives() {
        t.push(representative, representative, ground_conductance);
    }
    t.to_csc()
}

/// Builds the signed incidence matrix `B` (rows are edges, columns are nodes):
/// `B[e][u] = 1` and `B[e][v] = -1` for edge `e = (u, v)` with `u < v`.
pub fn incidence_matrix(graph: &Graph) -> CsrMatrix {
    let m = graph.edge_count();
    let n = graph.node_count();
    let mut t = TripletMatrix::with_capacity(m, n, 2 * m);
    for (id, e) in graph.edges() {
        t.push(id, e.u, 1.0);
        t.push(id, e.v, -1.0);
    }
    t.to_csr()
}

/// Edge weights as a vector indexed by edge id (the diagonal of `W`).
pub fn edge_weights(graph: &Graph) -> Vec<f64> {
    graph.edges().map(|(_, e)| e.weight).collect()
}

/// Verifies the factorization identity `L = Bᵀ W B` up to `tol`
/// (mainly used in tests and examples).
pub fn laplacian_identity_error(graph: &Graph) -> f64 {
    let l = laplacian(graph);
    let b = incidence_matrix(graph).to_csc();
    let w = edge_weights(graph);
    // Compute Bᵀ W B by scaling the rows of B.
    let mut scaled = b.clone();
    // Scale entry-by-entry: each entry of column j belongs to a row (edge) e.
    let rowidx = scaled.rowidx().to_vec();
    for (pos, value) in scaled.values_mut().iter_mut().enumerate() {
        *value *= w[rowidx[pos]];
    }
    let btwb = b
        .transpose()
        .matmul(&scaled)
        .expect("shapes are compatible");
    let diff = btwb.add_scaled(1.0, &l, -1.0).expect("same shape");
    diff.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn triangle() -> Graph {
        Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).expect("valid")
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let l = laplacian(&triangle());
        let ones = vec![1.0; 3];
        for v in l.matvec(&ones) {
            assert!(v.abs() < 1e-14);
        }
    }

    #[test]
    fn laplacian_diagonal_is_weighted_degree() {
        let g = triangle();
        let l = laplacian(&g);
        for i in 0..3 {
            assert!((l.get(i, i) - g.weighted_degree(i)).abs() < 1e-14);
        }
    }

    #[test]
    fn grounded_laplacian_is_positive_definite() {
        let g = triangle();
        let l = grounded_laplacian(&g, 1e-3);
        assert!(effres_sparse::cholesky::CholeskyFactor::factor(&l).is_ok());
    }

    #[test]
    fn grounded_laplacian_grounds_every_component() {
        // Two disconnected edges -> two components -> two grounded diagonals.
        let g = Graph::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]).expect("valid");
        let lap = laplacian(&g);
        let grounded = grounded_laplacian(&g, 0.5);
        let mut boosted = 0;
        for i in 0..4 {
            if (grounded.get(i, i) - lap.get(i, i) - 0.5).abs() < 1e-14 {
                boosted += 1;
            }
        }
        assert_eq!(boosted, 2);
        assert!(effres_sparse::cholesky::CholeskyFactor::factor(&grounded).is_ok());
    }

    #[test]
    fn incidence_identity_holds() {
        assert!(laplacian_identity_error(&triangle()) < 1e-14);
        let g = Graph::from_edges(
            6,
            vec![
                (0, 1, 1.0),
                (1, 2, 0.5),
                (2, 3, 2.0),
                (3, 4, 1.5),
                (4, 5, 1.0),
                (0, 5, 0.25),
            ],
        )
        .expect("valid");
        assert!(laplacian_identity_error(&g) < 1e-14);
    }

    #[test]
    fn incidence_matrix_shape() {
        let b = incidence_matrix(&triangle());
        assert_eq!(b.nrows(), 3);
        assert_eq!(b.ncols(), 3);
        assert_eq!(b.nnz(), 6);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn grounded_laplacian_rejects_zero_conductance() {
        let _ = grounded_laplacian(&triangle(), 0.0);
    }
}
