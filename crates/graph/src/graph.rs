//! The weighted undirected graph type.

use crate::error::GraphError;

/// Index of a node in a [`Graph`].
pub type NodeId = usize;

/// Index of an edge in a [`Graph`].
pub type EdgeId = usize;

/// A weighted undirected edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint (the smaller index by convention of [`Graph::add_edge`]).
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Positive edge weight (a conductance, in the circuit interpretation).
    pub weight: f64,
}

impl Edge {
    /// The endpoint of the edge that is not `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of the edge.
    pub fn other(&self, node: NodeId) -> NodeId {
        if node == self.u {
            self.v
        } else if node == self.v {
            self.u
        } else {
            panic!(
                "node {node} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }
}

/// A weighted undirected graph with a fixed node set and a growable edge list.
///
/// Parallel edges are allowed (they behave like parallel conductances); the
/// Laplacian construction sums them. Self-loops are rejected because they do
/// not affect effective resistances.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    node_count: usize,
    edges: Vec<Edge>,
    /// adjacency[v] lists (neighbor, edge id) pairs.
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Creates a graph with `node_count` isolated nodes.
    pub fn new(node_count: usize) -> Self {
        Graph {
            node_count,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); node_count],
        }
    }

    /// Creates a graph with preallocated capacity for `edge_capacity` edges.
    pub fn with_capacity(node_count: usize, edge_capacity: usize) -> Self {
        Graph {
            node_count,
            edges: Vec::with_capacity(edge_capacity),
            adjacency: vec![Vec::new(); node_count],
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by [`Graph::add_edge`].
    pub fn from_edges<I>(node_count: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId, f64)>,
    {
        let mut g = Graph::new(node_count);
        for (u, v, w) in edges {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge with the given positive weight and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`], [`GraphError::SelfLoop`] or
    /// [`GraphError::InvalidWeight`] when the edge is malformed.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> Result<EdgeId, GraphError> {
        if u >= self.node_count {
            return Err(GraphError::NodeOutOfBounds {
                node: u,
                node_count: self.node_count,
            });
        }
        if v >= self.node_count {
            return Err(GraphError::NodeOutOfBounds {
                node: v,
                node_count: self.node_count,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if !(weight > 0.0) || !weight.is_finite() {
            return Err(GraphError::InvalidWeight { weight });
        }
        let id = self.edges.len();
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push(Edge { u: a, v: b, weight });
        self.adjacency[a].push((b, id));
        self.adjacency[b].push((a, id));
        Ok(id)
    }

    /// Appends `count` isolated nodes and returns the id of the first new node.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = self.node_count;
        self.node_count += count;
        self.adjacency.resize(self.node_count, Vec::new());
        first
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id]
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges.iter().copied().enumerate()
    }

    /// Iterates over the `(neighbor, edge_id)` pairs incident to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adjacency[node].iter().copied()
    }

    /// Number of incident edges of `node` (parallel edges counted separately).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node].len()
    }

    /// Sum of the weights of the edges incident to `node` (the weighted degree).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn weighted_degree(&self, node: NodeId) -> f64 {
        self.adjacency[node]
            .iter()
            .map(|&(_, e)| self.edges[e].weight)
            .sum()
    }

    /// Total edge weight of the graph.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Returns a copy of the graph with parallel edges merged (weights summed).
    pub fn coalesced(&self) -> Graph {
        use std::collections::HashMap;
        let mut combined: HashMap<(NodeId, NodeId), f64> = HashMap::new();
        for e in &self.edges {
            *combined.entry((e.u, e.v)).or_insert(0.0) += e.weight;
        }
        let mut pairs: Vec<((NodeId, NodeId), f64)> = combined.into_iter().collect();
        pairs.sort_unstable_by_key(|&((u, v), _)| (u, v));
        let mut g = Graph::with_capacity(self.node_count, pairs.len());
        for ((u, v), w) in pairs {
            g.add_edge(u, v, w).expect("edges come from a valid graph");
        }
        g
    }

    /// Builds the subgraph induced by `nodes`, renumbering them to
    /// `0..nodes.len()` in the given order. Returns the subgraph together
    /// with the mapping from new node ids to original node ids.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if any listed node does not
    /// exist, or [`GraphError::InvalidParameter`] if a node is repeated.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Result<(Graph, Vec<NodeId>), GraphError> {
        let mut map = vec![usize::MAX; self.node_count];
        for (new, &old) in nodes.iter().enumerate() {
            if old >= self.node_count {
                return Err(GraphError::NodeOutOfBounds {
                    node: old,
                    node_count: self.node_count,
                });
            }
            if map[old] != usize::MAX {
                return Err(GraphError::InvalidParameter {
                    name: "nodes",
                    message: format!("node {old} listed twice"),
                });
            }
            map[old] = new;
        }
        let mut g = Graph::new(nodes.len());
        for e in &self.edges {
            let nu = map[e.u];
            let nv = map[e.v];
            if nu != usize::MAX && nv != usize::MAX {
                g.add_edge(nu, nv, e.weight)?;
            }
        }
        Ok((g, nodes.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edges_and_query() {
        let mut g = Graph::new(4);
        let e0 = g.add_edge(0, 1, 1.0).expect("valid");
        let e1 = g.add_edge(2, 1, 2.0).expect("valid");
        assert_eq!(e0, 0);
        assert_eq!(e1, 1);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.weighted_degree(1), 3.0);
        assert_eq!(g.total_weight(), 3.0);
        // Edge endpoints are normalized to (min, max).
        assert_eq!(g.edge(1).u, 1);
        assert_eq!(g.edge(1).v, 2);
        assert_eq!(g.edge(1).other(1), 2);
    }

    #[test]
    fn invalid_edges_rejected() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(0, 2, 1.0),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 0, 1.0),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, 0.0),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn coalesced_merges_parallel_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0).expect("valid");
        g.add_edge(1, 0, 2.0).expect("valid");
        g.add_edge(1, 2, 1.0).expect("valid");
        let c = g.coalesced();
        assert_eq!(c.edge_count(), 2);
        assert_eq!(c.weighted_degree(0), 3.0);
        assert_eq!(c.total_weight(), 4.0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0).expect("valid");
        g.add_edge(1, 2, 1.0).expect("valid");
        g.add_edge(3, 4, 1.0).expect("valid");
        let (sub, mapping) = g.induced_subgraph(&[1, 2, 3]).expect("valid nodes");
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(mapping, vec![1, 2, 3]);
    }

    #[test]
    fn induced_subgraph_rejects_duplicates() {
        let g = Graph::new(3);
        assert!(g.induced_subgraph(&[0, 0]).is_err());
        assert!(g.induced_subgraph(&[7]).is_err());
    }

    #[test]
    fn add_nodes_extends_graph() {
        let mut g = Graph::new(1);
        let first = g.add_nodes(2);
        assert_eq!(first, 1);
        assert_eq!(g.node_count(), 3);
        g.add_edge(0, 2, 1.0).expect("valid");
    }

    #[test]
    fn from_edges_builds_graph() {
        let g = Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 0.5)]).expect("valid");
        assert_eq!(g.edge_count(), 2);
        assert!(Graph::from_edges(2, vec![(0, 5, 1.0)]).is_err());
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge {
            u: 0,
            v: 1,
            weight: 1.0,
        };
        let _ = e.other(5);
    }
}
