//! Sparse Schur-complement elimination.
//!
//! Step 2 of Alg. 1 eliminates the non-port interior nodes of each block
//! without loss of accuracy: with the node set split into kept nodes `k` and
//! eliminated nodes `e`,
//!
//! ```text
//! S = G_kk − G_ke · G_ee⁻¹ · G_ek
//! ```
//!
//! is the exact reduced conductance matrix seen from the kept nodes. The
//! right-hand side reduces as `b_k' = b_k − G_ke G_ee⁻¹ b_e` and the interior
//! solution can be recovered afterwards as `v_e = G_ee⁻¹ (b_e − G_ek v_k)`.

use crate::analysis::factor_spd;
use crate::error::PowerGridError;
use effres_sparse::cholesky::CholeskyFactor;
use effres_sparse::{CscMatrix, TripletMatrix};

/// Result of a Schur-complement elimination.
#[derive(Debug, Clone)]
pub struct SchurReduction {
    /// The reduced matrix over the kept nodes (in the order of `kept`).
    reduced: CscMatrix,
    /// Original indices of the kept nodes.
    kept: Vec<usize>,
    /// Original indices of the eliminated nodes.
    eliminated: Vec<usize>,
    /// Factorization of the eliminated block `G_ee`.
    interior_factor: CholeskyFactor,
    /// Coupling block `G_ek` (eliminated rows, kept columns).
    coupling: CscMatrix,
}

impl SchurReduction {
    /// Eliminates every node of `matrix` that is not listed in `keep`.
    ///
    /// Entries of the Schur complement smaller in magnitude than
    /// `drop_tolerance` (absolute) are dropped; pass `0.0` to keep everything.
    ///
    /// # Errors
    ///
    /// Returns [`PowerGridError::Sparse`] if the interior block is singular
    /// (e.g. an interior region with no path to a kept node) and
    /// [`PowerGridError::InvalidParameter`] for out-of-range or duplicate
    /// keep indices.
    pub fn eliminate(
        matrix: &CscMatrix,
        keep: &[usize],
        drop_tolerance: f64,
    ) -> Result<Self, PowerGridError> {
        let n = matrix.ncols();
        let mut is_kept = vec![false; n];
        for &k in keep {
            if k >= n {
                return Err(PowerGridError::InvalidParameter {
                    name: "keep",
                    message: format!("index {k} out of bounds for order {n}"),
                });
            }
            if is_kept[k] {
                return Err(PowerGridError::InvalidParameter {
                    name: "keep",
                    message: format!("index {k} listed twice"),
                });
            }
            is_kept[k] = true;
        }
        let kept: Vec<usize> = keep.to_vec();
        let eliminated: Vec<usize> = (0..n).filter(|&i| !is_kept[i]).collect();

        let g_kk = matrix.submatrix(&kept, &kept);
        let g_ee = matrix.submatrix(&eliminated, &eliminated);
        let g_ek = matrix.submatrix(&eliminated, &kept);
        let interior_factor = factor_spd(&g_ee)?;

        // S = G_kk − G_keᵀ X with X = G_ee⁻¹ G_ek, built column by column.
        let mut correction = TripletMatrix::new(kept.len(), kept.len());
        let ne = eliminated.len();
        for (j, _) in kept.iter().enumerate() {
            // Column j of G_ek as a dense vector.
            let mut col = vec![0.0; ne];
            for (row, value) in g_ek.column(j) {
                col[row] = value;
            }
            if col.iter().all(|&v| v == 0.0) {
                continue;
            }
            let x = interior_factor.solve(&col);
            // Column j of the correction: G_ke x = G_ekᵀ x.
            for i in 0..kept.len() {
                let mut s = 0.0;
                for (row, value) in g_ek.column(i) {
                    s += value * x[row];
                }
                if s != 0.0 {
                    correction.push(i, j, s);
                }
            }
        }
        let schur = g_kk.add_scaled(1.0, &correction.to_csc(), -1.0)?;
        let reduced = if drop_tolerance > 0.0 {
            schur.drop_small(drop_tolerance)
        } else {
            schur
        };
        Ok(SchurReduction {
            reduced,
            kept,
            eliminated,
            interior_factor,
            coupling: g_ek,
        })
    }

    /// The reduced matrix over the kept nodes.
    pub fn reduced_matrix(&self) -> &CscMatrix {
        &self.reduced
    }

    /// Original indices of the kept nodes (the row/column order of the
    /// reduced matrix).
    pub fn kept_nodes(&self) -> &[usize] {
        &self.kept
    }

    /// Original indices of the eliminated nodes.
    pub fn eliminated_nodes(&self) -> &[usize] {
        &self.eliminated
    }

    /// Reduces a full right-hand side to the kept nodes:
    /// `b_k' = b_k − G_ke G_ee⁻¹ b_e`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len()` differs from the original matrix order.
    pub fn reduce_rhs(&self, rhs: &[f64]) -> Vec<f64> {
        assert_eq!(
            rhs.len(),
            self.kept.len() + self.eliminated.len(),
            "rhs length mismatch"
        );
        let b_e: Vec<f64> = self.eliminated.iter().map(|&i| rhs[i]).collect();
        let mut out: Vec<f64> = self.kept.iter().map(|&i| rhs[i]).collect();
        if b_e.iter().all(|&v| v == 0.0) {
            return out;
        }
        let y = self.interior_factor.solve(&b_e);
        for (j, slot) in out.iter_mut().enumerate() {
            let mut s = 0.0;
            for (row, value) in self.coupling.column(j) {
                s += value * y[row];
            }
            *slot -= s;
        }
        out
    }

    /// Recovers the eliminated node voltages from the kept solution:
    /// `v_e = G_ee⁻¹ (b_e − G_ek v_k)`.
    ///
    /// Returns pairs `(original_node, voltage)`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are inconsistent.
    pub fn recover_eliminated(&self, kept_solution: &[f64], rhs: &[f64]) -> Vec<(usize, f64)> {
        assert_eq!(
            kept_solution.len(),
            self.kept.len(),
            "solution length mismatch"
        );
        assert_eq!(
            rhs.len(),
            self.kept.len() + self.eliminated.len(),
            "rhs length mismatch"
        );
        let mut b_e: Vec<f64> = self.eliminated.iter().map(|&i| rhs[i]).collect();
        for (j, &vk) in kept_solution.iter().enumerate() {
            if vk == 0.0 {
                continue;
            }
            for (row, value) in self.coupling.column(j) {
                b_e[row] -= value * vk;
            }
        }
        let v_e = self.interior_factor.solve(&b_e);
        self.eliminated.iter().copied().zip(v_e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{dc_solve, stamp};
    use crate::generator::{synthetic_grid, SyntheticGridOptions};

    fn ladder_matrix() -> CscMatrix {
        // Conductance matrix of a 4-node ladder with a 1 S tie to ground at
        // node 0: tridiagonal SPD.
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..3 {
            t.add_laplacian_edge(i, i + 1, 2.0);
        }
        t.push(0, 0, 1.0);
        t.to_csc()
    }

    #[test]
    fn schur_of_ladder_matches_series_conductance() {
        // Eliminating the middle nodes of a 2 S - 2 S - 2 S ladder leaves the
        // series combination 2/3 S between nodes 0 and 3.
        let a = ladder_matrix();
        let red = SchurReduction::eliminate(&a, &[0, 3], 0.0).expect("nonsingular");
        let s = red.reduced_matrix();
        assert_eq!(s.ncols(), 2);
        assert!((s.get(0, 1) - (-2.0 / 3.0)).abs() < 1e-12);
        assert!((s.get(1, 1) - 2.0 / 3.0).abs() < 1e-12);
        // Node 0 keeps its 1 S ground tie.
        assert!((s.get(0, 0) - (2.0 / 3.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn reduced_system_reproduces_kept_solution() {
        let a = ladder_matrix();
        let rhs = vec![0.5, 0.0, 0.0, -0.1];
        let full = effres_sparse::cholesky::CholeskyFactor::factor(&a)
            .expect("spd")
            .solve(&rhs);
        let red = SchurReduction::eliminate(&a, &[0, 3], 0.0).expect("nonsingular");
        let reduced_rhs = red.reduce_rhs(&rhs);
        let kept_solution = effres_sparse::cholesky::CholeskyFactor::factor(red.reduced_matrix())
            .expect("spd")
            .solve(&reduced_rhs);
        assert!((kept_solution[0] - full[0]).abs() < 1e-10);
        assert!((kept_solution[1] - full[3]).abs() < 1e-10);
        // Interior recovery matches too.
        for (node, v) in red.recover_eliminated(&kept_solution, &rhs) {
            assert!((v - full[node]).abs() < 1e-10, "node {node}");
        }
    }

    #[test]
    fn schur_preserves_port_dc_solution_of_a_real_grid() {
        let grid = synthetic_grid(&SyntheticGridOptions::small()).expect("valid");
        let system = stamp(&grid);
        let ports = grid.port_nodes();
        let red = SchurReduction::eliminate(&system.matrix, &ports, 0.0).expect("nonsingular");
        let reduced_rhs = red.reduce_rhs(&system.rhs);
        let kept = effres_sparse::cholesky::CholeskyFactor::factor(red.reduced_matrix())
            .expect("spd")
            .solve(&reduced_rhs);
        let full = dc_solve(&grid).expect("solvable");
        for (j, &node) in red.kept_nodes().iter().enumerate() {
            assert!(
                (kept[j] - full.voltage(node)).abs() < 1e-8,
                "port {node}: {} vs {}",
                kept[j],
                full.voltage(node)
            );
        }
    }

    #[test]
    fn invalid_keep_sets_rejected() {
        let a = ladder_matrix();
        assert!(SchurReduction::eliminate(&a, &[0, 9], 0.0).is_err());
        assert!(SchurReduction::eliminate(&a, &[0, 0], 0.0).is_err());
    }

    #[test]
    fn drop_tolerance_sparsifies_the_complement() {
        let grid = synthetic_grid(&SyntheticGridOptions::small()).expect("valid");
        let system = stamp(&grid);
        let ports = grid.port_nodes();
        let dense = SchurReduction::eliminate(&system.matrix, &ports, 0.0).expect("ok");
        let dropped = SchurReduction::eliminate(&system.matrix, &ports, 1e-4).expect("ok");
        assert!(dropped.reduced_matrix().nnz() <= dense.reduced_matrix().nnz());
    }
}
