//! DC incremental analysis with per-block re-reduction.
//!
//! The second half of Table II: during physical design the power grid is
//! modified locally (wires resized, decap or loads moved) to fix violations,
//! and the analysis must be re-run. Because the reduction of Alg. 1 is
//! block-local (the Schur complement of each block only involves that
//! block's nodes), only the modified blocks need to be re-reduced — roughly
//! 10 % of them in the paper's experiment — which is where the fast
//! effective-resistance algorithm pays off a second time.

use crate::analysis::dc_solve;
use crate::error::PowerGridError;
use crate::netlist::{PowerGrid, Terminal};
use crate::reduce::{
    reduce_block, resistor_graph, stitch, BlockReduced, GridPartition, ReducedGrid,
    ReductionOptions,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Maintains a block-wise reduced model that can be updated incrementally
/// when a subset of blocks changes.
#[derive(Debug, Clone)]
pub struct IncrementalReducer {
    grid: PowerGrid,
    options: ReductionOptions,
    partition: GridPartition,
    blocks: Vec<BlockReduced>,
}

impl IncrementalReducer {
    /// Performs the initial full reduction.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors.
    pub fn new(grid: PowerGrid, options: ReductionOptions) -> Result<Self, PowerGridError> {
        let partition = GridPartition::build(&grid, &options)?;
        let mut blocks = Vec::with_capacity(partition.block_count());
        for block in 0..partition.block_count() {
            blocks.push(reduce_block(&partition, block, &options)?);
        }
        Ok(IncrementalReducer {
            grid,
            options,
            partition,
            blocks,
        })
    }

    /// The grid currently represented by the reducer.
    pub fn grid(&self) -> &PowerGrid {
        &self.grid
    }

    /// The partition shared by all incremental updates.
    pub fn partition(&self) -> &GridPartition {
        &self.partition
    }

    /// Stitches the current blocks into a reduced grid.
    ///
    /// # Errors
    ///
    /// Propagates stitching errors.
    pub fn reduced(&self) -> Result<ReducedGrid, PowerGridError> {
        stitch(&self.grid, &self.partition, &self.blocks)
    }

    /// Replaces the grid with a modified version (same node set and resistor
    /// topology; element values and loads may differ) and re-reduces only the
    /// listed dirty blocks. Returns the time spent re-reducing.
    ///
    /// # Errors
    ///
    /// Returns [`PowerGridError::InvalidParameter`] if the modified grid has
    /// a different node count or a dirty block id is out of range, and
    /// propagates reduction errors.
    pub fn update(
        &mut self,
        modified: PowerGrid,
        dirty_blocks: &[usize],
    ) -> Result<Duration, PowerGridError> {
        if modified.node_count() != self.grid.node_count() {
            return Err(PowerGridError::InvalidParameter {
                name: "modified",
                message: "incremental updates must keep the node set".to_string(),
            });
        }
        for &b in dirty_blocks {
            if b >= self.partition.block_count() {
                return Err(PowerGridError::InvalidParameter {
                    name: "dirty_blocks",
                    message: format!("block {b} out of range"),
                });
            }
        }
        let start = Instant::now();
        // Refresh the resistor graph (values may have changed) while keeping
        // the partition labels and node classification.
        let (graph, ground) = resistor_graph(&modified);
        self.partition.graph = graph;
        self.partition.ground_conductance = ground;
        self.grid = modified;
        for &b in dirty_blocks {
            self.blocks[b] = reduce_block(&self.partition, b, &self.options)?;
        }
        Ok(start.elapsed())
    }
}

/// Result of one DC incremental analysis experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalRun {
    /// Time spent re-reducing the dirty blocks.
    pub reduction_time: Duration,
    /// Time spent solving the reduced model.
    pub solve_time: Duration,
    /// Average absolute port-voltage error against the full solve.
    pub average_error: f64,
    /// Error relative to the maximum voltage drop.
    pub relative_error: f64,
}

/// Scales the intra-block wire conductances and load currents of the listed
/// blocks, mimicking an ECO-style grid modification. Returns the modified grid.
pub fn perturb_blocks(
    grid: &PowerGrid,
    partition: &GridPartition,
    blocks: &[usize],
    seed: u64,
) -> PowerGrid {
    let dirty: std::collections::HashSet<usize> = blocks.iter().copied().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut modified = PowerGrid::new(grid.node_count());
    for r in grid.resistors() {
        let in_dirty_block = |t: Terminal| match t {
            Terminal::Node(n) => dirty.contains(&partition.partition.part_of(n)),
            Terminal::Ground => false,
        };
        let scale = if in_dirty_block(r.a) && in_dirty_block(r.b) {
            rng.gen_range(0.7..1.4)
        } else {
            1.0
        };
        modified
            .add_resistor(r.a, r.b, r.conductance * scale)
            .expect("copied element is valid");
    }
    for load in grid.loads() {
        let scale = if dirty.contains(&partition.partition.part_of(load.node)) {
            rng.gen_range(0.8..1.3)
        } else {
            1.0
        };
        modified
            .add_load(load.node, load.amps * scale)
            .expect("copied element is valid");
    }
    for pad in grid.pads() {
        modified
            .add_pad(pad.node, pad.voltage, pad.conductance)
            .expect("copied element is valid");
    }
    for cap in grid.capacitors() {
        modified
            .add_capacitor(cap.node, cap.farads)
            .expect("copied element is valid");
    }
    modified
}

/// Selects `fraction` of the blocks at random (at least one).
pub fn select_dirty_blocks(partition: &GridPartition, fraction: f64, seed: u64) -> Vec<usize> {
    let count = ((partition.block_count() as f64 * fraction).round() as usize)
        .clamp(1, partition.block_count());
    let mut ids: Vec<usize> = (0..partition.block_count()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(count);
    ids.sort_unstable();
    ids
}

/// Runs one incremental experiment: perturb `fraction` of the blocks,
/// re-reduce only those, solve the reduced model and compare its port
/// voltages against a full DC solve of the modified grid.
///
/// # Errors
///
/// Propagates reduction and solve errors.
pub fn run_incremental_experiment(
    reducer: &mut IncrementalReducer,
    fraction: f64,
    seed: u64,
) -> Result<IncrementalRun, PowerGridError> {
    let dirty = select_dirty_blocks(reducer.partition(), fraction, seed);
    let modified = perturb_blocks(reducer.grid(), reducer.partition(), &dirty, seed);
    let reference = dc_solve(&modified)?;
    let reduction_time = reducer.update(modified, &dirty)?;
    let solve_start = Instant::now();
    let reduced = reducer.reduced()?;
    let solution = dc_solve(&reduced.grid)?;
    let solve_time = solve_start.elapsed();
    let (average_error, relative_error) = crate::reduce::compare_port_voltages(
        reducer.grid(),
        reference.voltages(),
        &reduced,
        solution.voltages(),
    );
    Ok(IncrementalRun {
        reduction_time,
        solve_time,
        average_error,
        relative_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{synthetic_grid, SyntheticGridOptions};
    use crate::reduce::ErMethod;
    use effres::prelude::EffresConfig;

    fn reducer() -> IncrementalReducer {
        let grid = synthetic_grid(&SyntheticGridOptions::small()).expect("valid");
        IncrementalReducer::new(
            grid,
            ReductionOptions {
                er_method: ErMethod::ApproxInverse(EffresConfig::default()),
                ..ReductionOptions::default()
            },
        )
        .expect("valid")
    }

    #[test]
    fn initial_reduction_matches_full_flow() {
        let reducer = reducer();
        let reduced = reducer.reduced().expect("valid");
        assert!(reduced.stats.reduced_nodes < reduced.stats.original_nodes);
    }

    #[test]
    fn incremental_update_tracks_the_modified_grid() {
        let mut reducer = reducer();
        let run = run_incremental_experiment(&mut reducer, 0.2, 3).expect("valid");
        assert!(
            run.relative_error < 0.05,
            "incremental result too inaccurate: {}",
            run.relative_error
        );
    }

    #[test]
    fn dirty_block_selection_respects_fraction() {
        let reducer = reducer();
        let blocks = reducer.partition().block_count();
        let dirty = select_dirty_blocks(reducer.partition(), 0.5, 1);
        assert!(!dirty.is_empty());
        assert!(dirty.len() <= blocks);
        assert!(dirty.iter().all(|&b| b < blocks));
        let all = select_dirty_blocks(reducer.partition(), 1.0, 1);
        assert_eq!(all.len(), blocks);
    }

    #[test]
    fn perturbation_only_touches_dirty_blocks() {
        let reducer = reducer();
        let dirty = vec![0];
        let modified = perturb_blocks(reducer.grid(), reducer.partition(), &dirty, 7);
        assert_eq!(modified.node_count(), reducer.grid().node_count());
        assert_eq!(modified.resistor_count(), reducer.grid().resistor_count());
        // At least one resistor changed, and clean-block resistors are intact.
        let changed = reducer
            .grid()
            .resistors()
            .iter()
            .zip(modified.resistors())
            .filter(|(a, b)| (a.conductance - b.conductance).abs() > 1e-12)
            .count();
        assert!(changed > 0);
        for (a, b) in reducer.grid().resistors().iter().zip(modified.resistors()) {
            let clean = |t: Terminal| match t {
                Terminal::Node(n) => reducer.partition().partition.part_of(n) != 0,
                Terminal::Ground => true,
            };
            if clean(a.a) && clean(a.b) {
                assert_eq!(a.conductance, b.conductance);
            }
        }
    }

    #[test]
    fn update_validates_inputs() {
        let mut reducer = reducer();
        let wrong_size = PowerGrid::new(3);
        assert!(reducer.update(wrong_size, &[0]).is_err());
        let ok_grid = reducer.grid().clone();
        assert!(reducer.update(ok_grid, &[9999]).is_err());
    }
}
