//! Power-grid modeling, analysis and effective-resistance-based reduction.
//!
//! This crate is the application substrate of the paper's evaluation
//! (Sections II-A, IV-B): IBM-benchmark-style power grids, their DC and
//! transient analysis, and the graph-sparsification-based reduction flow of
//! Alg. 1 (partition → Schur-complement elimination → effective-resistance
//! port merging → effective-resistance sampling sparsification → stitching),
//! where the effective resistances can be computed exactly, with the
//! random-projection baseline, or with the paper's Alg. 3.
//!
//! * [`netlist`] — the power-grid circuit model (resistors, current loads,
//!   voltage pads, decoupling capacitors) and port classification;
//! * [`parser`] — a SPICE-subset netlist parser for IBM-PG-style decks;
//! * [`generator`] — synthetic IBM-like power-grid generator;
//! * [`analysis`] — conductance-matrix stamping, DC analysis and
//!   backward-Euler transient analysis with waveform recording;
//! * [`schur`] — sparse Schur-complement elimination of internal nodes;
//! * [`sparsify`] — effective-resistance port merging and spectral
//!   sparsification by edge sampling;
//! * [`reduce`] — the full Alg. 1 reduction pipeline;
//! * [`incremental`] — DC incremental analysis with per-block re-reduction.
//!
//! # Example
//!
//! ```
//! use effres_powergrid::generator::{synthetic_grid, SyntheticGridOptions};
//! use effres_powergrid::analysis::dc_solve;
//!
//! # fn main() -> Result<(), effres_powergrid::PowerGridError> {
//! let grid = synthetic_grid(&SyntheticGridOptions::small())?;
//! let solution = dc_solve(&grid)?;
//! assert_eq!(solution.voltages().len(), grid.node_count());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod error;
pub mod generator;
pub mod incremental;
pub mod netlist;
pub mod parser;
pub mod reduce;
pub mod schur;
pub mod sparsify;

pub use error::PowerGridError;
pub use netlist::{NodeKind, PowerGrid};
