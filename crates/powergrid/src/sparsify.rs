//! Effective-resistance port merging and spectral sparsification.
//!
//! Steps 3–4 of Alg. 1: once a block has been Schur-reduced it is much
//! denser than the original mesh. The reduced block is treated as a weighted
//! graph, the effective resistance of every edge is computed (exactly, with
//! the random-projection baseline, or with the paper's Alg. 3), and then
//!
//! * nodes joined by an edge of negligible effective resistance are merged
//!   (they are electrically almost the same node), and
//! * the remaining edges are sampled with probability proportional to
//!   `w_e · R_e` — the Spielman–Srivastava scheme \[4\] — and reweighted, which
//!   keeps the spectral behaviour of the block while shrinking its edge count.

use crate::error::PowerGridError;
use effres_graph::spanning::maximum_weight_spanning_forest;
use effres_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of merging electrically-equivalent nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMerge {
    /// For every node of the input graph, the node it was merged into
    /// (a representative maps to itself).
    representative: Vec<usize>,
    /// Number of distinct representatives.
    merged_count: usize,
}

impl NodeMerge {
    /// The representative of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn representative(&self, node: usize) -> usize {
        self.representative[node]
    }

    /// Representative of every node.
    pub fn representatives(&self) -> &[usize] {
        &self.representative
    }

    /// Number of distinct nodes after merging.
    pub fn merged_count(&self) -> usize {
        self.merged_count
    }
}

/// Merges the endpoints of every edge whose effective resistance is at most
/// `threshold`. Returns the merge map; apply it with
/// [`apply_merge`] to obtain the contracted graph.
///
/// # Panics
///
/// Panics if `resistances.len()` differs from the edge count.
pub fn merge_by_effective_resistance(
    graph: &Graph,
    resistances: &[f64],
    threshold: f64,
) -> NodeMerge {
    assert_eq!(
        resistances.len(),
        graph.edge_count(),
        "one resistance per edge required"
    );
    let n = graph.node_count();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (id, e) in graph.edges() {
        if resistances[id] <= threshold {
            let ra = find(&mut parent, e.u);
            let rb = find(&mut parent, e.v);
            if ra != rb {
                // Merge into the smaller representative for determinism.
                let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[drop] = keep;
            }
        }
    }
    let representative: Vec<usize> = (0..n).map(|v| find(&mut parent, v)).collect();
    let mut distinct: Vec<usize> = representative.clone();
    distinct.sort_unstable();
    distinct.dedup();
    NodeMerge {
        representative,
        merged_count: distinct.len(),
    }
}

/// Contracts a graph according to a merge map, renumbering the surviving
/// representatives to `0..merged_count` (in increasing original order) and
/// coalescing parallel edges. Returns the contracted graph and the map from
/// original node to contracted node.
pub fn apply_merge(graph: &Graph, merge: &NodeMerge) -> (Graph, Vec<usize>) {
    let n = graph.node_count();
    let mut survivors: Vec<usize> = merge.representatives().to_vec();
    survivors.sort_unstable();
    survivors.dedup();
    let mut dense_id = vec![usize::MAX; n];
    for (new, &old) in survivors.iter().enumerate() {
        dense_id[old] = new;
    }
    let map: Vec<usize> = (0..n).map(|v| dense_id[merge.representative(v)]).collect();
    let mut contracted = Graph::new(survivors.len());
    for (_, e) in graph.edges() {
        let u = map[e.u];
        let v = map[e.v];
        if u != v {
            contracted
                .add_edge(u, v, e.weight)
                .expect("indices are in range");
        }
    }
    (contracted.coalesced(), map)
}

/// Options of the effective-resistance sampling sparsifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsifyOptions {
    /// Oversampling constant `c`: the sampler draws
    /// `ceil(c · n · ln n)` edges (with replacement).
    pub oversampling: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for SparsifyOptions {
    fn default() -> Self {
        SparsifyOptions {
            oversampling: 2.0,
            seed: 1,
        }
    }
}

/// Sparsifies a weighted graph by effective-resistance sampling
/// (Spielman–Srivastava): edge `e` is drawn with probability proportional to
/// `w_e · R_e` and each drawn copy contributes `w_e / (q · p_e)` to the
/// sparsifier. Edges whose expected sample count is at least one are kept
/// deterministically with their original weight (the standard
/// variance-reduction refinement), and a maximum-weight spanning forest is
/// always included so the sparsifier stays connected.
///
/// If the requested sample count is at least the edge count, the graph is
/// returned unchanged (sparsification would not help).
///
/// # Errors
///
/// Returns [`PowerGridError::InvalidParameter`] if `resistances` has the
/// wrong length or the oversampling constant is not positive.
pub fn sparsify_by_effective_resistance(
    graph: &Graph,
    resistances: &[f64],
    options: &SparsifyOptions,
) -> Result<Graph, PowerGridError> {
    if resistances.len() != graph.edge_count() {
        return Err(PowerGridError::InvalidParameter {
            name: "resistances",
            message: format!(
                "expected {} edge resistances, found {}",
                graph.edge_count(),
                resistances.len()
            ),
        });
    }
    if !(options.oversampling > 0.0) {
        return Err(PowerGridError::InvalidParameter {
            name: "oversampling",
            message: "must be positive".to_string(),
        });
    }
    let n = graph.node_count();
    let m = graph.edge_count();
    if n < 3 || m < 4 {
        return Ok(graph.clone());
    }
    let q = (options.oversampling * n as f64 * (n as f64).ln()).ceil() as usize;
    if q >= m {
        return Ok(graph.clone());
    }

    // Sampling scores proportional to w_e * R_e (clamped to be positive).
    let scores: Vec<f64> = graph
        .edges()
        .map(|(id, e)| (e.weight * resistances[id]).max(1e-300))
        .collect();
    let total: f64 = scores.iter().sum();

    // Edges whose expected number of samples q * p_e reaches 1 are kept
    // deterministically with their original weight; the remaining sampling
    // budget is spent on the light edges only.
    let mut keep = vec![false; m];
    let mut light_total = 0.0;
    let mut light_budget = q as f64;
    // A couple of passes are enough for the keep set to stabilize on the
    // block sizes seen in practice.
    for _ in 0..4 {
        light_total = 0.0;
        let mut kept_count = 0usize;
        for (id, &s) in scores.iter().enumerate() {
            if keep[id] {
                kept_count += 1;
            } else {
                light_total += s;
            }
        }
        light_budget = (q as f64 - kept_count as f64).max(1.0);
        let mut changed = false;
        for (id, &s) in scores.iter().enumerate() {
            if !keep[id] && light_budget * s / light_total.max(1e-300) >= 1.0 {
                keep[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let _ = total;

    let mut sampled_weight = vec![0.0f64; m];
    for (id, &kept) in keep.iter().enumerate() {
        if kept {
            sampled_weight[id] = graph.edge(id).weight;
        }
    }
    // Inverse-transform sampling over the light edges.
    let light_ids: Vec<usize> = (0..m).filter(|&id| !keep[id]).collect();
    if !light_ids.is_empty() && light_total > 0.0 {
        let probabilities: Vec<f64> = light_ids
            .iter()
            .map(|&id| scores[id] / light_total)
            .collect();
        let mut cumulative = Vec::with_capacity(light_ids.len());
        let mut acc = 0.0;
        for &p in &probabilities {
            acc += p;
            cumulative.push(acc);
        }
        let mut rng = StdRng::seed_from_u64(options.seed);
        let draws = light_budget.round().max(1.0) as usize;
        for _ in 0..draws {
            let r: f64 = rng.gen_range(0.0..1.0);
            let pos = match cumulative
                .binary_search_by(|c| c.partial_cmp(&r).expect("probabilities are finite"))
            {
                Ok(i) => i,
                Err(i) => i.min(light_ids.len() - 1),
            };
            let id = light_ids[pos];
            sampled_weight[id] += graph.edge(id).weight / (draws as f64 * probabilities[pos]);
        }
    }

    // Always keep a maximum-weight spanning forest for connectivity; tree
    // edges that were not sampled keep their original weight.
    let forest = maximum_weight_spanning_forest(graph);
    for &e in forest.edge_ids() {
        if sampled_weight[e] == 0.0 {
            sampled_weight[e] = graph.edge(e).weight;
        }
    }

    let mut sparsifier = Graph::new(n);
    for (id, e) in graph.edges() {
        if sampled_weight[id] > 0.0 {
            sparsifier
                .add_edge(e.u, e.v, sampled_weight[id])
                .expect("indices are in range");
        }
    }
    Ok(sparsifier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres::prelude::*;
    use effres_graph::generators;

    fn dense_block(seed: u64) -> Graph {
        // A dense-ish random graph standing in for a Schur-reduced block.
        generators::random_connected(60, 900, 0.5, 2.0, seed).expect("valid")
    }

    #[test]
    fn merge_contracts_low_resistance_edges() {
        // Edge (0,1) has a huge conductance => tiny effective resistance.
        let g = Graph::from_edges(4, vec![(0, 1, 1e6), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)])
            .expect("valid");
        let exact = ExactEffectiveResistance::build(&g, 1.0).expect("build");
        let er = exact.query_all_edges(&g).expect("ok");
        let merge = merge_by_effective_resistance(&g, &er, 1e-3);
        assert_eq!(merge.merged_count(), 3);
        assert_eq!(merge.representative(1), merge.representative(0));
        let (contracted, map) = apply_merge(&g, &merge);
        assert_eq!(contracted.node_count(), 3);
        assert_eq!(map[0], map[1]);
        // No self loops; parallel edges coalesced.
        assert!(contracted.edge_count() <= 3);
    }

    #[test]
    fn zero_threshold_merges_nothing() {
        let g = dense_block(1);
        let er = vec![1.0; g.edge_count()];
        let merge = merge_by_effective_resistance(&g, &er, 0.0);
        assert_eq!(merge.merged_count(), g.node_count());
        let (contracted, _) = apply_merge(&g, &merge);
        assert_eq!(contracted.node_count(), g.node_count());
    }

    #[test]
    fn sparsifier_reduces_edges_and_preserves_resistances() {
        let g = dense_block(3);
        let exact = ExactEffectiveResistance::build(&g, 1.0).expect("build");
        let er = exact.query_all_edges(&g).expect("ok");
        let sparse = sparsify_by_effective_resistance(
            &g,
            &er,
            &SparsifyOptions {
                oversampling: 2.0,
                seed: 5,
            },
        )
        .expect("valid");
        assert!(
            sparse.edge_count() < g.edge_count(),
            "sparsifier should drop edges: {} vs {}",
            sparse.edge_count(),
            g.edge_count()
        );
        assert!(effres_graph::components::is_connected(&sparse));
        // Spectral similarity: spot-check a few effective resistances.
        let exact_sparse = ExactEffectiveResistance::build(&sparse, 1.0).expect("build");
        let mut worst: f64 = 0.0;
        for &(p, q) in &[(0, 30), (5, 45), (10, 55), (20, 40)] {
            let a = exact.query(p, q).expect("ok");
            let b = exact_sparse.query(p, q).expect("ok");
            worst = worst.max(((a - b) / a).abs());
        }
        assert!(worst < 0.5, "resistance distortion {worst} too large");
    }

    #[test]
    fn small_graphs_are_returned_unchanged() {
        let g = Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]).expect("valid");
        let er = vec![1.0, 1.0];
        let s =
            sparsify_by_effective_resistance(&g, &er, &SparsifyOptions::default()).expect("valid");
        assert_eq!(s.edge_count(), 2);
    }

    #[test]
    fn parameter_validation() {
        let g = dense_block(7);
        assert!(sparsify_by_effective_resistance(&g, &[1.0], &SparsifyOptions::default()).is_err());
        let er = vec![1.0; g.edge_count()];
        assert!(sparsify_by_effective_resistance(
            &g,
            &er,
            &SparsifyOptions {
                oversampling: 0.0,
                seed: 0
            }
        )
        .is_err());
    }

    #[test]
    fn sparsifier_is_deterministic_for_fixed_seed() {
        let g = dense_block(9);
        let er = vec![1.0; g.edge_count()];
        let o = SparsifyOptions {
            oversampling: 1.5,
            seed: 42,
        };
        let a = sparsify_by_effective_resistance(&g, &er, &o).expect("valid");
        let b = sparsify_by_effective_resistance(&g, &er, &o).expect("valid");
        assert_eq!(a, b);
    }
}
