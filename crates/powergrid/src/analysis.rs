//! Conductance-matrix stamping, DC analysis and transient analysis.
//!
//! The stamped system is the standard nodal-analysis conductance matrix of a
//! resistive supply net with Norton-equivalent pads: it is symmetric
//! positive definite as long as every connected component has a path to
//! ground (through a pad or a ground resistor). Transient analysis uses
//! backward Euler with a fixed time step, factoring `G + C/h` once and
//! back-substituting for every step — exactly the protocol of the paper's
//! Table II (1000 fixed-size time steps, one factorization).

use crate::error::PowerGridError;
use crate::netlist::{PowerGrid, Terminal};
use effres_sparse::cholesky::CholeskyFactor;
use effres_sparse::{amd, CscMatrix, Permutation, TripletMatrix};

/// The stamped linear system `G v = b` of a power grid.
#[derive(Debug, Clone)]
pub struct StampedSystem {
    /// Conductance matrix (symmetric positive definite).
    pub matrix: CscMatrix,
    /// Right-hand side: pad injections minus load currents.
    pub rhs: Vec<f64>,
    /// Node capacitances (diagonal of the capacitance matrix).
    pub capacitance: Vec<f64>,
}

/// Builds the conductance matrix, right-hand side and capacitance vector.
pub fn stamp(grid: &PowerGrid) -> StampedSystem {
    let n = grid.node_count();
    let mut t = TripletMatrix::with_capacity(n, n, 4 * grid.resistor_count() + grid.pads().len());
    for r in grid.resistors() {
        match (r.a, r.b) {
            (Terminal::Node(i), Terminal::Node(j)) => t.add_laplacian_edge(i, j, r.conductance),
            (Terminal::Node(i), Terminal::Ground) | (Terminal::Ground, Terminal::Node(i)) => {
                t.push(i, i, r.conductance);
            }
            (Terminal::Ground, Terminal::Ground) => {}
        }
    }
    let mut rhs = vec![0.0; n];
    for pad in grid.pads() {
        t.push(pad.node, pad.node, pad.conductance);
        rhs[pad.node] += pad.conductance * pad.voltage;
    }
    for load in grid.loads() {
        rhs[load.node] -= load.amps;
    }
    let mut capacitance = vec![0.0; n];
    for c in grid.capacitors() {
        capacitance[c.node] += c.farads;
    }
    StampedSystem {
        matrix: t.to_csc(),
        rhs,
        capacitance,
    }
}

/// A DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    voltages: Vec<f64>,
}

impl DcSolution {
    /// Node voltages, indexed by node id.
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Voltage of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn voltage(&self, node: usize) -> f64 {
        self.voltages[node]
    }

    /// Maximum voltage drop with respect to the given supply voltage.
    pub fn max_drop(&self, supply: f64) -> f64 {
        self.voltages
            .iter()
            .fold(0.0_f64, |m, &v| m.max(supply - v))
    }
}

/// Solves the DC operating point of a power grid with a sparse Cholesky
/// factorization (minimum-degree ordered).
///
/// # Errors
///
/// Returns [`PowerGridError::Sparse`] if the conductance matrix is singular
/// (e.g. a floating subnet without any path to ground).
pub fn dc_solve(grid: &PowerGrid) -> Result<DcSolution, PowerGridError> {
    let system = stamp(grid);
    let voltages = solve_spd(&system.matrix, &system.rhs)?;
    Ok(DcSolution { voltages })
}

/// Factors an SPD matrix with minimum-degree ordering and solves one system.
pub(crate) fn solve_spd(matrix: &CscMatrix, rhs: &[f64]) -> Result<Vec<f64>, PowerGridError> {
    let factor = factor_spd(matrix)?;
    Ok(factor.solve(rhs))
}

/// Factors an SPD matrix with minimum-degree ordering.
pub(crate) fn factor_spd(matrix: &CscMatrix) -> Result<CholeskyFactor, PowerGridError> {
    let perm = amd::amd(matrix).unwrap_or_else(|_| Permutation::identity(matrix.ncols()));
    Ok(CholeskyFactor::factor_permuted(matrix, perm)?)
}

/// A recorded voltage waveform of a single node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    /// Sample times in seconds.
    pub times: Vec<f64>,
    /// Node voltage at each sample time.
    pub values: Vec<f64>,
}

impl Waveform {
    /// Maximum absolute difference with another waveform sampled on the same
    /// time grid.
    ///
    /// # Panics
    ///
    /// Panics if the waveforms have different lengths.
    pub fn max_abs_difference(&self, other: &Waveform) -> f64 {
        assert_eq!(self.values.len(), other.values.len(), "length mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

/// Options of the backward-Euler transient analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step in seconds.
    pub time_step: f64,
    /// Number of time steps (the paper uses 1000).
    pub steps: usize,
    /// Nodes whose waveforms are recorded.
    pub record_nodes: Vec<usize>,
    /// Current-load scaling over time: the load of every current source is
    /// multiplied by `waveform(t)`. The default is a 1 GHz-ish square pulse
    /// train, giving the switching-activity look of Fig. 1.
    pub load_scale: LoadScale,
}

/// Time profile applied to every current load during transient analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadScale {
    /// Constant loads (DC currents held for the whole window).
    Constant,
    /// Square pulses of the given period and duty cycle (fraction of the
    /// period during which the load is on).
    Pulse {
        /// Pulse period in seconds.
        period: f64,
        /// Fraction of the period with the load active (0, 1].
        duty: f64,
    },
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            time_step: 1e-11,
            steps: 1000,
            record_nodes: Vec::new(),
            load_scale: LoadScale::Pulse {
                period: 2e-9,
                duty: 0.5,
            },
        }
    }
}

/// Result of a transient analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSolution {
    /// Final node voltages.
    pub final_voltages: Vec<f64>,
    /// Per-node time-averaged voltages (used for the error columns of Table II).
    pub average_voltages: Vec<f64>,
    /// Recorded waveforms, in the order of `record_nodes`.
    pub waveforms: Vec<Waveform>,
}

/// Runs a backward-Euler transient analysis: one factorization of
/// `G + C / h`, then one back-substitution per step.
///
/// Nodes without capacitance are handled naturally (their row of `C` is
/// zero). The initial condition is the DC operating point with all loads
/// inactive (the supply network at its quiescent state).
///
/// # Errors
///
/// Returns [`PowerGridError::InvalidParameter`] for a nonpositive step count
/// or time step, [`PowerGridError::NodeOutOfBounds`] for invalid recorded
/// nodes and [`PowerGridError::Sparse`] if the system cannot be factored.
pub fn transient_solve(
    grid: &PowerGrid,
    options: &TransientOptions,
) -> Result<TransientSolution, PowerGridError> {
    let system = stamp(grid);
    transient_solve_stamped(&system, grid, options)
}

/// Transient analysis on an already-stamped system (used by the reduction
/// flow, whose reduced models are matrices rather than netlists).
///
/// # Errors
///
/// See [`transient_solve`].
pub fn transient_solve_stamped(
    system: &StampedSystem,
    grid: &PowerGrid,
    options: &TransientOptions,
) -> Result<TransientSolution, PowerGridError> {
    let n = system.matrix.ncols();
    if options.steps == 0 || !(options.time_step > 0.0) {
        return Err(PowerGridError::InvalidParameter {
            name: "transient options",
            message: "steps and time_step must be positive".to_string(),
        });
    }
    for &node in &options.record_nodes {
        if node >= n {
            return Err(PowerGridError::NodeOutOfBounds {
                node,
                node_count: n,
            });
        }
    }
    let h = options.time_step;
    // System matrix G + C / h.
    let mut c_over_h = TripletMatrix::new(n, n);
    for (i, &c) in system.capacitance.iter().enumerate() {
        if c > 0.0 {
            c_over_h.push(i, i, c / h);
        }
    }
    let lhs = system.matrix.add_scaled(1.0, &c_over_h.to_csc(), 1.0)?;
    let factor = factor_spd(&lhs)?;

    // Quiescent initial condition: loads off.
    let mut quiescent_rhs = system.rhs.clone();
    for load in grid.loads() {
        quiescent_rhs[load.node] += load.amps;
    }
    let mut v = solve_spd(&system.matrix, &quiescent_rhs)?;

    let mut waveforms: Vec<Waveform> = options
        .record_nodes
        .iter()
        .map(|_| Waveform::default())
        .collect();
    let mut average = vec![0.0; n];

    for step in 1..=options.steps {
        let time = step as f64 * h;
        let scale = match options.load_scale {
            LoadScale::Constant => 1.0,
            LoadScale::Pulse { period, duty } => {
                let phase = (time / period).fract();
                if phase < duty {
                    1.0
                } else {
                    0.0
                }
            }
        };
        // rhs(t) = pad injections − scaled loads + (C/h) v_prev.
        let mut rhs = system.rhs.clone();
        for load in grid.loads() {
            // `system.rhs` already contains the full DC load; rescale it.
            rhs[load.node] += load.amps * (1.0 - scale);
        }
        for (i, &c) in system.capacitance.iter().enumerate() {
            if c > 0.0 {
                rhs[i] += c / h * v[i];
            }
        }
        v = factor.solve(&rhs);
        for (i, &vi) in v.iter().enumerate() {
            average[i] += vi;
        }
        for (w, &node) in waveforms.iter_mut().zip(&options.record_nodes) {
            w.times.push(time);
            w.values.push(v[node]);
        }
    }
    for a in &mut average {
        *a /= options.steps as f64;
    }
    Ok(TransientSolution {
        final_voltages: v,
        average_voltages: average,
        waveforms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Terminal;

    fn ladder(n: usize) -> PowerGrid {
        // A resistor ladder from a 1 V pad at node 0 to a load at node n-1.
        let mut g = PowerGrid::new(n);
        for i in 0..n - 1 {
            g.add_resistor(Terminal::Node(i), Terminal::Node(i + 1), 10.0)
                .expect("ok");
        }
        g.add_pad(0, 1.0, 1000.0).expect("ok");
        g.add_load(n - 1, 0.01).expect("ok");
        g.add_capacitor(n - 1, 1e-12).expect("ok");
        g
    }

    #[test]
    fn dc_ladder_voltages_match_hand_calculation() {
        // 0.01 A through 4 segments of 0.1 Ω each plus the pad resistance
        // 1 mΩ: drop per segment = 1 mV, pad drop = 10 µV.
        let g = ladder(5);
        let sol = dc_solve(&g).expect("solvable");
        let v = sol.voltages();
        let pad_drop = 0.01 / 1000.0;
        assert!((v[0] - (1.0 - pad_drop)).abs() < 1e-9);
        for i in 0..4 {
            assert!(((v[i] - v[i + 1]) - 0.001).abs() < 1e-9);
        }
        assert!((sol.max_drop(1.0) - (pad_drop + 0.004)).abs() < 1e-9);
    }

    #[test]
    fn stamp_is_symmetric_positive_definite() {
        let g = ladder(6);
        let s = stamp(&g);
        assert!(s.matrix.is_symmetric(1e-12));
        assert!(CholeskyFactor::factor(&s.matrix).is_ok());
        assert_eq!(s.capacitance.iter().filter(|&&c| c > 0.0).count(), 1);
    }

    #[test]
    fn floating_grid_is_rejected() {
        // A grid without any pad or ground path has a singular matrix.
        let mut g = PowerGrid::new(2);
        g.add_resistor(Terminal::Node(0), Terminal::Node(1), 1.0)
            .expect("ok");
        g.add_load(1, 0.001).expect("ok");
        assert!(dc_solve(&g).is_err());
    }

    #[test]
    fn transient_settles_to_dc_with_constant_loads() {
        let g = ladder(5);
        let dc = dc_solve(&g).expect("solvable");
        let tr = transient_solve(
            &g,
            &TransientOptions {
                time_step: 1e-10,
                steps: 400,
                record_nodes: vec![4],
                load_scale: LoadScale::Constant,
            },
        )
        .expect("solvable");
        // After many time constants the transient solution reaches DC.
        assert!((tr.final_voltages[4] - dc.voltage(4)).abs() < 1e-6);
        assert_eq!(tr.waveforms.len(), 1);
        assert_eq!(tr.waveforms[0].values.len(), 400);
    }

    #[test]
    fn pulsed_loads_produce_voltage_ripple() {
        let g = ladder(5);
        let tr = transient_solve(
            &g,
            &TransientOptions {
                time_step: 1e-11,
                steps: 1000,
                record_nodes: vec![4],
                load_scale: LoadScale::Pulse {
                    period: 2e-9,
                    duty: 0.5,
                },
            },
        )
        .expect("solvable");
        let w = &tr.waveforms[0];
        let min = w.values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = w.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1e-4, "expected ripple, got {min}..{max}");
        assert!(max <= 1.0 + 1e-9);
    }

    #[test]
    fn transient_option_validation() {
        let g = ladder(3);
        assert!(transient_solve(
            &g,
            &TransientOptions {
                steps: 0,
                ..TransientOptions::default()
            }
        )
        .is_err());
        assert!(transient_solve(
            &g,
            &TransientOptions {
                record_nodes: vec![99],
                ..TransientOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn waveform_difference() {
        let a = Waveform {
            times: vec![0.0, 1.0],
            values: vec![1.0, 2.0],
        };
        let b = Waveform {
            times: vec![0.0, 1.0],
            values: vec![1.5, 1.0],
        };
        assert_eq!(a.max_abs_difference(&b), 1.0);
    }

    #[test]
    fn average_voltages_are_between_extremes() {
        let g = ladder(4);
        let tr = transient_solve(
            &g,
            &TransientOptions {
                time_step: 1e-11,
                steps: 200,
                record_nodes: vec![3],
                load_scale: LoadScale::Pulse {
                    period: 1e-9,
                    duty: 0.5,
                },
            },
        )
        .expect("solvable");
        let w = &tr.waveforms[0];
        let min = w.values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = w.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let avg = tr.average_voltages[3];
        assert!(avg >= min - 1e-12 && avg <= max + 1e-12);
        assert_eq!(tr.final_voltages.len(), 4);
    }

    #[test]
    fn stamped_rhs_reflects_pads_and_loads() {
        let g = ladder(3);
        let s = stamp(&g);
        // Pad injection at node 0: 1000 S * 1 V; load at node 2: -0.01 A.
        assert!((s.rhs[0] - 1000.0).abs() < 1e-12);
        assert!((s.rhs[2] + 0.01).abs() < 1e-15);
        assert_eq!(s.rhs[1], 0.0);
    }
}
