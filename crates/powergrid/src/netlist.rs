//! The power-grid circuit model.
//!
//! A [`PowerGrid`] is a single supply net modeled the way the IBM power-grid
//! benchmarks are analyzed: resistive wire segments between nodes (or from a
//! node to the ideal ground), current-source loads pulling current from a
//! node, supply pads modeled as a series resistance to the ideal supply
//! (a Norton equivalent, which keeps the conductance matrix symmetric
//! positive definite) and decoupling capacitors to ground for transient
//! analysis.
//!
//! A *port* node — the definition used throughout the paper — is a node
//! attached to a voltage source (pad) or a current source (load). Port nodes
//! must survive any reduction.

use crate::error::PowerGridError;

/// One terminal of a two-terminal element: a grid node or the ideal ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// A grid node, by index.
    Node(usize),
    /// The ideal ground / reference node.
    Ground,
}

/// A resistive segment between two terminals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resistor {
    /// First terminal.
    pub a: Terminal,
    /// Second terminal.
    pub b: Terminal,
    /// Conductance in siemens (`1 / resistance`).
    pub conductance: f64,
}

/// A DC or transient current load pulling `amps` from a node to ground.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentLoad {
    /// The loaded node.
    pub node: usize,
    /// DC current drawn in amperes.
    pub amps: f64,
}

/// A supply pad: a connection to the ideal supply voltage through a series
/// conductance (Norton equivalent of a voltage source with source resistance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyPad {
    /// The node the pad attaches to.
    pub node: usize,
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Pad conductance in siemens.
    pub conductance: f64,
}

/// A decoupling capacitor from a node to ground.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacitor {
    /// The decoupled node.
    pub node: usize,
    /// Capacitance in farads.
    pub farads: f64,
}

/// Classification of a node for the reduction flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Connected to a voltage or current source; must be preserved.
    Port,
    /// Any other node; may be eliminated or merged.
    Internal,
}

/// A single-net power-grid circuit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerGrid {
    node_count: usize,
    resistors: Vec<Resistor>,
    loads: Vec<CurrentLoad>,
    pads: Vec<SupplyPad>,
    capacitors: Vec<Capacitor>,
}

impl PowerGrid {
    /// Creates an empty grid with `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        PowerGrid {
            node_count,
            ..PowerGrid::default()
        }
    }

    /// Number of nodes (the ideal ground is not counted).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of resistive segments.
    pub fn resistor_count(&self) -> usize {
        self.resistors.len()
    }

    /// Registered resistors.
    pub fn resistors(&self) -> &[Resistor] {
        &self.resistors
    }

    /// Registered current loads.
    pub fn loads(&self) -> &[CurrentLoad] {
        &self.loads
    }

    /// Registered supply pads.
    pub fn pads(&self) -> &[SupplyPad] {
        &self.pads
    }

    /// Registered decoupling capacitors.
    pub fn capacitors(&self) -> &[Capacitor] {
        &self.capacitors
    }

    /// Appends `count` nodes and returns the index of the first new node.
    pub fn add_nodes(&mut self, count: usize) -> usize {
        let first = self.node_count;
        self.node_count += count;
        first
    }

    /// Adds a resistor between two terminals.
    ///
    /// # Errors
    ///
    /// Returns [`PowerGridError::NodeOutOfBounds`] for invalid nodes and
    /// [`PowerGridError::InvalidElement`] for nonpositive conductance or a
    /// resistor with both terminals identical.
    pub fn add_resistor(
        &mut self,
        a: Terminal,
        b: Terminal,
        conductance: f64,
    ) -> Result<(), PowerGridError> {
        self.check_terminal(a)?;
        self.check_terminal(b)?;
        if a == b {
            return Err(PowerGridError::InvalidElement {
                element: format!("resistor {a:?}-{b:?}"),
                message: "terminals must differ".to_string(),
            });
        }
        if !(conductance > 0.0) || !conductance.is_finite() {
            return Err(PowerGridError::InvalidElement {
                element: format!("resistor {a:?}-{b:?}"),
                message: format!("conductance {conductance} must be positive and finite"),
            });
        }
        self.resistors.push(Resistor { a, b, conductance });
        Ok(())
    }

    /// Adds a current load at a node.
    ///
    /// # Errors
    ///
    /// Returns [`PowerGridError::NodeOutOfBounds`] for an invalid node and
    /// [`PowerGridError::InvalidElement`] for a non-finite current.
    pub fn add_load(&mut self, node: usize, amps: f64) -> Result<(), PowerGridError> {
        self.check_node(node)?;
        if !amps.is_finite() {
            return Err(PowerGridError::InvalidElement {
                element: format!("current load at node {node}"),
                message: format!("current {amps} must be finite"),
            });
        }
        self.loads.push(CurrentLoad { node, amps });
        Ok(())
    }

    /// Adds a supply pad at a node.
    ///
    /// # Errors
    ///
    /// Returns [`PowerGridError::NodeOutOfBounds`] for an invalid node and
    /// [`PowerGridError::InvalidElement`] for nonpositive pad conductance or a
    /// non-finite voltage.
    pub fn add_pad(
        &mut self,
        node: usize,
        voltage: f64,
        conductance: f64,
    ) -> Result<(), PowerGridError> {
        self.check_node(node)?;
        if !(conductance > 0.0) || !conductance.is_finite() || !voltage.is_finite() {
            return Err(PowerGridError::InvalidElement {
                element: format!("pad at node {node}"),
                message: "voltage must be finite and conductance positive".to_string(),
            });
        }
        self.pads.push(SupplyPad {
            node,
            voltage,
            conductance,
        });
        Ok(())
    }

    /// Adds a decoupling capacitor at a node.
    ///
    /// # Errors
    ///
    /// Returns [`PowerGridError::NodeOutOfBounds`] for an invalid node and
    /// [`PowerGridError::InvalidElement`] for a nonpositive capacitance.
    pub fn add_capacitor(&mut self, node: usize, farads: f64) -> Result<(), PowerGridError> {
        self.check_node(node)?;
        if !(farads > 0.0) || !farads.is_finite() {
            return Err(PowerGridError::InvalidElement {
                element: format!("capacitor at node {node}"),
                message: format!("capacitance {farads} must be positive and finite"),
            });
        }
        self.capacitors.push(Capacitor { node, farads });
        Ok(())
    }

    /// Classification of every node: ports are the nodes touched by a pad or
    /// a current load.
    pub fn node_kinds(&self) -> Vec<NodeKind> {
        let mut kinds = vec![NodeKind::Internal; self.node_count];
        for pad in &self.pads {
            kinds[pad.node] = NodeKind::Port;
        }
        for load in &self.loads {
            kinds[load.node] = NodeKind::Port;
        }
        kinds
    }

    /// Indices of the port nodes, sorted.
    pub fn port_nodes(&self) -> Vec<usize> {
        self.node_kinds()
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k == NodeKind::Port)
            .map(|(i, _)| i)
            .collect()
    }

    /// Nominal supply voltage (maximum pad voltage), or `0.0` without pads.
    pub fn supply_voltage(&self) -> f64 {
        self.pads.iter().fold(0.0_f64, |m, p| m.max(p.voltage))
    }

    /// Total DC load current.
    pub fn total_load_current(&self) -> f64 {
        self.loads.iter().map(|l| l.amps).sum()
    }

    fn check_node(&self, node: usize) -> Result<(), PowerGridError> {
        if node >= self.node_count {
            Err(PowerGridError::NodeOutOfBounds {
                node,
                node_count: self.node_count,
            })
        } else {
            Ok(())
        }
    }

    fn check_terminal(&self, t: Terminal) -> Result<(), PowerGridError> {
        match t {
            Terminal::Node(n) => self.check_node(n),
            Terminal::Ground => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> PowerGrid {
        // 0 --R-- 1 --R-- 2 ; pad at 0, load at 2.
        let mut g = PowerGrid::new(3);
        g.add_resistor(Terminal::Node(0), Terminal::Node(1), 10.0)
            .expect("ok");
        g.add_resistor(Terminal::Node(1), Terminal::Node(2), 10.0)
            .expect("ok");
        g.add_pad(0, 1.8, 100.0).expect("ok");
        g.add_load(2, 0.01).expect("ok");
        g.add_capacitor(2, 1e-12).expect("ok");
        g
    }

    #[test]
    fn counts_and_accessors() {
        let g = tiny_grid();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.resistor_count(), 2);
        assert_eq!(g.pads().len(), 1);
        assert_eq!(g.loads().len(), 1);
        assert_eq!(g.capacitors().len(), 1);
        assert_eq!(g.supply_voltage(), 1.8);
        assert!((g.total_load_current() - 0.01).abs() < 1e-15);
    }

    #[test]
    fn port_classification() {
        let g = tiny_grid();
        let kinds = g.node_kinds();
        assert_eq!(kinds[0], NodeKind::Port);
        assert_eq!(kinds[1], NodeKind::Internal);
        assert_eq!(kinds[2], NodeKind::Port);
        assert_eq!(g.port_nodes(), vec![0, 2]);
    }

    #[test]
    fn invalid_elements_rejected() {
        let mut g = PowerGrid::new(2);
        assert!(g
            .add_resistor(Terminal::Node(0), Terminal::Node(0), 1.0)
            .is_err());
        assert!(g
            .add_resistor(Terminal::Node(0), Terminal::Node(5), 1.0)
            .is_err());
        assert!(g
            .add_resistor(Terminal::Node(0), Terminal::Node(1), -1.0)
            .is_err());
        assert!(g.add_pad(0, f64::NAN, 1.0).is_err());
        assert!(g.add_pad(9, 1.0, 1.0).is_err());
        assert!(g.add_load(0, f64::INFINITY).is_err());
        assert!(g.add_capacitor(0, 0.0).is_err());
    }

    #[test]
    fn add_nodes_extends() {
        let mut g = PowerGrid::new(1);
        let first = g.add_nodes(2);
        assert_eq!(first, 1);
        assert_eq!(g.node_count(), 3);
        assert!(g
            .add_resistor(Terminal::Node(0), Terminal::Node(2), 1.0)
            .is_ok());
    }

    #[test]
    fn ground_resistors_allowed() {
        let mut g = PowerGrid::new(1);
        assert!(g
            .add_resistor(Terminal::Node(0), Terminal::Ground, 5.0)
            .is_ok());
        assert!(g
            .add_resistor(Terminal::Ground, Terminal::Ground, 5.0)
            .is_err());
    }
}
