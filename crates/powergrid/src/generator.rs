//! Synthetic IBM-like power-grid generator.
//!
//! The IBM power-grid benchmarks used in the paper's Table II are not
//! redistributable, so the experiments run on synthetic grids with the same
//! structure: a two-layer wire mesh (built on
//! [`effres_graph::generators::power_grid_mesh`]), supply pads attached to
//! the coarse upper layer, current-source loads scattered over the lower
//! layer and decoupling capacitors at the load nodes. The generator also
//! writes SPICE decks so the parser and the generator round-trip.

use crate::error::PowerGridError;
use crate::netlist::{PowerGrid, Terminal};
use effres_graph::generators::{power_grid_mesh, PowerGridMeshOptions};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Options of the synthetic power-grid generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticGridOptions {
    /// Rows of the lower metal layer.
    pub rows: usize,
    /// Columns of the lower metal layer.
    pub cols: usize,
    /// Supply voltage in volts.
    pub supply_voltage: f64,
    /// Number of supply pads (attached to upper-layer nodes).
    pub pad_count: usize,
    /// Pad conductance in siemens.
    pub pad_conductance: f64,
    /// Fraction of lower-layer nodes that carry a current load.
    pub load_fraction: f64,
    /// Average load current in amperes.
    pub average_load_current: f64,
    /// Decoupling capacitance attached to every load node, in farads.
    pub load_capacitance: f64,
    /// Seed of the generator.
    pub seed: u64,
}

impl Default for SyntheticGridOptions {
    fn default() -> Self {
        SyntheticGridOptions {
            rows: 48,
            cols: 48,
            supply_voltage: 1.8,
            pad_count: 16,
            pad_conductance: 1.0e3,
            load_fraction: 0.25,
            average_load_current: 5e-4,
            load_capacitance: 5e-13,
            seed: 7,
        }
    }
}

impl SyntheticGridOptions {
    /// A small grid suitable for unit tests and doc examples.
    pub fn small() -> Self {
        SyntheticGridOptions {
            rows: 12,
            cols: 12,
            pad_count: 4,
            ..SyntheticGridOptions::default()
        }
    }

    /// A grid of roughly the requested node count (rows ≈ cols ≈ √nodes).
    pub fn with_target_nodes(nodes: usize) -> Self {
        let side = (nodes as f64).sqrt().ceil().max(8.0) as usize;
        SyntheticGridOptions {
            rows: side,
            cols: side,
            pad_count: (side / 4).max(4),
            ..SyntheticGridOptions::default()
        }
    }
}

/// Generates a synthetic IBM-like power grid.
///
/// # Errors
///
/// Returns [`PowerGridError::InvalidParameter`] for degenerate options and
/// propagates element construction errors.
pub fn synthetic_grid(options: &SyntheticGridOptions) -> Result<PowerGrid, PowerGridError> {
    if options.rows < 4 || options.cols < 4 {
        return Err(PowerGridError::InvalidParameter {
            name: "rows/cols",
            message: "the mesh must be at least 4x4".to_string(),
        });
    }
    if options.pad_count == 0 {
        return Err(PowerGridError::InvalidParameter {
            name: "pad_count",
            message: "at least one pad is required".to_string(),
        });
    }
    if !(0.0..=1.0).contains(&options.load_fraction) {
        return Err(PowerGridError::InvalidParameter {
            name: "load_fraction",
            message: "must lie in [0, 1]".to_string(),
        });
    }
    let mesh = power_grid_mesh(PowerGridMeshOptions {
        rows: options.rows,
        cols: options.cols,
        seed: options.seed,
        ..PowerGridMeshOptions::default()
    })?;
    let mut grid = PowerGrid::new(mesh.node_count());
    for (_, e) in mesh.edges() {
        grid.add_resistor(Terminal::Node(e.u), Terminal::Node(e.v), e.weight)?;
    }
    let mut rng = StdRng::seed_from_u64(options.seed ^ 0xabcd_ef01_2345_6789);
    // Pads on upper-layer nodes (the nodes appended after the lower mesh).
    let lower_count = options.rows * options.cols;
    let mut upper_nodes: Vec<usize> = (lower_count..mesh.node_count()).collect();
    upper_nodes.shuffle(&mut rng);
    let pad_count = options.pad_count.min(upper_nodes.len()).max(1);
    for &node in upper_nodes.iter().take(pad_count) {
        grid.add_pad(node, options.supply_voltage, options.pad_conductance)?;
    }
    // Loads and decap on a fraction of lower-layer nodes.
    let mut lower_nodes: Vec<usize> = (0..lower_count).collect();
    lower_nodes.shuffle(&mut rng);
    let load_count = ((lower_count as f64) * options.load_fraction).round() as usize;
    for &node in lower_nodes.iter().take(load_count) {
        let amps = options.average_load_current * rng.gen_range(0.5..1.5);
        grid.add_load(node, amps)?;
        grid.add_capacitor(node, options.load_capacitance)?;
    }
    Ok(grid)
}

/// Writes a power grid as a SPICE deck accepted by [`crate::parser::parse_netlist`].
///
/// Ideal-source conversion: pads are written as voltage sources (their
/// conductance is restored to the parser's default when read back).
pub fn write_netlist(grid: &PowerGrid) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* synthetic power grid: {} nodes", grid.node_count());
    for (k, r) in grid.resistors().iter().enumerate() {
        let name = |t| match t {
            Terminal::Node(n) => format!("n{n}"),
            Terminal::Ground => "0".to_string(),
        };
        let _ = writeln!(
            out,
            "R{k} {} {} {}",
            name(r.a),
            name(r.b),
            1.0 / r.conductance
        );
    }
    for (k, c) in grid.capacitors().iter().enumerate() {
        let _ = writeln!(out, "C{k} n{} 0 {}", c.node, c.farads);
    }
    for (k, l) in grid.loads().iter().enumerate() {
        let _ = writeln!(out, "I{k} n{} 0 {}", l.node, l.amps);
    }
    for (k, p) in grid.pads().iter().enumerate() {
        let _ = writeln!(out, "V{k} n{} 0 {}", p.node, p.voltage);
    }
    let _ = writeln!(out, ".op");
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dc_solve;
    use crate::parser::parse_netlist;

    #[test]
    fn small_grid_is_well_formed_and_solvable() {
        let grid = synthetic_grid(&SyntheticGridOptions::small()).expect("valid");
        assert!(grid.node_count() > 144);
        assert!(!grid.pads().is_empty());
        assert!(grid.loads().len() > 10);
        let sol = dc_solve(&grid).expect("solvable");
        let supply = grid.supply_voltage();
        // All node voltages below supply and above supply minus a sane drop.
        for &v in sol.voltages() {
            assert!(v <= supply + 1e-9);
            assert!(v >= supply * 0.5, "excessive drop: {v}");
        }
        assert!(sol.max_drop(supply) > 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = synthetic_grid(&SyntheticGridOptions::small()).expect("valid");
        let b = synthetic_grid(&SyntheticGridOptions::small()).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn target_node_count_scales() {
        let o = SyntheticGridOptions::with_target_nodes(2500);
        assert!(o.rows >= 50 && o.cols >= 50);
        let small = SyntheticGridOptions::with_target_nodes(10);
        assert!(small.rows >= 8);
    }

    #[test]
    fn invalid_options_rejected() {
        let mut o = SyntheticGridOptions::small();
        o.rows = 2;
        assert!(synthetic_grid(&o).is_err());
        let mut o = SyntheticGridOptions::small();
        o.pad_count = 0;
        assert!(synthetic_grid(&o).is_err());
        let mut o = SyntheticGridOptions::small();
        o.load_fraction = 2.0;
        assert!(synthetic_grid(&o).is_err());
    }

    #[test]
    fn netlist_round_trip_preserves_topology_and_dc_solution() {
        let grid = synthetic_grid(&SyntheticGridOptions::small()).expect("valid");
        let deck = write_netlist(&grid);
        let parsed = parse_netlist(&deck).expect("valid deck");
        assert_eq!(parsed.node_count(), grid.node_count());
        assert_eq!(parsed.resistor_count(), grid.resistor_count());
        assert_eq!(parsed.loads().len(), grid.loads().len());
        assert_eq!(parsed.pads().len(), grid.pads().len());
        // Voltages agree within the pad-conductance modeling difference.
        let a = dc_solve(&grid).expect("solvable");
        let b = dc_solve(&parsed).expect("solvable");
        let max_diff = a
            .voltages()
            .iter()
            .zip(b.voltages())
            .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()));
        assert!(max_diff < 5e-3, "round-trip voltage difference {max_diff}");
    }
}
