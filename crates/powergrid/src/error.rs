//! Error type of the power-grid crate.

use effres::EffresError;
use effres_graph::GraphError;
use effres_sparse::SparseError;
use std::fmt;

/// Errors produced by power-grid construction, analysis and reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerGridError {
    /// A failure in the underlying sparse linear algebra.
    Sparse(SparseError),
    /// A failure in the graph substrate.
    Graph(GraphError),
    /// A failure in the effective-resistance engine.
    Effres(EffresError),
    /// A node index was out of bounds.
    NodeOutOfBounds {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the grid.
        node_count: usize,
    },
    /// An element value (resistance, capacitance, current, voltage) was invalid.
    InvalidElement {
        /// Description of the element.
        element: String,
        /// Why it was rejected.
        message: String,
    },
    /// The netlist text could not be parsed.
    Parse {
        /// Line number (1-based).
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A configuration or algorithm parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        message: String,
    },
}

impl fmt::Display for PowerGridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerGridError::Sparse(e) => write!(f, "sparse linear algebra error: {e}"),
            PowerGridError::Graph(e) => write!(f, "graph error: {e}"),
            PowerGridError::Effres(e) => write!(f, "effective resistance error: {e}"),
            PowerGridError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node {node} out of bounds for a grid with {node_count} nodes"
                )
            }
            PowerGridError::InvalidElement { element, message } => {
                write!(f, "invalid element {element}: {message}")
            }
            PowerGridError::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            PowerGridError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for PowerGridError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PowerGridError::Sparse(e) => Some(e),
            PowerGridError::Graph(e) => Some(e),
            PowerGridError::Effres(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for PowerGridError {
    fn from(e: SparseError) -> Self {
        PowerGridError::Sparse(e)
    }
}

impl From<GraphError> for PowerGridError {
    fn from(e: GraphError) -> Self {
        PowerGridError::Graph(e)
    }
}

impl From<EffresError> for PowerGridError {
    fn from(e: EffresError) -> Self {
        PowerGridError::Effres(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: PowerGridError = SparseError::NotSquare { nrows: 1, ncols: 2 }.into();
        assert!(e.to_string().contains("sparse"));
        let e: PowerGridError = GraphError::SelfLoop { node: 0 }.into();
        assert!(e.to_string().contains("graph"));
        let e = PowerGridError::Parse {
            line: 12,
            message: "bad token".to_string(),
        };
        assert!(e.to_string().contains("line 12"));
    }
}
