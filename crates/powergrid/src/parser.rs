//! SPICE-subset netlist parser for IBM-PG-style decks.
//!
//! The IBM power-grid benchmarks are distributed as SPICE decks containing
//! resistors, current sources, voltage sources and (for the transient cases)
//! capacitors. The benchmarks themselves are not redistributable, so this
//! parser exists to accept decks in the same format — either real ones the
//! user supplies or decks written by [`crate::generator::write_netlist`].
//!
//! Supported cards:
//!
//! ```text
//! R<name> <node1> <node2> <resistance>
//! C<name> <node1> 0       <capacitance>
//! I<name> <node1> 0       <current>
//! V<name> <node1> 0       <voltage>
//! * comment
//! .op / .end / .tran ... (ignored)
//! ```
//!
//! Node `0` (or `gnd`) is the ideal ground. Ideal voltage sources are
//! converted to Norton-equivalent pads with a configurable (large) pad
//! conductance so the stamped system stays symmetric positive definite.

use crate::error::PowerGridError;
use crate::netlist::{PowerGrid, Terminal};
use std::collections::HashMap;

/// Pad conductance used when converting ideal voltage sources to Norton pads.
pub const DEFAULT_PAD_CONDUCTANCE: f64 = 1.0e4;

/// Parses a SPICE-subset netlist into a [`PowerGrid`].
///
/// # Errors
///
/// Returns [`PowerGridError::Parse`] for malformed cards and propagates
/// element errors from [`PowerGrid`].
pub fn parse_netlist(text: &str) -> Result<PowerGrid, PowerGridError> {
    let mut names: HashMap<String, usize> = HashMap::new();
    let mut grid = PowerGrid::new(0);

    let mut resolve = |grid: &mut PowerGrid, token: &str| -> Terminal {
        if token == "0" || token.eq_ignore_ascii_case("gnd") {
            return Terminal::Ground;
        }
        let next = names.len();
        let id = *names.entry(token.to_string()).or_insert(next);
        while grid.node_count() <= id {
            grid.add_nodes(1);
        }
        Terminal::Node(id)
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let number = lineno + 1;
        if line.is_empty() || line.starts_with('*') || line.starts_with('.') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 4 {
            return Err(PowerGridError::Parse {
                line: number,
                message: format!("expected at least 4 tokens, found {}", tokens.len()),
            });
        }
        let value: f64 = parse_value(tokens[3]).ok_or_else(|| PowerGridError::Parse {
            line: number,
            message: format!("cannot parse value `{}`", tokens[3]),
        })?;
        let kind = tokens[0]
            .chars()
            .next()
            .expect("nonempty token")
            .to_ascii_uppercase();
        let a = resolve(&mut grid, tokens[1]);
        let b = resolve(&mut grid, tokens[2]);
        match kind {
            'R' => {
                if value <= 0.0 {
                    // Some decks contain zero-ohm via resistors; model them as
                    // a very large conductance instead of failing.
                    let (na, nb) = (a, b);
                    grid.add_resistor(na, nb, 1.0e9)?;
                } else {
                    grid.add_resistor(a, b, 1.0 / value)?;
                }
            }
            'C' => {
                let node = node_of(a, b).ok_or_else(|| PowerGridError::Parse {
                    line: number,
                    message: "capacitors must connect a node to ground".to_string(),
                })?;
                grid.add_capacitor(node, value)?;
            }
            'I' => {
                let node = node_of(a, b).ok_or_else(|| PowerGridError::Parse {
                    line: number,
                    message: "current sources must connect a node to ground".to_string(),
                })?;
                grid.add_load(node, value)?;
            }
            'V' => {
                let node = node_of(a, b).ok_or_else(|| PowerGridError::Parse {
                    line: number,
                    message: "voltage sources must connect a node to ground".to_string(),
                })?;
                grid.add_pad(node, value, DEFAULT_PAD_CONDUCTANCE)?;
            }
            other => {
                return Err(PowerGridError::Parse {
                    line: number,
                    message: format!("unsupported element type `{other}`"),
                });
            }
        }
    }
    Ok(grid)
}

/// Returns the non-ground node of a two-terminal element, if exactly one
/// terminal is a node.
fn node_of(a: Terminal, b: Terminal) -> Option<usize> {
    match (a, b) {
        (Terminal::Node(n), Terminal::Ground) | (Terminal::Ground, Terminal::Node(n)) => Some(n),
        _ => None,
    }
}

/// Parses a SPICE value with an optional engineering suffix.
fn parse_value(token: &str) -> Option<f64> {
    let lower = token.to_ascii_lowercase();
    let (number, multiplier) = if let Some(stripped) = lower.strip_suffix("meg") {
        (stripped, 1e6)
    } else if let Some(stripped) = lower.strip_suffix('k') {
        (stripped, 1e3)
    } else if let Some(stripped) = lower.strip_suffix('m') {
        (stripped, 1e-3)
    } else if let Some(stripped) = lower.strip_suffix('u') {
        (stripped, 1e-6)
    } else if let Some(stripped) = lower.strip_suffix('n') {
        (stripped, 1e-9)
    } else if let Some(stripped) = lower.strip_suffix('p') {
        (stripped, 1e-12)
    } else if let Some(stripped) = lower.strip_suffix('f') {
        (stripped, 1e-15)
    } else {
        (lower.as_str(), 1.0)
    };
    number.parse::<f64>().ok().map(|v| v * multiplier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dc_solve;

    const DECK: &str = "\
* tiny test deck
V1 n0 0 1.8
R1 n0 n1 0.1
R2 n1 n2 0.1
R3 n2 0 1k
C1 n2 0 10p
I1 n2 0 5m
.op
.end
";

    #[test]
    fn parses_all_supported_cards() {
        let grid = parse_netlist(DECK).expect("valid deck");
        assert_eq!(grid.node_count(), 3);
        assert_eq!(grid.resistor_count(), 3);
        assert_eq!(grid.pads().len(), 1);
        assert_eq!(grid.loads().len(), 1);
        assert_eq!(grid.capacitors().len(), 1);
        assert!((grid.loads()[0].amps - 5e-3).abs() < 1e-12);
        assert!((grid.capacitors()[0].farads - 10e-12).abs() < 1e-20);
    }

    #[test]
    fn parsed_deck_is_solvable() {
        let grid = parse_netlist(DECK).expect("valid deck");
        let sol = dc_solve(&grid).expect("solvable");
        // Voltage should drop along the chain: v(n0) > v(n1) > v(n2).
        let v = sol.voltages();
        assert!(v[0] > v[1] && v[1] > v[2]);
        assert!(v[0] <= 1.8 + 1e-9);
    }

    #[test]
    fn engineering_suffixes() {
        let close = |token: &str, expected: f64| {
            let value = parse_value(token).expect("parsable");
            assert!(
                ((value - expected) / expected).abs() < 1e-12,
                "{token}: {value} vs {expected}"
            );
        };
        close("5k", 5000.0);
        close("2meg", 2e6);
        close("3m", 3e-3);
        close("4u", 4e-6);
        close("7n", 7e-9);
        close("8p", 8e-12);
        close("1.5", 1.5);
        assert_eq!(parse_value("bogus"), None);
    }

    #[test]
    fn zero_ohm_resistors_become_large_conductances() {
        let grid = parse_netlist("R1 a b 0\nV1 a 0 1.0\nI1 b 0 1m\n").expect("valid");
        assert_eq!(grid.resistor_count(), 1);
        assert!(grid.resistors()[0].conductance >= 1e9);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_netlist("R1 a b").is_err());
        assert!(parse_netlist("R1 a b xyz").is_err());
        assert!(parse_netlist("Q1 a b 5").is_err());
        assert!(parse_netlist("C1 a b 5p").is_err());
        assert!(parse_netlist("V1 a b 1.0").is_err());
    }

    #[test]
    fn comments_and_directives_are_skipped() {
        let grid = parse_netlist("* only comments\n.op\n.end\n").expect("valid");
        assert_eq!(grid.node_count(), 0);
    }
}
