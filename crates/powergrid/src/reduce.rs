//! Graph-sparsification-based power-grid reduction (Alg. 1 of the paper).
//!
//! The flow:
//!
//! 1. partition the resistor network into blocks (the paper uses METIS with
//!    `#ports / 50` blocks; we use the multilevel partitioner of
//!    [`effres_graph::partition`]);
//! 2. classify nodes as *ports* (attached to a pad, a load or a ground
//!    resistor), *non-port interface* nodes (non-ports with a neighbour in
//!    another block) and *non-port interior* nodes;
//! 3. per block, eliminate the interior nodes exactly with a Schur
//!    complement ([`crate::schur`]);
//! 4. per reduced block, compute the effective resistance of every edge —
//!    exactly, with the WWW'15 random-projection baseline, or with the
//!    paper's Alg. 3 — merge electrically-equivalent nodes and sparsify the
//!    block by effective-resistance sampling ([`crate::sparsify`]);
//! 5. stitch the reduced blocks and the original cross-block edges back into
//!    a reduced power grid carrying the original pads, loads and capacitors.

use crate::error::PowerGridError;
use crate::netlist::{PowerGrid, Terminal};
use crate::schur::SchurReduction;
use crate::sparsify::{
    apply_merge, merge_by_effective_resistance, sparsify_by_effective_resistance, SparsifyOptions,
};
use effres::prelude::*;
use effres::random_projection::RandomProjectionOptions;
use effres_graph::partition::{partition_graph, Partition};
use effres_graph::Graph;
use effres_sparse::TripletMatrix;
use std::time::{Duration, Instant};

/// How the effective resistances of step 4 are computed.
#[derive(Debug, Clone, PartialEq)]
pub enum ErMethod {
    /// Exact effective resistances via a full sparse Cholesky factorization
    /// (the "Acc. Eff. Res." columns of Table II).
    Exact,
    /// The WWW'15 random-projection baseline.
    RandomProjection(RandomProjectionOptions),
    /// The paper's Alg. 3 (sparse approximate inverse of the Cholesky factor).
    ApproxInverse(EffresConfig),
}

impl Default for ErMethod {
    fn default() -> Self {
        ErMethod::ApproxInverse(EffresConfig::default())
    }
}

/// Options of the reduction flow.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionOptions {
    /// Target number of ports per block (the paper uses 50).
    pub ports_per_block: usize,
    /// Effective-resistance method used for merging and sparsification.
    pub er_method: ErMethod,
    /// Nodes joined by an edge with effective resistance below
    /// `merge_threshold_factor ×` (median edge resistance of the block) are
    /// merged. `0.0` disables merging.
    pub merge_threshold_factor: f64,
    /// Edge-sampling sparsifier options.
    pub sparsify: SparsifyOptions,
    /// Absolute threshold below which Schur-complement entries are dropped.
    pub schur_drop_tolerance: f64,
    /// Seed of the partitioner.
    pub seed: u64,
}

impl Default for ReductionOptions {
    fn default() -> Self {
        ReductionOptions {
            ports_per_block: 50,
            er_method: ErMethod::default(),
            merge_threshold_factor: 0.01,
            sparsify: SparsifyOptions::default(),
            schur_drop_tolerance: 1e-12,
            seed: 1,
        }
    }
}

/// Role of a node in the reduction flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionNodeKind {
    /// Attached to a pad, load or ground resistor; always kept.
    Port,
    /// Non-port node with a neighbour in another block; kept for stitching.
    Interface,
    /// Non-port node whose neighbours are all in its own block; eliminated.
    Interior,
}

/// Partition and node classification shared by the full and incremental flows.
#[derive(Debug, Clone)]
pub struct GridPartition {
    /// The resistor-network graph (node–node resistors only).
    pub graph: Graph,
    /// Conductance to ground of every node (from node–ground resistors).
    pub ground_conductance: Vec<f64>,
    /// Block label of every node.
    pub partition: Partition,
    /// Role of every node.
    pub kinds: Vec<ReductionNodeKind>,
}

impl GridPartition {
    /// Builds the resistor graph, partitions it and classifies the nodes.
    ///
    /// # Errors
    ///
    /// Propagates graph and partitioning errors.
    pub fn build(grid: &PowerGrid, options: &ReductionOptions) -> Result<Self, PowerGridError> {
        let (graph, ground_conductance) = resistor_graph(grid);
        let mut is_port = vec![false; grid.node_count()];
        for pad in grid.pads() {
            is_port[pad.node] = true;
        }
        for load in grid.loads() {
            is_port[load.node] = true;
        }
        for (node, &g) in ground_conductance.iter().enumerate() {
            if g > 0.0 {
                is_port[node] = true;
            }
        }
        let port_count = is_port.iter().filter(|&&p| p).count().max(1);
        let blocks = (port_count / options.ports_per_block.max(1)).max(1);
        let blocks = blocks.min(grid.node_count().max(1));
        let partition = partition_graph(&graph, blocks, options.seed)?;
        let mut kinds = vec![ReductionNodeKind::Interior; grid.node_count()];
        for node in 0..grid.node_count() {
            if is_port[node] {
                kinds[node] = ReductionNodeKind::Port;
                continue;
            }
            let my_block = partition.part_of(node);
            let interface = graph
                .neighbors(node)
                .any(|(u, _)| partition.part_of(u) != my_block);
            if interface {
                kinds[node] = ReductionNodeKind::Interface;
            }
        }
        Ok(GridPartition {
            graph,
            ground_conductance,
            partition,
            kinds,
        })
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.partition.parts()
    }

    /// Nodes of a block.
    pub fn block_nodes(&self, block: usize) -> Vec<usize> {
        self.partition.members(block)
    }
}

/// The reduced model of one block, expressed in original node ids so blocks
/// can be re-reduced independently and re-stitched (incremental analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReduced {
    /// Block id.
    pub block: usize,
    /// Representative original id of every kept node of the block
    /// (after merging; representatives map to themselves).
    pub merge_representative: Vec<(usize, usize)>,
    /// Reduced intra-block resistors `(original u, original v, conductance)`.
    pub edges: Vec<(usize, usize, f64)>,
    /// Reduced conductances to ground `(original node, conductance)`.
    pub grounds: Vec<(usize, f64)>,
    /// Wall-clock time spent computing effective resistances.
    pub er_time: Duration,
    /// Wall-clock time spent in the Schur elimination.
    pub schur_time: Duration,
}

/// Statistics of a full reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReductionStats {
    /// Nodes of the original grid.
    pub original_nodes: usize,
    /// Resistors of the original grid.
    pub original_resistors: usize,
    /// Nodes of the reduced grid.
    pub reduced_nodes: usize,
    /// Resistors of the reduced grid.
    pub reduced_resistors: usize,
    /// Number of blocks.
    pub blocks: usize,
    /// Total reduction time.
    pub total_time: Duration,
    /// Time spent computing effective resistances.
    pub er_time: Duration,
    /// Time spent in Schur eliminations.
    pub schur_time: Duration,
}

/// A reduced power grid together with the mapping back to original nodes.
#[derive(Debug, Clone)]
pub struct ReducedGrid {
    /// The reduced netlist (ports, pads, loads and capacitors preserved).
    pub grid: PowerGrid,
    /// For every original node, its index in the reduced grid (ports and
    /// interface nodes only; eliminated nodes map to `None`).
    pub node_map: Vec<Option<usize>>,
    /// Reduction statistics.
    pub stats: ReductionStats,
}

/// Runs the full Alg. 1 reduction.
///
/// # Errors
///
/// Propagates partitioning, factorization and effective-resistance errors.
pub fn reduce(grid: &PowerGrid, options: &ReductionOptions) -> Result<ReducedGrid, PowerGridError> {
    let start = Instant::now();
    let partition = GridPartition::build(grid, options)?;
    let mut blocks = Vec::with_capacity(partition.block_count());
    for block in 0..partition.block_count() {
        blocks.push(reduce_block(&partition, block, options)?);
    }
    let mut reduced = stitch(grid, &partition, &blocks)?;
    reduced.stats.total_time = start.elapsed();
    Ok(reduced)
}

/// Builds the node–node resistor graph and the per-node ground conductances.
pub(crate) fn resistor_graph(grid: &PowerGrid) -> (Graph, Vec<f64>) {
    let mut graph = Graph::with_capacity(grid.node_count(), grid.resistor_count());
    let mut ground = vec![0.0; grid.node_count()];
    for r in grid.resistors() {
        match (r.a, r.b) {
            (Terminal::Node(i), Terminal::Node(j)) => {
                graph
                    .add_edge(i, j, r.conductance)
                    .expect("netlist nodes are in range");
            }
            (Terminal::Node(i), Terminal::Ground) | (Terminal::Ground, Terminal::Node(i)) => {
                ground[i] += r.conductance;
            }
            (Terminal::Ground, Terminal::Ground) => {}
        }
    }
    (graph, ground)
}

/// Reduces one block: Schur elimination of its interior nodes, effective
/// resistances, merging and sparsification.
pub(crate) fn reduce_block(
    partition: &GridPartition,
    block: usize,
    options: &ReductionOptions,
) -> Result<BlockReduced, PowerGridError> {
    let nodes = partition.block_nodes(block);
    let kept: Vec<usize> = nodes
        .iter()
        .copied()
        .filter(|&n| partition.kinds[n] != ReductionNodeKind::Interior)
        .collect();
    // Interior nodes reachable from kept nodes (floating interior components
    // cannot influence the kept nodes and are silently dropped).
    let in_block = {
        let mut mask = vec![false; partition.graph.node_count()];
        for &n in &nodes {
            mask[n] = true;
        }
        mask
    };
    let mut reachable = vec![false; partition.graph.node_count()];
    let mut stack: Vec<usize> = kept.clone();
    for &k in &kept {
        reachable[k] = true;
    }
    while let Some(v) = stack.pop() {
        for (u, _) in partition.graph.neighbors(v) {
            if in_block[u] && !reachable[u] {
                reachable[u] = true;
                stack.push(u);
            }
        }
    }
    let members: Vec<usize> = nodes.iter().copied().filter(|&n| reachable[n]).collect();
    let interior: Vec<usize> = members
        .iter()
        .copied()
        .filter(|&n| partition.kinds[n] == ReductionNodeKind::Interior)
        .collect();

    // Local numbering of the block members.
    let mut local = vec![usize::MAX; partition.graph.node_count()];
    for (i, &n) in members.iter().enumerate() {
        local[n] = i;
    }
    // Block conductance matrix: intra-block edges + ground conductances.
    let mut t = TripletMatrix::new(members.len(), members.len());
    for &n in &members {
        for (u, e) in partition.graph.neighbors(n) {
            if in_block[u] && reachable[u] && n < u {
                t.add_laplacian_edge(local[n], local[u], partition.graph.edge(e).weight);
            }
        }
        if partition.ground_conductance[n] > 0.0 {
            t.push(local[n], local[n], partition.ground_conductance[n]);
        }
    }
    let block_matrix = t.to_csc();

    let schur_start = Instant::now();
    let (reduced_matrix, kept_local): (effres_sparse::CscMatrix, Vec<usize>) = if interior
        .is_empty()
    {
        (block_matrix.clone(), (0..members.len()).collect())
    } else {
        let keep_local: Vec<usize> = kept.iter().map(|&n| local[n]).collect();
        let schur =
            SchurReduction::eliminate(&block_matrix, &keep_local, options.schur_drop_tolerance)?;
        (schur.reduced_matrix().clone(), keep_local)
    };
    let schur_time = schur_start.elapsed();
    // Original ids of the reduced matrix rows.
    let kept_original: Vec<usize> = kept_local.iter().map(|&l| members[l]).collect();

    // Interpret the reduced matrix as a weighted graph + ground conductances.
    let k = kept_original.len();
    let mut block_graph = Graph::new(k);
    let mut grounds = vec![0.0f64; k];
    for j in 0..k {
        let mut row_sum = reduced_matrix.get(j, j);
        for (i, v) in reduced_matrix.column(j) {
            if i == j {
                continue;
            }
            row_sum += v;
            if i < j && v < 0.0 {
                block_graph
                    .add_edge(i, j, -v)
                    .expect("indices are in range");
            }
        }
        grounds[j] = row_sum.max(0.0);
    }

    // Effective resistances of the block edges.
    let er_start = Instant::now();
    let resistances = block_effective_resistances(&block_graph, &options.er_method)?;
    let er_time = er_start.elapsed();

    // Merge electrically-equivalent nodes.
    let threshold = if options.merge_threshold_factor > 0.0 && !resistances.is_empty() {
        let mut sorted = resistances.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite resistances"));
        options.merge_threshold_factor * sorted[sorted.len() / 2]
    } else {
        0.0
    };
    let merge = merge_by_effective_resistance(&block_graph, &resistances, threshold);
    let (contracted, contract_map) = apply_merge(&block_graph, &merge);
    // Resistances of the contracted edges: minimum over the parallel original
    // edges that map onto each contracted edge (merging changes resistances
    // only marginally because merged nodes were electrically equivalent).
    let mut contracted_er = vec![f64::INFINITY; contracted.edge_count()];
    {
        use std::collections::HashMap;
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        for (id, e) in contracted.edges() {
            index.insert((e.u, e.v), id);
        }
        for (id, e) in block_graph.edges() {
            let (mut u, mut v) = (contract_map[e.u], contract_map[e.v]);
            if u == v {
                continue;
            }
            if u > v {
                std::mem::swap(&mut u, &mut v);
            }
            if let Some(&cid) = index.get(&(u, v)) {
                contracted_er[cid] = contracted_er[cid].min(resistances[id]);
            }
        }
        for r in &mut contracted_er {
            if !r.is_finite() {
                *r = 1.0;
            }
        }
    }
    // Sparsify.
    let sparsified =
        sparsify_by_effective_resistance(&contracted, &contracted_er, &options.sparsify)?;

    // Express the result in original node ids.
    let representative_of_contracted: Vec<usize> = {
        // contracted index -> original id of its representative.
        let mut reps = vec![usize::MAX; contracted.node_count()];
        for (local_idx, &orig) in kept_original.iter().enumerate() {
            let c = contract_map[local_idx];
            if reps[c] == usize::MAX || orig < reps[c] {
                reps[c] = reps[c].min(orig);
            }
        }
        reps
    };
    let merge_representative: Vec<(usize, usize)> = kept_original
        .iter()
        .enumerate()
        .map(|(local_idx, &orig)| (orig, representative_of_contracted[contract_map[local_idx]]))
        .collect();
    let edges: Vec<(usize, usize, f64)> = sparsified
        .edges()
        .map(|(_, e)| {
            (
                representative_of_contracted[e.u],
                representative_of_contracted[e.v],
                e.weight,
            )
        })
        .collect();
    let mut ground_out: Vec<(usize, f64)> = Vec::new();
    {
        let mut acc = vec![0.0f64; contracted.node_count()];
        for (local_idx, &g) in grounds.iter().enumerate() {
            acc[contract_map[local_idx]] += g;
        }
        for (c, &g) in acc.iter().enumerate() {
            if g > 0.0 {
                ground_out.push((representative_of_contracted[c], g));
            }
        }
    }
    Ok(BlockReduced {
        block,
        merge_representative,
        edges,
        grounds: ground_out,
        er_time,
        schur_time,
    })
}

/// Computes the effective resistance of every edge of a block graph with the
/// configured method.
fn block_effective_resistances(
    graph: &Graph,
    method: &ErMethod,
) -> Result<Vec<f64>, PowerGridError> {
    if graph.edge_count() == 0 {
        return Ok(Vec::new());
    }
    let values = match method {
        ErMethod::Exact => ExactEffectiveResistance::build(graph, 1.0)?.query_all_edges(graph)?,
        ErMethod::RandomProjection(options) => {
            RandomProjectionEstimator::build(graph, options)?.query_all_edges(graph)?
        }
        ErMethod::ApproxInverse(config) => {
            EffectiveResistanceEstimator::build(graph, config)?.query_all_edges(graph)?
        }
    };
    // Effective resistances are positive; clamp any numerical noise so the
    // samplers downstream stay well defined.
    Ok(values.into_iter().map(|r| r.max(1e-15)).collect())
}

/// Stitches the reduced blocks and the original cross-block edges into a
/// reduced power grid.
pub(crate) fn stitch(
    grid: &PowerGrid,
    partition: &GridPartition,
    blocks: &[BlockReduced],
) -> Result<ReducedGrid, PowerGridError> {
    let n = grid.node_count();
    // Global merge representative (identity for nodes never mentioned).
    let mut representative: Vec<usize> = (0..n).collect();
    for block in blocks {
        for &(node, rep) in &block.merge_representative {
            representative[node] = rep;
        }
    }
    // Final node set: representatives of all kept nodes.
    let mut final_nodes: Vec<usize> = Vec::new();
    for block in blocks {
        for &(_, rep) in &block.merge_representative {
            final_nodes.push(rep);
        }
    }
    final_nodes.sort_unstable();
    final_nodes.dedup();
    let mut dense = vec![usize::MAX; n];
    for (new, &old) in final_nodes.iter().enumerate() {
        dense[old] = new;
    }
    let map_node = |node: usize| -> Option<usize> {
        let rep = representative[node];
        if dense[rep] == usize::MAX {
            None
        } else {
            Some(dense[rep])
        }
    };

    let mut reduced = PowerGrid::new(final_nodes.len());
    // Intra-block reduced resistors and grounds.
    for block in blocks {
        for &(u, v, g) in &block.edges {
            let (nu, nv) = (dense[u], dense[v]);
            if nu != nv {
                reduced.add_resistor(Terminal::Node(nu), Terminal::Node(nv), g)?;
            }
        }
        for &(node, g) in &block.grounds {
            reduced.add_resistor(Terminal::Node(dense[node]), Terminal::Ground, g)?;
        }
    }
    // Original cross-block edges (their endpoints are kept by construction).
    for (_, e) in partition.graph.edges() {
        if partition.partition.part_of(e.u) != partition.partition.part_of(e.v) {
            let nu = map_node(e.u);
            let nv = map_node(e.v);
            match (nu, nv) {
                (Some(a), Some(b)) if a != b => {
                    reduced.add_resistor(Terminal::Node(a), Terminal::Node(b), e.weight)?;
                }
                _ => {}
            }
        }
    }
    // Ports carry their pads, loads and capacitors.
    for pad in grid.pads() {
        if let Some(node) = map_node(pad.node) {
            reduced.add_pad(node, pad.voltage, pad.conductance)?;
        }
    }
    for load in grid.loads() {
        if let Some(node) = map_node(load.node) {
            reduced.add_load(node, load.amps)?;
        }
    }
    for cap in grid.capacitors() {
        if let Some(node) = map_node(cap.node) {
            reduced.add_capacitor(node, cap.farads)?;
        }
    }

    let node_map: Vec<Option<usize>> = (0..n)
        .map(|node| {
            if partition.kinds[node] == ReductionNodeKind::Interior {
                None
            } else {
                map_node(node)
            }
        })
        .collect();

    let stats = ReductionStats {
        original_nodes: grid.node_count(),
        original_resistors: grid.resistor_count(),
        reduced_nodes: reduced.node_count(),
        reduced_resistors: reduced.resistor_count(),
        blocks: blocks.len(),
        total_time: Duration::ZERO,
        er_time: blocks.iter().map(|b| b.er_time).sum(),
        schur_time: blocks.iter().map(|b| b.schur_time).sum(),
    };
    Ok(ReducedGrid {
        grid: reduced,
        node_map,
        stats,
    })
}

/// Compares the port voltages of the original and reduced models.
///
/// Returns `(average absolute error, relative error)` where the relative
/// error divides by the maximum voltage drop of the original solution — the
/// `Err(mV)` / `Rel(%)` columns of Table II.
pub fn compare_port_voltages(
    grid: &PowerGrid,
    original_voltages: &[f64],
    reduced: &ReducedGrid,
    reduced_voltages: &[f64],
) -> (f64, f64) {
    let supply = grid.supply_voltage();
    let max_drop = original_voltages
        .iter()
        .fold(0.0_f64, |m, &v| m.max(supply - v))
        .max(f64::MIN_POSITIVE);
    let mut sum = 0.0;
    let mut count = 0usize;
    for &port in &grid.port_nodes() {
        if let Some(reduced_node) = reduced.node_map[port] {
            sum += (original_voltages[port] - reduced_voltages[reduced_node]).abs();
            count += 1;
        }
    }
    if count == 0 {
        return (0.0, 0.0);
    }
    let err = sum / count as f64;
    (err, err / max_drop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{dc_solve, stamp};
    use crate::generator::{synthetic_grid, SyntheticGridOptions};

    fn small_grid() -> PowerGrid {
        synthetic_grid(&SyntheticGridOptions::small()).expect("valid")
    }

    fn dc_voltages_of_reduced(reduced: &ReducedGrid) -> Vec<f64> {
        dc_solve(&reduced.grid)
            .expect("solvable")
            .voltages()
            .to_vec()
    }

    #[test]
    fn classification_covers_all_nodes() {
        let grid = small_grid();
        let options = ReductionOptions::default();
        let partition = GridPartition::build(&grid, &options).expect("valid");
        assert_eq!(partition.kinds.len(), grid.node_count());
        let ports = partition
            .kinds
            .iter()
            .filter(|&&k| k == ReductionNodeKind::Port)
            .count();
        assert!(ports >= grid.port_nodes().len());
        assert!(partition.block_count() >= 1);
    }

    #[test]
    fn reduction_shrinks_the_grid_and_keeps_ports() {
        let grid = small_grid();
        let reduced = reduce(&grid, &ReductionOptions::default()).expect("valid");
        assert!(reduced.stats.reduced_nodes < reduced.stats.original_nodes);
        assert_eq!(reduced.grid.pads().len(), grid.pads().len());
        assert_eq!(reduced.grid.loads().len(), grid.loads().len());
        for &port in &grid.port_nodes() {
            assert!(reduced.node_map[port].is_some(), "port {port} lost");
        }
    }

    #[test]
    fn reduced_dc_solution_matches_original_at_ports() {
        let grid = small_grid();
        for method in [
            ErMethod::Exact,
            ErMethod::ApproxInverse(EffresConfig::default()),
        ] {
            let options = ReductionOptions {
                er_method: method.clone(),
                ..ReductionOptions::default()
            };
            let reduced = reduce(&grid, &options).expect("valid");
            let original = dc_solve(&grid).expect("solvable");
            let reduced_v = dc_voltages_of_reduced(&reduced);
            let (err, rel) =
                compare_port_voltages(&grid, original.voltages(), &reduced, &reduced_v);
            assert!(
                rel < 0.05,
                "{method:?}: port voltage error {err} ({rel} relative) too large"
            );
        }
    }

    #[test]
    fn approximate_er_reduction_matches_exact_er_reduction_quality() {
        let grid = small_grid();
        let original = dc_solve(&grid).expect("solvable");
        let quality = |method: ErMethod| {
            let options = ReductionOptions {
                er_method: method,
                ..ReductionOptions::default()
            };
            let reduced = reduce(&grid, &options).expect("valid");
            let reduced_v = dc_voltages_of_reduced(&reduced);
            compare_port_voltages(&grid, original.voltages(), &reduced, &reduced_v).1
        };
        let exact_rel = quality(ErMethod::Exact);
        let approx_rel = quality(ErMethod::ApproxInverse(EffresConfig::default()));
        // The Alg. 3 based reduction should match the accuracy of the exact
        // one (Table II: "almost no increase in reduction errors").
        assert!(
            approx_rel <= exact_rel * 2.0 + 0.01,
            "approx {approx_rel} vs exact {exact_rel}"
        );
    }

    #[test]
    fn schur_only_reduction_is_exact_at_ports() {
        // With sparsification effectively disabled (huge oversampling) and no
        // merging, the reduction is a pure Schur elimination and must be
        // exact at the ports.
        let grid = small_grid();
        let options = ReductionOptions {
            merge_threshold_factor: 0.0,
            sparsify: SparsifyOptions {
                oversampling: 1e9,
                seed: 1,
            },
            ..ReductionOptions::default()
        };
        let reduced = reduce(&grid, &options).expect("valid");
        let original = dc_solve(&grid).expect("solvable");
        let reduced_v = dc_voltages_of_reduced(&reduced);
        let (err, _rel) = compare_port_voltages(&grid, original.voltages(), &reduced, &reduced_v);
        assert!(
            err < 1e-6,
            "pure Schur reduction should be exact, err {err}"
        );
    }

    #[test]
    fn stamped_reduced_system_is_spd() {
        let grid = small_grid();
        let reduced = reduce(&grid, &ReductionOptions::default()).expect("valid");
        let system = stamp(&reduced.grid);
        assert!(system.matrix.is_symmetric(1e-9));
        assert!(effres_sparse::cholesky::CholeskyFactor::factor(&system.matrix).is_ok());
    }

    #[test]
    fn ground_resistors_are_treated_as_ports_and_survive_reduction() {
        // A ladder with a leakage resistor to ground in the middle: the
        // leakage node must be classified as a port (it has a ground path)
        // and the reduced model must reproduce the original DC solution.
        let mut grid = PowerGrid::new(6);
        for i in 0..5 {
            grid.add_resistor(Terminal::Node(i), Terminal::Node(i + 1), 10.0)
                .expect("valid");
        }
        grid.add_resistor(Terminal::Node(3), Terminal::Ground, 0.5)
            .expect("valid");
        grid.add_pad(0, 1.0, 100.0).expect("valid");
        grid.add_load(5, 0.01).expect("valid");
        let options = ReductionOptions::default();
        let partition = GridPartition::build(&grid, &options).expect("valid");
        assert_eq!(partition.kinds[3], ReductionNodeKind::Port);
        let reduced = reduce(&grid, &options).expect("valid");
        assert!(reduced.node_map[3].is_some());
        let original = dc_solve(&grid).expect("solvable");
        let reduced_v = dc_voltages_of_reduced(&reduced);
        let (err, _) = compare_port_voltages(&grid, original.voltages(), &reduced, &reduced_v);
        assert!(
            err < 1e-9,
            "tiny circuit should be reduced exactly, err {err}"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let grid = small_grid();
        let reduced = reduce(&grid, &ReductionOptions::default()).expect("valid");
        assert_eq!(reduced.stats.original_nodes, grid.node_count());
        assert_eq!(reduced.stats.reduced_nodes, reduced.grid.node_count());
        assert!(reduced.stats.total_time >= reduced.stats.er_time);
        assert!(reduced.stats.blocks >= 1);
    }
}
