//! Cross-batch admission control for the paged backend's pin budget.
//!
//! The locality scheduler pins pages out of the store's cache budget for the
//! lifetime of a block (see [`crate::scheduler`]). One batch at a time that
//! is safe by construction — the scheduler sizes its block and readahead
//! pins so their sum never exceeds the budget. Two *concurrent* batches,
//! each assuming it owns the whole budget, would together pin up to twice
//! the cache capacity: every pinned page beyond the budget is memory the
//! deployment never agreed to spend, and the cache underneath devolves to
//! thrash because nothing it holds is evictable.
//!
//! [`AdmissionLedger`] is the fix: a semaphore-like ledger of pin capacity
//! that schedulers **lease** from before pinning anything. Each lease names
//! a minimum viable grant (enough for one block page plus one readahead
//! page) and a desired grant (the full plan); the ledger grants what is
//! available, so concurrent batches split the budget instead of both taking
//! all of it. Requests queue FIFO — a large batch cannot be starved by a
//! stream of later small ones — but a small request may *bypass* the queue
//! when its desired grant fits over and above the minimums of everything
//! ahead of it, which keeps single-block batches flowing while a large
//! batch waits for capacity. A batch leases per **block**, not per batch,
//! so a long batch releases and re-acquires capacity at every block
//! boundary and concurrent traffic interleaves at block granularity (this
//! is what "queued/split" means operationally: a large batch's plan shrinks
//! to its grant and proceeds block by block).
//!
//! Leases are RAII ([`PinLease`]): dropping one returns its grant and wakes
//! every waiter, so a panicking batch cannot leak budget. The ledger is
//! policy only — the hard evidence that pinned pages actually stay within
//! the budget lives in the store's own pin accounting
//! ([`pinned_pages_high_water`](effres_io::PagedColumnStore::pinned_pages_high_water)),
//! which the over-pin regression test asserts against.

use effres::{BusyReason, CancelReason, EffresError};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Observable state of an [`AdmissionLedger`], for stats reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Total pin capacity the ledger manages (the store's cache budget).
    pub budget: usize,
    /// Capacity not currently leased out.
    pub available: usize,
    /// Lease requests currently waiting for capacity.
    pub waiting: usize,
    /// Leases granted over the ledger's lifetime.
    pub leases: u64,
    /// Lease requests that had to wait at least once before being granted.
    pub queued: u64,
    /// Bounded requests rejected because the queue was at its depth bound.
    pub shed_queue_full: u64,
    /// Bounded requests that timed out waiting for capacity.
    pub shed_timeout: u64,
    /// Deadlined requests rejected up front because their deadline was
    /// closer than the estimated service time (see
    /// [`AdmissionLedger::admit_by_deadline`]).
    pub shed_doomed: u64,
}

#[derive(Debug)]
struct LedgerState {
    available: usize,
    /// FIFO queue of waiting requests: `(ticket, min)`.
    queue: VecDeque<(u64, usize)>,
    next_ticket: u64,
    leases: u64,
    queued: u64,
    shed_queue_full: u64,
    shed_timeout: u64,
    shed_doomed: u64,
}

/// A FIFO budget ledger concurrent batch executions lease page-pin capacity
/// from (see the module docs for the policy).
#[derive(Debug)]
pub struct AdmissionLedger {
    state: Mutex<LedgerState>,
    freed: Condvar,
    budget: usize,
}

impl AdmissionLedger {
    /// A ledger managing `budget` units of pin capacity (clamped to ≥ 1).
    pub fn new(budget: usize) -> Self {
        let budget = budget.max(1);
        AdmissionLedger {
            state: Mutex::new(LedgerState {
                available: budget,
                queue: VecDeque::new(),
                next_ticket: 0,
                leases: 0,
                queued: 0,
                shed_queue_full: 0,
                shed_timeout: 0,
                shed_doomed: 0,
            }),
            freed: Condvar::new(),
            budget,
        }
    }

    /// Total capacity the ledger manages.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Current counters (a consistent point-in-time snapshot).
    pub fn stats(&self) -> AdmissionStats {
        let state = self.state.lock().expect("admission ledger lock poisoned");
        AdmissionStats {
            budget: self.budget,
            available: state.available,
            waiting: state.queue.len(),
            leases: state.leases,
            queued: state.queued,
            shed_queue_full: state.shed_queue_full,
            shed_timeout: state.shed_timeout,
            shed_doomed: state.shed_doomed,
        }
    }

    /// Rejects a request whose deadline cannot be met: if now plus the
    /// `estimated` service time overshoots `deadline`, the request is
    /// *doomed* — running it could only burn capacity that live requests
    /// need — so it is shed up front with a typed
    /// [`EffresError::DeadlineExceeded`] without ever touching the queue
    /// (no slot consumed, FIFO order of real waiters untouched). Counted in
    /// [`AdmissionStats::shed_doomed`].
    ///
    /// The check is advisory by design: callers only invoke it when a
    /// service-time estimate exists (see
    /// [`ServiceTimeEwma`](crate::metrics::ServiceTimeEwma)), so a cold
    /// server never sheds on a guess.
    pub fn admit_by_deadline(
        &self,
        estimated: Duration,
        deadline: Instant,
    ) -> Result<(), EffresError> {
        if Instant::now() + estimated <= deadline {
            return Ok(());
        }
        let mut state = self.state.lock().expect("admission ledger lock poisoned");
        state.shed_doomed += 1;
        Err(EffresError::DeadlineExceeded {
            reason: CancelReason::Unmeetable,
        })
    }

    /// Leases between `min` and `desired` units, blocking until capacity is
    /// available. `min` is the smallest grant the caller can make progress
    /// with; `desired` is its full plan (both clamped to the budget, and
    /// `desired` to at least `min`). An uncontended lease gets `desired`
    /// immediately; under contention the request joins the FIFO queue and is
    /// granted whatever is available (≥ `min`) when it reaches the head —
    /// unless its `desired` fits on top of the minimums of everything ahead,
    /// in which case it bypasses the queue with a full grant.
    ///
    /// The returned [`PinLease`] gives the grant back on drop. Callers must
    /// not hold one lease while requesting another (self-deadlock under
    /// contention); the scheduler leases once per block and releases before
    /// the next.
    pub fn lease(&self, min: usize, desired: usize) -> PinLease<'_> {
        let min = min.clamp(1, self.budget);
        let desired = desired.clamp(min, self.budget);
        let mut state = self.state.lock().expect("admission ledger lock poisoned");
        if state.queue.is_empty() && state.available >= desired {
            state.available -= desired;
            state.leases += 1;
            return PinLease {
                ledger: self,
                granted: desired,
            };
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back((ticket, min));
        state.queued += 1;
        loop {
            let pos = state
                .queue
                .iter()
                .position(|&(t, _)| t == ticket)
                .expect("waiting ticket stays queued");
            let ahead: usize = state.queue.iter().take(pos).map(|&(_, m)| m).sum();
            let granted = if pos == 0 && state.available >= min {
                // Head of the queue: take what is there, up to the plan.
                Some(desired.min(state.available))
            } else if pos > 0 && state.available >= ahead + desired {
                // Bypass: the full grant fits over the minimums of
                // everything ahead, so taking it cannot starve them.
                Some(desired)
            } else {
                None
            };
            if let Some(granted) = granted {
                state.queue.remove(pos);
                state.available -= granted;
                state.leases += 1;
                // Queue positions shifted; re-evaluate every waiter.
                self.freed.notify_all();
                return PinLease {
                    ledger: self,
                    granted,
                };
            }
            state = self
                .freed
                .wait(state)
                .expect("admission ledger lock poisoned");
        }
    }

    /// The bounded, shedding variant of [`lease`](Self::lease): identical
    /// grant policy, but the request is **rejected** with a typed
    /// [`EffresError::Busy`] instead of waiting forever.
    ///
    /// Two bounds apply:
    ///
    /// * `max_waiting` — if that many requests are already queued, the
    ///   request is shed immediately ([`BusyReason::QueueFull`]). Depth
    ///   bounds the queue's latency promise: a request admitted to the queue
    ///   has a real chance of being served within its timeout; one behind an
    ///   unbounded line does not.
    /// * `timeout` — the longest the request will wait once queued. If
    ///   capacity has not been granted by then, the ticket is withdrawn and
    ///   the request shed ([`BusyReason::LeaseTimeout`]).
    ///
    /// Shed requests leave the ledger exactly as they found it (the ticket
    /// is removed and every remaining waiter re-evaluated), and are counted
    /// in [`AdmissionStats::shed_queue_full`] / [`shed_timeout`](AdmissionStats::shed_timeout).
    pub fn lease_within(
        &self,
        min: usize,
        desired: usize,
        max_waiting: usize,
        timeout: Duration,
    ) -> Result<PinLease<'_>, EffresError> {
        let min = min.clamp(1, self.budget);
        let desired = desired.clamp(min, self.budget);
        let mut state = self.state.lock().expect("admission ledger lock poisoned");
        if state.queue.is_empty() && state.available >= desired {
            state.available -= desired;
            state.leases += 1;
            return Ok(PinLease {
                ledger: self,
                granted: desired,
            });
        }
        if state.queue.len() >= max_waiting {
            state.shed_queue_full += 1;
            return Err(EffresError::Busy {
                reason: BusyReason::QueueFull,
            });
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back((ticket, min));
        state.queued += 1;
        let deadline = Instant::now() + timeout;
        loop {
            let pos = state
                .queue
                .iter()
                .position(|&(t, _)| t == ticket)
                .expect("waiting ticket stays queued");
            let ahead: usize = state.queue.iter().take(pos).map(|&(_, m)| m).sum();
            let granted = if pos == 0 && state.available >= min {
                Some(desired.min(state.available))
            } else if pos > 0 && state.available >= ahead + desired {
                Some(desired)
            } else {
                None
            };
            if let Some(granted) = granted {
                state.queue.remove(pos);
                state.available -= granted;
                state.leases += 1;
                self.freed.notify_all();
                return Ok(PinLease {
                    ledger: self,
                    granted,
                });
            }
            let now = Instant::now();
            if now >= deadline {
                state.queue.remove(pos);
                state.shed_timeout += 1;
                // Positions shifted: a bypass that was blocked behind this
                // ticket's minimum may now fit.
                self.freed.notify_all();
                return Err(EffresError::Busy {
                    reason: BusyReason::LeaseTimeout,
                });
            }
            let (guard, _timed_out) = self
                .freed
                .wait_timeout(state, deadline - now)
                .expect("admission ledger lock poisoned");
            state = guard;
        }
    }

    fn release(&self, granted: usize) {
        let mut state = self.state.lock().expect("admission ledger lock poisoned");
        state.available += granted;
        debug_assert!(state.available <= self.budget);
        self.freed.notify_all();
    }
}

/// A leased slice of pin capacity; returns itself to the ledger on drop.
#[derive(Debug)]
pub struct PinLease<'a> {
    ledger: &'a AdmissionLedger,
    granted: usize,
}

impl PinLease<'_> {
    /// Units of pin capacity this lease holds.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for PinLease<'_> {
    fn drop(&mut self) {
        self.ledger.release(self.granted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn uncontended_lease_gets_the_full_desired_grant() {
        let ledger = AdmissionLedger::new(16);
        let lease = ledger.lease(2, 16);
        assert_eq!(lease.granted(), 16);
        assert_eq!(ledger.stats().available, 0);
        drop(lease);
        assert_eq!(ledger.stats().available, 16);
        assert_eq!(ledger.stats().leases, 1);
        assert_eq!(ledger.stats().queued, 0);
    }

    #[test]
    fn requests_are_clamped_to_the_budget() {
        let ledger = AdmissionLedger::new(4);
        let lease = ledger.lease(100, 1000);
        assert_eq!(lease.granted(), 4);
    }

    #[test]
    fn concurrent_leases_never_oversubscribe_the_budget() {
        let budget = 8;
        let ledger = Arc::new(AdmissionLedger::new(budget));
        let outstanding = Arc::new(AtomicUsize::new(0));
        let high_water = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let ledger = Arc::clone(&ledger);
                let outstanding = Arc::clone(&outstanding);
                let high_water = Arc::clone(&high_water);
                std::thread::spawn(move || {
                    for round in 0..50 {
                        let desired = 2 + (i + round) % 7;
                        let lease = ledger.lease(2, desired);
                        assert!(lease.granted() >= 2 && lease.granted() <= desired.max(2));
                        let now = outstanding.fetch_add(lease.granted(), Ordering::SeqCst)
                            + lease.granted();
                        high_water.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        outstanding.fetch_sub(lease.granted(), Ordering::SeqCst);
                        drop(lease);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("leasing thread");
        }
        assert!(
            high_water.load(Ordering::SeqCst) <= budget,
            "outstanding grants exceeded the budget: {} > {budget}",
            high_water.load(Ordering::SeqCst)
        );
        let stats = ledger.stats();
        assert_eq!(stats.available, budget);
        assert_eq!(stats.leases, 6 * 50);
        assert_eq!(stats.waiting, 0);
    }

    #[test]
    fn a_blocked_full_budget_request_is_granted_when_capacity_frees() {
        let ledger = Arc::new(AdmissionLedger::new(10));
        let big_holder = ledger.lease(2, 7); // leaves 3 available
                                             // A full-budget request must queue...
        let blocked = {
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || ledger.lease(4, 10).granted())
        };
        while ledger.stats().waiting == 0 {
            std::thread::yield_now();
        }
        // ...but it is only *waiting*, not holding: when the holder releases,
        // the head request gets everything that is free.
        drop(big_holder);
        assert_eq!(blocked.join().expect("blocked lease"), 10);
        assert_eq!(ledger.stats().available, 10);
        assert!(ledger.stats().queued >= 1);
    }

    #[test]
    fn bypass_grants_only_over_the_minimums_of_the_queue() {
        let ledger = Arc::new(AdmissionLedger::new(10));
        let holder = ledger.lease(2, 6); // 4 available
                                         // Head request needs more than is available: queues with min 5.
        let head = {
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || ledger.lease(5, 10).granted())
        };
        while ledger.stats().waiting == 0 {
            std::thread::yield_now();
        }
        // A later request whose desired never fits over the head's minimum
        // (5 + 6 > 10) can never bypass — it queues, preserving FIFO.
        let second = {
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || ledger.lease(6, 6).granted())
        };
        while ledger.stats().waiting < 2 {
            std::thread::yield_now();
        }
        drop(holder); // 10 available: head takes all 10, then second gets 6.
        assert_eq!(head.join().expect("head lease"), 10);
        assert_eq!(second.join().expect("second lease"), 6);
        assert_eq!(ledger.stats().available, 10);
    }

    #[test]
    fn bounded_lease_grants_when_uncontended() {
        let ledger = AdmissionLedger::new(8);
        let lease = ledger
            .lease_within(2, 8, 4, Duration::from_millis(50))
            .expect("uncontended bounded lease");
        assert_eq!(lease.granted(), 8);
        drop(lease);
        let stats = ledger.stats();
        assert_eq!(stats.shed_queue_full, 0);
        assert_eq!(stats.shed_timeout, 0);
    }

    #[test]
    fn bounded_lease_sheds_immediately_when_the_queue_is_full() {
        let ledger = AdmissionLedger::new(4);
        let _holder = ledger.lease(2, 4); // budget exhausted
        let shed = ledger.lease_within(2, 4, 0, Duration::from_secs(10));
        assert_eq!(
            shed.unwrap_err(),
            EffresError::Busy {
                reason: BusyReason::QueueFull
            }
        );
        assert_eq!(ledger.stats().shed_queue_full, 1);
        // The decision is immediate — the 10s timeout never ran.
        assert_eq!(ledger.stats().waiting, 0);
    }

    #[test]
    fn a_doomed_deadline_is_shed_without_consuming_a_queue_slot() {
        let ledger = Arc::new(AdmissionLedger::new(4));
        let holder = ledger.lease(2, 4); // budget exhausted
                                         // Two live requests queue FIFO behind the holder.
        let first = {
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || ledger.lease(3, 3).granted())
        };
        while ledger.stats().waiting < 1 {
            std::thread::yield_now();
        }
        let second = {
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || ledger.lease(4, 4).granted())
        };
        while ledger.stats().waiting < 2 {
            std::thread::yield_now();
        }
        // A doomed request — estimated service time far beyond its deadline —
        // is rejected immediately: typed error, no queue slot consumed, even
        // though the queue-depth bound (1) is already exceeded by the live
        // waiters. A `lease_within` with the same bound would have shed them.
        let doomed = ledger.admit_by_deadline(
            Duration::from_secs(60),
            Instant::now() + Duration::from_millis(1),
        );
        assert_eq!(
            doomed.unwrap_err(),
            EffresError::DeadlineExceeded {
                reason: CancelReason::Unmeetable
            }
        );
        let stats = ledger.stats();
        assert_eq!(stats.shed_doomed, 1);
        assert_eq!(stats.waiting, 2, "doomed request never queued");
        // A meetable deadline sails through without queueing either.
        ledger
            .admit_by_deadline(
                Duration::from_millis(1),
                Instant::now() + Duration::from_secs(60),
            )
            .expect("meetable deadline admitted");
        assert_eq!(ledger.stats().waiting, 2);
        // FIFO for the live waiters is preserved: when the holder releases,
        // the first request is granted (3 of 4), and the second — whose min
        // of 4 cannot be met while the first holds 3 — only after it.
        drop(holder);
        assert_eq!(first.join().expect("first waiter"), 3);
        assert_eq!(second.join().expect("second waiter"), 4);
        assert_eq!(ledger.stats().available, 4);
        assert_eq!(ledger.stats().shed_doomed, 1);
    }

    #[test]
    fn bounded_lease_times_out_and_withdraws_its_ticket() {
        let ledger = AdmissionLedger::new(4);
        let holder = ledger.lease(2, 4);
        let start = Instant::now();
        let shed = ledger.lease_within(2, 4, 4, Duration::from_millis(20));
        assert_eq!(
            shed.unwrap_err(),
            EffresError::Busy {
                reason: BusyReason::LeaseTimeout
            }
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(ledger.stats().shed_timeout, 1);
        assert_eq!(ledger.stats().waiting, 0, "ticket withdrawn on timeout");
        drop(holder);
        // The ledger is intact: a later request proceeds normally.
        assert_eq!(
            ledger
                .lease_within(2, 4, 4, Duration::from_millis(20))
                .expect("post-shed lease")
                .granted(),
            4
        );
    }
}
