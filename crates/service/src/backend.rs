//! Backends the query engine can serve from.
//!
//! A [`ResistanceBackend`] bundles what a serving deployment actually ships:
//! a [`ColumnStore`] holding the columns of `Z̃`, the fill-reducing
//! permutation mapping node ids onto columns, and the policy facts the
//! engine needs (is a precomputed norm table affordable? is there a page
//! cache worth reporting on?). The engine is generic over it, so the same
//! batching, pair cache, scratch reuse and worker-pool fan-out serve:
//!
//! * [`EffectiveResistanceEstimator`] — the **resident** backend: the arena
//!   is in memory, so the engine precomputes the `‖z̃_j‖²` table once and
//!   every query is a single suffix dot product;
//! * [`PagedSnapshot`] — the **out-of-core** backend: columns live in a v2
//!   snapshot file behind a page cache, the norm table would cost a full
//!   file scan at boot, so the engine reads per-column norms off the decoded
//!   pages instead (bit-identical by the [`ColumnStore`] contract).

use effres::column_store::ColumnStore;
use effres::EffectiveResistanceEstimator;
use effres_io::{PageCacheStats, PagedSnapshot};
use effres_sparse::Permutation;
use std::sync::Arc;

/// A complete source of effective-resistance answers: columns plus the
/// permutation into them.
///
/// The `Send + Sync + 'static` bound is what lets one `Arc`'d backend fan
/// out across worker-pool jobs.
pub trait ResistanceBackend: Send + Sync + 'static {
    /// The column store queries read from.
    type Store: ColumnStore + Send + Sync;

    /// The column store.
    fn store(&self) -> &Self::Store;

    /// The fill-reducing permutation (original node id → column of `Z̃`).
    fn permutation(&self) -> &Permutation;

    /// Number of nodes served.
    fn node_count(&self) -> usize;

    /// A precomputed `‖z̃_j‖²` table in the permuted domain, if this backend
    /// can produce one without paying per-query I/O for it: resident stores
    /// sweep data that is already in memory (once, memoized), and paged v3
    /// snapshots load the table straight from the file's persisted norms
    /// block. The table comes behind an [`Arc`] so backend, store and engine
    /// share one copy of the `8n` bytes. Backends that return `None` (paged
    /// v2 files, whose table would stream the whole file at boot) make the
    /// engine fall back to [`ColumnStore::column_norm_squared`] per query,
    /// which the trait contract pins to the same bits.
    fn precomputed_norms(&self) -> Option<Arc<Vec<f64>>>;

    /// Page-cache counters accrued since the last
    /// [`ResistanceBackend::take_page_cache_stats`], for backends that page
    /// columns in from storage. Resident backends return `None`.
    fn page_cache_stats(&self) -> Option<PageCacheStats> {
        None
    }

    /// Snapshots and resets the page-cache counters (see
    /// [`effres_io::PagedColumnStore::take_page_cache_stats`]), so batch
    /// executors can report exact per-batch page traffic. Resident backends
    /// return `None`.
    fn take_page_cache_stats(&self) -> Option<PageCacheStats> {
        None
    }

    /// The page-pin budget concurrent batch executions must share, for
    /// backends that pin pages out of a bounded cache: the engine puts an
    /// [`AdmissionLedger`](crate::admission::AdmissionLedger) of this many
    /// pages in front of the scheduler so concurrent batches lease capacity
    /// instead of each assuming they own all of it. Resident backends pin
    /// nothing and return `None`.
    fn pin_budget_pages(&self) -> Option<usize> {
        None
    }
}

impl ResistanceBackend for EffectiveResistanceEstimator {
    type Store = effres::approx_inverse::SparseApproximateInverse;

    fn store(&self) -> &Self::Store {
        self.approximate_inverse()
    }

    fn permutation(&self) -> &Permutation {
        EffectiveResistanceEstimator::permutation(self)
    }

    fn node_count(&self) -> usize {
        EffectiveResistanceEstimator::node_count(self)
    }

    fn precomputed_norms(&self) -> Option<Arc<Vec<f64>>> {
        Some(self.column_norms_shared())
    }
}

impl ResistanceBackend for PagedSnapshot {
    type Store = effres_io::PagedColumnStore;

    fn store(&self) -> &Self::Store {
        &self.store
    }

    fn permutation(&self) -> &Permutation {
        &self.permutation
    }

    fn node_count(&self) -> usize {
        PagedSnapshot::node_count(self)
    }

    /// v3 snapshots persist the table, so the paged engine gets it resident
    /// for free (`f64 × n`, part of the cold-start state — shared with the
    /// store, not copied) and queries pay zero page traffic for the norm
    /// terms. v2 files return `None` — computing the table would read every
    /// value block at boot, defeating the paged cold start — and per-column
    /// norms come off the decoded pages instead.
    fn precomputed_norms(&self) -> Option<Arc<Vec<f64>>> {
        self.store.resident_norms_shared()
    }

    fn page_cache_stats(&self) -> Option<PageCacheStats> {
        Some(self.store.page_cache_stats())
    }

    fn take_page_cache_stats(&self) -> Option<PageCacheStats> {
        Some(self.store.take_page_cache_stats())
    }

    fn pin_budget_pages(&self) -> Option<usize> {
        Some(self.store.cache_capacity_pages())
    }
}
