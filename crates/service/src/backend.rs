//! Backends the query engine can serve from.
//!
//! A [`ResistanceBackend`] bundles what a serving deployment actually ships:
//! a [`ColumnStore`] holding the columns of `Z̃`, the fill-reducing
//! permutation mapping node ids onto columns, and the policy facts the
//! engine needs (is a precomputed norm table affordable? is there a page
//! cache worth reporting on?). The engine is generic over it, so the same
//! batching, pair cache, scratch reuse and worker-pool fan-out serve:
//!
//! * [`EffectiveResistanceEstimator`] — the **resident** backend: the arena
//!   is in memory, so the engine precomputes the `‖z̃_j‖²` table once and
//!   every query is a single suffix dot product;
//! * [`PagedSnapshot`] — the **out-of-core** backend: columns live in a v2
//!   snapshot file behind a page cache, the norm table would cost a full
//!   file scan at boot, so the engine reads per-column norms off the decoded
//!   pages instead (bit-identical by the [`ColumnStore`] contract).

use effres::column_store::ColumnStore;
use effres::EffectiveResistanceEstimator;
use effres_io::{PageCacheStats, PagedSnapshot};
use effres_sparse::Permutation;

/// A complete source of effective-resistance answers: columns plus the
/// permutation into them.
///
/// The `Send + Sync + 'static` bound is what lets one `Arc`'d backend fan
/// out across worker-pool jobs.
pub trait ResistanceBackend: Send + Sync + 'static {
    /// The column store queries read from.
    type Store: ColumnStore + Send + Sync;

    /// The column store.
    fn store(&self) -> &Self::Store;

    /// The fill-reducing permutation (original node id → column of `Z̃`).
    fn permutation(&self) -> &Permutation;

    /// Number of nodes served.
    fn node_count(&self) -> usize;

    /// A precomputed `‖z̃_j‖²` table in the permuted domain, if building one
    /// is cheap for this backend (resident stores — one pass over data that
    /// is already in memory). Out-of-core backends return `None`: the table
    /// would stream the whole file at boot, so the engine falls back to
    /// [`ColumnStore::column_norm_squared`] per query, which the trait
    /// contract pins to the same bits.
    fn precomputed_norms(&self) -> Option<Vec<f64>>;

    /// Cumulative page-cache counters, for backends that page columns in
    /// from storage. Resident backends return `None`.
    fn page_cache_stats(&self) -> Option<PageCacheStats> {
        None
    }
}

impl ResistanceBackend for EffectiveResistanceEstimator {
    type Store = effres::approx_inverse::SparseApproximateInverse;

    fn store(&self) -> &Self::Store {
        self.approximate_inverse()
    }

    fn permutation(&self) -> &Permutation {
        EffectiveResistanceEstimator::permutation(self)
    }

    fn node_count(&self) -> usize {
        EffectiveResistanceEstimator::node_count(self)
    }

    fn precomputed_norms(&self) -> Option<Vec<f64>> {
        Some(self.column_norms_squared())
    }
}

impl ResistanceBackend for PagedSnapshot {
    type Store = effres_io::PagedColumnStore;

    fn store(&self) -> &Self::Store {
        &self.store
    }

    fn permutation(&self) -> &Permutation {
        &self.permutation
    }

    fn node_count(&self) -> usize {
        PagedSnapshot::node_count(self)
    }

    /// Never precomputed: it would read every value block of the file at
    /// boot, defeating the paged cold start. Per-column norms come off the
    /// decoded pages instead.
    fn precomputed_norms(&self) -> Option<Vec<f64>> {
        None
    }

    fn page_cache_stats(&self) -> Option<PageCacheStats> {
        Some(self.store.page_cache_stats())
    }
}
