//! Cooperative cancellation for in-flight batch work.
//!
//! A batch that nobody is waiting for anymore — its deadline passed, or its
//! client hung up — is pure waste: it burns page-cache budget, admission
//! capacity and worker-pool slots that live requests need. [`CancelToken`]
//! is the std-only primitive that lets the serving layers stop that work
//! **cooperatively**: the owner (a connection handler, a deadline clock)
//! trips the token, and the engine checks it at natural chunk boundaries —
//! per pair in the arrival-order paths, per block and per readahead wave in
//! the locality scheduler — never mid-kernel. Stopping only at chunk
//! boundaries is what keeps the bit-identity contract intact: every answer
//! a cancelled batch *did* produce went through exactly the kernel calls a
//! completed run would have made.
//!
//! A token is one relaxed atomic plus an optional deadline `Instant`, so a
//! per-pair check costs one uncontended load (plus one `Instant::now()`
//! when a deadline is set) — noise next to a sparse column dot. The first
//! cancellation wins and is sticky; an expired deadline records itself as
//! [`CancelReason::DeadlineExpired`] on the first check that notices it.

use effres::{CancelReason, EffresError};
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant};

const LIVE: u8 = 0;
const DEADLINE_EXPIRED: u8 = 1;
const DISCONNECTED: u8 = 2;
const UNMEETABLE: u8 = 3;

fn encode(reason: CancelReason) -> u8 {
    match reason {
        CancelReason::DeadlineExpired => DEADLINE_EXPIRED,
        CancelReason::Disconnected => DISCONNECTED,
        CancelReason::Unmeetable => UNMEETABLE,
    }
}

fn decode(state: u8) -> Option<CancelReason> {
    match state {
        DEADLINE_EXPIRED => Some(CancelReason::DeadlineExpired),
        DISCONNECTED => Some(CancelReason::Disconnected),
        UNMEETABLE => Some(CancelReason::Unmeetable),
        _ => None,
    }
}

/// A sticky, thread-safe cancellation flag with an optional wall-clock
/// deadline. Share one per request (behind an `Arc` when the canceller is
/// another thread) between whoever can decide the work is pointless and the
/// engine executing it.
#[derive(Debug)]
pub struct CancelToken {
    state: AtomicU8,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is called —
    /// no deadline. Used for disconnect-only monitoring.
    pub fn unbounded() -> CancelToken {
        CancelToken {
            state: AtomicU8::new(LIVE),
            deadline: None,
        }
    }

    /// A token that additionally cancels itself once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            state: AtomicU8::new(LIVE),
            deadline: Some(deadline),
        }
    }

    /// A token whose deadline is `budget` from now.
    pub fn after(budget: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// The wall-clock deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left until the deadline (`Duration::ZERO` once past); `None`
    /// when the token has no deadline.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }

    /// Trips the token. The first cancellation wins (and is returned by
    /// every later check); returns `true` if this call was the one that
    /// tripped it.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        self.state
            .compare_exchange(LIVE, encode(reason), Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Why the token is cancelled, or `None` while the work should keep
    /// going. A passed deadline trips the token on the first check that
    /// notices it.
    pub fn cancelled(&self) -> Option<CancelReason> {
        if let Some(reason) = decode(self.state.load(Ordering::Relaxed)) {
            return Some(reason);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.cancel(CancelReason::DeadlineExpired);
            return decode(self.state.load(Ordering::Relaxed));
        }
        None
    }

    /// [`cancelled`](Self::cancelled) as a typed error, for `?`-chaining at
    /// chunk boundaries.
    pub fn check(&self) -> Result<(), EffresError> {
        match self.cancelled() {
            None => Ok(()),
            Some(reason) => Err(EffresError::DeadlineExceeded { reason }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_never_cancels_on_its_own() {
        let token = CancelToken::unbounded();
        assert_eq!(token.cancelled(), None);
        assert_eq!(token.remaining(), None);
        assert!(token.check().is_ok());
    }

    #[test]
    fn first_cancellation_wins_and_sticks() {
        let token = CancelToken::unbounded();
        assert!(token.cancel(CancelReason::Disconnected));
        assert!(!token.cancel(CancelReason::DeadlineExpired));
        assert_eq!(token.cancelled(), Some(CancelReason::Disconnected));
        assert_eq!(
            token.check().unwrap_err(),
            EffresError::DeadlineExceeded {
                reason: CancelReason::Disconnected
            }
        );
    }

    #[test]
    fn a_passed_deadline_trips_the_token() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(token.cancelled(), Some(CancelReason::DeadlineExpired));
        assert_eq!(token.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn a_future_deadline_leaves_the_token_live() {
        let token = CancelToken::after(Duration::from_secs(3600));
        assert_eq!(token.cancelled(), None);
        assert!(token.remaining().expect("deadline set") > Duration::from_secs(3000));
    }

    #[test]
    fn explicit_cancel_beats_a_later_deadline_expiry() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        // The disconnect arrived before anything checked the deadline.
        assert!(token.cancel(CancelReason::Disconnected));
        assert_eq!(token.cancelled(), Some(CancelReason::Disconnected));
    }
}
