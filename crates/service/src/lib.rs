//! Batched effective-resistance query service.
//!
//! The paper's algorithms turn a graph into an immutable query structure —
//! the pruned approximate inverse `Z̃` — that answers `R(p, q)` in
//! microseconds. This crate is the serving layer on top:
//!
//! * [`engine::QueryEngine`] — a thread-safe engine over an `Arc`-shared
//!   [`backend::ResistanceBackend`], fanning [`batch::QueryBatch`]es out
//!   onto a persistent [`WorkerPool`](effres::WorkerPool) (shareable with
//!   the estimator build) with reusable scratch column buffers;
//! * [`backend::ResistanceBackend`] — the serving backends: the resident
//!   [`EffectiveResistanceEstimator`](effres::EffectiveResistanceEstimator)
//!   arena, or the out-of-core
//!   [`PagedSnapshot`](effres_io::PagedSnapshot) paging columns in from a
//!   v2/v3 snapshot file (bit-identical answers either way);
//! * [`scheduler`] — the locality scheduler for paged batches:
//!   `QueryEngine::<PagedSnapshot>::execute_scheduled` clusters queries by
//!   the pages they touch, pins blocks out of the cache budget and sweeps
//!   the rest with coalesced readahead — same bits, a fraction of the I/O;
//! * [`cache::ShardedLru`] — a sharded LRU of recent pair results in front
//!   of the sparse kernel;
//! * [`admission::AdmissionLedger`] — cross-batch admission control for the
//!   paged backend: concurrent scheduled batches lease page-cache pin
//!   capacity from one FIFO budget ledger, so many clients can run large
//!   batches at once without over-pinning the cache;
//! * [`metrics::LatencyHistogram`] — a streaming log-linear histogram for
//!   per-request latency (p50/p95/p99 without storing samples).
//!
//! The `effres-cli` binary (`load` / `build` / `query` / `batch` / `stats`
//! / `serve` / `bench-client`) lives in the `effres-server` crate, which
//! puts a TCP front-end over one shared [`engine::QueryEngine`]; see the
//! repository README for a walkthrough.
//!
//! # Quick start
//!
//! ```
//! use effres::{EffectiveResistanceEstimator, EffresConfig};
//! use effres_graph::generators;
//! use effres_service::{EngineOptions, QueryBatch, QueryEngine};
//!
//! # fn main() -> Result<(), effres::EffresError> {
//! let graph = generators::grid_2d(20, 20, 1.0, 1.0, 0)?;
//! let estimator = EffectiveResistanceEstimator::build(&graph, &EffresConfig::default())?;
//! let engine = QueryEngine::from_estimator(estimator);
//! let batch = QueryBatch::random(10_000, engine.node_count(), 42);
//! let result = engine.execute(&batch)?;
//! assert_eq!(result.values.len(), 10_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod backend;
pub mod batch;
pub mod cache;
pub mod cancel;
pub mod engine;
pub mod metrics;
pub mod scheduler;

pub use admission::{AdmissionLedger, AdmissionStats, PinLease};
pub use backend::ResistanceBackend;
pub use batch::QueryBatch;
pub use cache::ShardedLru;
pub use cancel::CancelToken;
pub use engine::{
    BatchAbort, BatchResult, EngineOptions, PartialBatchResult, QueryEngine, ScheduleReport,
    ServiceStats,
};
pub use metrics::{HistogramSnapshot, LatencyHistogram, ServiceTimeEwma};

/// Compile-time audit that everything shared across query workers is
/// `Send + Sync`: the estimator and its constituents are plain owned data
/// with no interior mutability, and the engine itself only adds atomics and
/// mutex-guarded shards. If a future change introduces `Rc`, `Cell` or a raw
/// pointer anywhere in these types, this module stops compiling.
#[allow(dead_code)]
mod send_sync_audit {
    fn assert_send_sync<T: Send + Sync>() {}

    fn audit() {
        assert_send_sync::<effres::EffectiveResistanceEstimator>();
        assert_send_sync::<effres_io::PagedSnapshot>();
        assert_send_sync::<effres_io::PagedColumnStore>();
        assert_send_sync::<effres::WorkerPool>();
        assert_send_sync::<effres::approx_inverse::SparseApproximateInverse>();
        assert_send_sync::<effres_sparse::SparseVec>();
        assert_send_sync::<effres_sparse::CscMatrix>();
        assert_send_sync::<effres_sparse::Permutation>();
        assert_send_sync::<effres_graph::Graph>();
        assert_send_sync::<crate::cache::ShardedLru>();
        assert_send_sync::<crate::engine::QueryEngine>();
        assert_send_sync::<crate::batch::QueryBatch>();
        assert_send_sync::<crate::admission::AdmissionLedger>();
        assert_send_sync::<crate::cancel::CancelToken>();
        assert_send_sync::<crate::metrics::LatencyHistogram>();
        assert_send_sync::<crate::metrics::ServiceTimeEwma>();
    }
}
