//! The parallel query engine.
//!
//! [`QueryEngine`] wraps a shared, immutable [`EffectiveResistanceEstimator`]
//! behind an [`Arc`] and turns it into a service: batches fan out as jobs on
//! a persistent [`WorkerPool`] (the engine's own, or one shared with the
//! estimator build via [`EngineOptions::pool`]), each job drawing a reusable
//! scratch column buffer from a pool-wide free list, in front of a sharded
//! LRU cache of recent pair results and a precomputed table of `‖z̃_j‖²`
//! column norms (so one query is a single sparse dot product).
//!
//! The estimator and every type it contains are plain owned data (`Vec`s of
//! indices and floats — no interior mutability, no raw pointers), so sharing
//! it across pool workers behind an [`Arc`] is sound; the static assertions
//! in the crate root pin the `Send + Sync` audit down at compile time.

use crate::batch::QueryBatch;
use crate::cache::ShardedLru;
use effres::{EffectiveResistanceEstimator, EffresError, WorkerPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Tuning knobs of a [`QueryEngine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Parallel fan-out for batch execution; `0` means one job chunk per
    /// available core (or per worker of a shared [`EngineOptions::pool`]).
    /// Actual concurrency is capped by the worker-pool size.
    pub threads: usize,
    /// Total entries of the pair-result cache; `0` disables caching.
    pub cache_capacity: usize,
    /// Number of cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Batches smaller than this run on the calling thread — dispatching
    /// pool jobs costs more than it saves.
    pub parallel_threshold: usize,
    /// A persistent [`WorkerPool`] to run batch jobs on. `None` (the
    /// default) makes the engine spawn its own pool lazily on the first
    /// parallel batch; build-then-serve deployments pass the pool the
    /// estimator build used (`EffresConfig::with_worker_pool`) so the whole
    /// pipeline shares one set of workers.
    pub pool: Option<WorkerPool>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            threads: 0,
            cache_capacity: 1 << 16,
            cache_shards: 16,
            parallel_threshold: 1 << 10,
            pool: None,
        }
    }
}

/// Cumulative service counters (monotonic across the engine's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Queries answered (batch and single).
    pub queries: u64,
    /// Batches executed.
    pub batches: u64,
    /// Queries answered out of the cache.
    pub cache_hits: u64,
    /// Queries that had to run the sparse kernel.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_entries: usize,
    /// Total cache capacity (0 when caching is disabled).
    pub cache_capacity: usize,
}

/// Result of one batch execution.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Effective resistances, in the order of the batch's pairs.
    pub values: Vec<f64>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Parallel job chunks the batch fanned out into (1 for the sequential
    /// path); actual concurrency is additionally capped by the worker-pool
    /// size.
    pub threads: usize,
    /// Cache hits within this batch.
    pub cache_hits: u64,
    /// Cache misses within this batch.
    pub cache_misses: u64,
}

impl BatchResult {
    /// Queries answered per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return f64::INFINITY;
        }
        self.values.len() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Per-thread scratch: one approximate-inverse column scattered into a dense
/// buffer, so consecutive queries sharing an endpoint pay the scatter once
/// and each dot product only walks the *other* column. Columns are read as
/// plain slices out of the estimator's flat CSC arena, so both the scatter
/// and the suffix dot stream contiguous memory.
#[derive(Debug)]
struct ColumnScratch {
    dense: Vec<f64>,
    loaded: Option<usize>,
}

impl ColumnScratch {
    fn new(n: usize) -> Self {
        ColumnScratch {
            dense: vec![0.0; n],
            loaded: None,
        }
    }

    /// Ensures column `j` (permuted domain) is scattered into the buffer.
    fn load(&mut self, inverse: &effres::approx_inverse::SparseApproximateInverse, j: usize) {
        if self.loaded == Some(j) {
            return;
        }
        if let Some(prev) = self.loaded {
            for &i in inverse.column(prev).indices() {
                self.dense[i as usize] = 0.0;
            }
        }
        let column = inverse.column(j);
        for (i, v) in column.iter() {
            self.dense[i] = v;
        }
        self.loaded = Some(j);
    }

    /// Dot product of the loaded column with column `j`, restricted to the
    /// suffix `bound..` (the columns' support intersection — see
    /// `SparseApproximateInverse::column_dot`). No merge at all: one dense
    /// lookup per surviving entry of column `j`.
    fn suffix_dot(
        &self,
        inverse: &effres::approx_inverse::SparseApproximateInverse,
        j: usize,
        bound: usize,
    ) -> f64 {
        let column = inverse.column(j);
        let (indices, values) = (column.indices(), column.values());
        let start = indices.partition_point(|&row| (row as usize) < bound);
        indices[start..]
            .iter()
            .zip(&values[start..])
            .map(|(&i, v)| self.dense[i as usize] * v)
            .sum()
    }
}

/// The shareable heart of the engine: everything a pool worker needs to
/// answer a slice of queries — the estimator, the norm table, the result
/// cache and a free list of reusable scratch columns. Lives behind one
/// [`Arc`] so batch jobs are `'static` without copying any of it.
#[derive(Debug)]
struct EngineCore {
    estimator: Arc<EffectiveResistanceEstimator>,
    /// `‖z̃_j‖²` per permuted column — the hot-path norm table.
    norms: Vec<f64>,
    cache: Option<ShardedLru>,
    /// Reusable scratch columns: a worker pops one per job and returns it,
    /// so steady-state batch traffic allocates no dense buffers at all.
    scratches: Mutex<Vec<ColumnScratch>>,
}

impl EngineCore {
    fn take_scratch(&self) -> ColumnScratch {
        self.scratches
            .lock()
            .expect("scratch free list poisoned")
            .pop()
            .unwrap_or_else(|| ColumnScratch::new(self.estimator.node_count()))
    }

    fn return_scratch(&self, scratch: ColumnScratch) {
        self.scratches
            .lock()
            .expect("scratch free list poisoned")
            .push(scratch);
    }
}

/// A thread-safe, cache-fronted effective-resistance query service over a
/// shared immutable estimator.
#[derive(Debug)]
pub struct QueryEngine {
    core: Arc<EngineCore>,
    options: EngineOptions,
    /// The engine's own pool, created lazily on the first parallel batch
    /// when no shared pool was configured.
    owned_pool: OnceLock<WorkerPool>,
    queries: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl QueryEngine {
    /// Builds an engine over a shared estimator.
    pub fn new(estimator: Arc<EffectiveResistanceEstimator>, options: EngineOptions) -> Self {
        let norms = estimator.column_norms_squared();
        let cache = if options.cache_capacity > 0 {
            Some(ShardedLru::new(
                options.cache_capacity,
                options.cache_shards,
            ))
        } else {
            None
        };
        QueryEngine {
            core: Arc::new(EngineCore {
                estimator,
                norms,
                cache,
                scratches: Mutex::new(Vec::new()),
            }),
            options,
            owned_pool: OnceLock::new(),
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// Convenience constructor taking ownership of the estimator and using
    /// default options.
    pub fn from_estimator(estimator: EffectiveResistanceEstimator) -> Self {
        QueryEngine::new(Arc::new(estimator), EngineOptions::default())
    }

    /// The shared estimator.
    pub fn estimator(&self) -> &Arc<EffectiveResistanceEstimator> {
        &self.core.estimator
    }

    /// Number of nodes served.
    pub fn node_count(&self) -> usize {
        self.core.estimator.node_count()
    }

    /// The worker pool batches run on: the shared pool from
    /// [`EngineOptions::pool`] when configured, otherwise the engine's own
    /// (created lazily, persistent across batches).
    pub fn worker_pool(&self) -> &WorkerPool {
        match &self.options.pool {
            Some(pool) => pool,
            None => self
                .owned_pool
                .get_or_init(|| WorkerPool::new(self.options.threads)),
        }
    }

    /// Cumulative service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_entries: self.core.cache.as_ref().map_or(0, ShardedLru::len),
            cache_capacity: self.core.cache.as_ref().map_or(0, ShardedLru::capacity),
        }
    }

    /// Answers one query through the cache and the norm table.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] for invalid node indices.
    pub fn query(&self, p: usize, q: usize) -> Result<f64, EffresError> {
        let n = self.core.estimator.node_count();
        if p >= n || q >= n {
            return Err(EffresError::NodeOutOfBounds {
                node: p.max(q),
                node_count: n,
            });
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        if p == q {
            return Ok(0.0);
        }
        let key = cache_key(p, q);
        if let Some(cache) = &self.core.cache {
            if let Some(value) = cache.get(key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(value);
            }
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let value = self
            .core
            .estimator
            .query_with_norms(p, q, &self.core.norms)?;
        if let Some(cache) = &self.core.cache {
            cache.insert(key, value);
        }
        Ok(value)
    }

    /// Executes a batch, in parallel when it is large enough.
    ///
    /// Every pair is validated before any work starts; on error no query has
    /// run. Results come back in the batch's original pair order.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] naming the first invalid node.
    pub fn execute(&self, batch: &QueryBatch) -> Result<BatchResult, EffresError> {
        let n = self.core.estimator.node_count();
        for &(p, q) in batch.pairs() {
            if p >= n || q >= n {
                return Err(EffresError::NodeOutOfBounds {
                    node: p.max(q),
                    node_count: n,
                });
            }
        }
        let threads = self.effective_threads(batch.len());
        let start = Instant::now();
        let (values, hits, misses) = if threads <= 1 {
            let mut scratch = self.core.take_scratch();
            let out = self.core.run_slice(batch.pairs(), &mut scratch);
            self.core.return_scratch(scratch);
            out
        } else {
            self.run_parallel(batch.pairs(), threads)
        };
        let elapsed = start.elapsed();
        self.queries
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
        Ok(BatchResult {
            values,
            elapsed,
            threads,
            cache_hits: hits,
            cache_misses: misses,
        })
    }

    fn effective_threads(&self, batch_len: usize) -> usize {
        if batch_len < self.options.parallel_threshold.max(2) {
            return 1;
        }
        let configured = if self.options.threads != 0 {
            self.options.threads
        } else if let Some(pool) = &self.options.pool {
            pool.threads()
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        // No point in more job chunks than work of a sensible size.
        configured.min(batch_len.div_ceil(256)).max(1)
    }

    fn run_parallel(&self, pairs: &[(usize, usize)], threads: usize) -> (Vec<f64>, u64, u64) {
        // Sort query indices by normalized pair so queries sharing an
        // endpoint land in the same chunk and reuse the scattered column.
        let mut order: Vec<u32> = (0..pairs.len() as u32).collect();
        order.sort_unstable_by_key(|&i| {
            let (p, q) = pairs[i as usize];
            (p.min(q), p.max(q))
        });
        let sorted_pairs: Vec<(usize, usize)> = order.iter().map(|&i| pairs[i as usize]).collect();

        let chunk_len = sorted_pairs.len().div_ceil(threads);
        // One pool job per chunk: the job owns its pairs and a clone of the
        // engine core, answers the chunk with a scratch column drawn from the
        // core's free list, and hands the values back through `run`.
        let jobs: Vec<_> = sorted_pairs
            .chunks(chunk_len)
            .map(|chunk| {
                let core = Arc::clone(&self.core);
                let chunk = chunk.to_vec();
                move || {
                    let mut scratch = core.take_scratch();
                    let out = core.run_slice(&chunk, &mut scratch);
                    core.return_scratch(scratch);
                    out
                }
            })
            .collect();
        let results = self.worker_pool().run(jobs);

        let mut sorted_values = Vec::with_capacity(sorted_pairs.len());
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (values, h, m) in results {
            sorted_values.extend_from_slice(&values);
            hits += h;
            misses += m;
        }
        let mut values = vec![0.0f64; pairs.len()];
        for (slot, &original) in order.iter().enumerate() {
            values[original as usize] = sorted_values[slot];
        }
        (values, hits, misses)
    }
}

fn cache_key(p: usize, q: usize) -> u64 {
    let (a, b) = if p < q { (p, q) } else { (q, p) };
    ((a as u64) << 32) | b as u64
}

impl EngineCore {
    /// Answers `pairs` in order with the given scratch buffer; returns the
    /// values and the (hits, misses) the slice generated. Bounds are already
    /// validated.
    fn run_slice(
        &self,
        pairs: &[(usize, usize)],
        scratch: &mut ColumnScratch,
    ) -> (Vec<f64>, u64, u64) {
        let mut values = Vec::with_capacity(pairs.len());
        let mut hits = 0u64;
        let mut misses = 0u64;
        let inverse = self.estimator.approximate_inverse();
        let permutation = self.estimator.permutation();
        for (slot, &(p, q)) in pairs.iter().enumerate() {
            if p == q {
                values.push(0.0);
                continue;
            }
            let key = cache_key(p, q);
            if let Some(cache) = &self.cache {
                if let Some(value) = cache.get(key) {
                    hits += 1;
                    values.push(value);
                    continue;
                }
            }
            misses += 1;
            let pp = permutation.new(p);
            let qq = permutation.new(q);
            let bound = pp.max(qq);
            // Batches are sorted by first endpoint, so runs of queries
            // sharing it are contiguous. For a run, scatter that endpoint's
            // column once into the dense scratch and answer each query with
            // suffix lookups; isolated queries use the two-pointer suffix
            // merge directly (a scatter would cost more than it saves).
            let anchor = p.min(q);
            let shares_anchor = |other: &(usize, usize)| other.0.min(other.1) == anchor;
            let run = scratch.loaded == Some(permutation.new(anchor))
                || pairs.get(slot + 1).is_some_and(shares_anchor);
            let dot = if run {
                let aa = permutation.new(anchor);
                scratch.load(inverse, aa);
                let other = if aa == pp { qq } else { pp };
                scratch.suffix_dot(inverse, other, bound)
            } else {
                inverse.column_dot(pp, qq)
            };
            let value = (self.norms[pp] + self.norms[qq] - 2.0 * dot).max(0.0);
            if let Some(cache) = &self.cache {
                cache.insert(key, value);
            }
            values.push(value);
        }
        (values, hits, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres::EffresConfig;
    use effres_graph::generators;

    fn engine_for(nodes: usize, options: EngineOptions) -> QueryEngine {
        let side = (nodes as f64).sqrt() as usize;
        let graph = generators::grid_2d(side, side, 0.5, 2.0, 5).expect("generator");
        let estimator =
            EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build");
        QueryEngine::new(Arc::new(estimator), options)
    }

    #[test]
    fn single_queries_match_estimator() {
        let engine = engine_for(256, EngineOptions::default());
        let estimator = Arc::clone(engine.estimator());
        for &(p, q) in &[(0, 255), (3, 200), (17, 17), (100, 101)] {
            let a = engine.query(p, q).expect("query");
            let b = estimator.query(p, q).expect("query");
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "({p},{q}): {a} vs {b}"
            );
        }
        assert!(engine.query(0, 9999).is_err());
    }

    #[test]
    fn batch_results_match_sequential_queries_in_order() {
        let engine = engine_for(
            400,
            EngineOptions {
                parallel_threshold: 8, // force the parallel path
                threads: 4,
                ..EngineOptions::default()
            },
        );
        let batch = QueryBatch::random(5000, engine.node_count(), 42);
        let result = engine.execute(&batch).expect("batch");
        assert_eq!(result.values.len(), batch.len());
        assert!(result.threads > 1, "expected parallel execution");
        let estimator = Arc::clone(engine.estimator());
        for (&(p, q), &value) in batch.pairs().iter().zip(&result.values) {
            let reference = estimator.query(p, q).expect("query");
            assert!(
                (value - reference).abs() <= 1e-9 * reference.abs().max(1.0),
                "({p},{q}): {value} vs {reference}"
            );
        }
    }

    #[test]
    fn invalid_batches_fail_before_any_work() {
        let engine = engine_for(64, EngineOptions::default());
        let before = engine.stats().queries;
        let batch = QueryBatch::from_pairs(vec![(0, 1), (2, 1_000_000)]);
        assert!(engine.execute(&batch).is_err());
        assert_eq!(engine.stats().queries, before);
    }

    #[test]
    fn cache_serves_repeats() {
        let engine = engine_for(64, EngineOptions::default());
        let first = engine.query(1, 40).expect("query");
        let stats_after_miss = engine.stats();
        assert_eq!(stats_after_miss.cache_misses, 1);
        let second = engine.query(40, 1).expect("query"); // symmetric key
        assert_eq!(first, second);
        let stats_after_hit = engine.stats();
        assert_eq!(stats_after_hit.cache_hits, 1);
        assert!(stats_after_hit.cache_entries >= 1);
    }

    #[test]
    fn cache_can_be_disabled() {
        let engine = engine_for(
            64,
            EngineOptions {
                cache_capacity: 0,
                ..EngineOptions::default()
            },
        );
        engine.query(0, 10).expect("query");
        engine.query(0, 10).expect("query");
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_capacity, 0);
    }

    #[test]
    fn stats_accumulate_across_batches() {
        let engine = engine_for(100, EngineOptions::default());
        let batch = QueryBatch::random(100, engine.node_count(), 3);
        engine.execute(&batch).expect("batch");
        engine.execute(&batch).expect("batch");
        let stats = engine.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries, 200);
        // Second run should be answered almost entirely from cache.
        assert!(stats.cache_hits > 0);
        assert!(stats.cache_hits + stats.cache_misses <= 200);
    }

    #[test]
    fn throughput_is_finite_and_positive() {
        let engine = engine_for(100, EngineOptions::default());
        let batch = QueryBatch::random(256, engine.node_count(), 1);
        let result = engine.execute(&batch).expect("batch");
        assert!(result.throughput() > 0.0);
    }
}
