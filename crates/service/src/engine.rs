//! The parallel query engine.
//!
//! [`QueryEngine`] wraps a shared, immutable [`ResistanceBackend`] behind an
//! [`Arc`] and turns it into a service: batches fan out as jobs on a
//! persistent [`WorkerPool`] (the engine's own, or one shared with the
//! estimator build via [`EngineOptions::pool`]), each job drawing a reusable
//! scratch column buffer from a pool-wide free list, in front of a sharded
//! LRU cache of recent pair results.
//!
//! The engine is generic over *where the columns live*: the resident
//! [`EffectiveResistanceEstimator`] backend reads them out of the in-memory
//! CSC arena behind a precomputed `‖z̃_j‖²` norm table, while the paged
//! [`effres_io::PagedSnapshot`] backend pages them in from a v2 snapshot
//! file on demand (per-column norms come off the decoded pages — the
//! [`ColumnStore`] contract pins them to the same bits, so both backends
//! return bit-identical resistances). Column fetches are fallible for the
//! paged backend, so the batch paths propagate [`EffresError`] instead of
//! panicking a worker.
//!
//! The backends and every type they contain are plain owned data plus
//! independently locked caches, so sharing one across pool workers behind an
//! [`Arc`] is sound; the static assertions in the crate root pin the
//! `Send + Sync` audit down at compile time.

use crate::admission::{AdmissionLedger, AdmissionStats};
use crate::backend::ResistanceBackend;
use crate::batch::QueryBatch;
use crate::cache::ShardedLru;
use crate::cancel::CancelToken;
use crate::metrics::ServiceTimeEwma;
use effres::column_store::{self, ColumnStore, HubScratch, KernelStats};
use effres::{CancelReason, EffectiveResistanceEstimator, EffresError, WorkerPool};
use effres_io::PageCacheStats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Tuning knobs of a [`QueryEngine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Parallel fan-out for batch execution; `0` means one job chunk per
    /// available core (or per worker of a shared [`EngineOptions::pool`]).
    /// Actual concurrency is capped by the worker-pool size.
    pub threads: usize,
    /// Total entries of the pair-result cache; `0` disables caching.
    pub cache_capacity: usize,
    /// Number of cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Batches smaller than this run on the calling thread — dispatching
    /// pool jobs costs more than it saves.
    pub parallel_threshold: usize,
    /// A persistent [`WorkerPool`] to run batch jobs on. `None` (the
    /// default) makes the engine spawn its own pool lazily on the first
    /// parallel batch; build-then-serve deployments pass the pool the
    /// estimator build used (`EffresConfig::with_worker_pool`) so the whole
    /// pipeline shares one set of workers.
    pub pool: Option<WorkerPool>,
    /// Readahead window of the locality-scheduled paged batch path
    /// (`QueryEngine::<PagedSnapshot>::execute_scheduled`), in pages: how
    /// many upcoming non-resident pages each scheduling step pins with one
    /// coalesced read. `0` (the default) sizes the window automatically from
    /// the store's cache budget. Resident backends ignore it.
    pub readahead_pages: usize,
    /// Bound on the admission ledger's queue depth for scheduled paged
    /// batches. `None` (the default) keeps the PR-5 behavior — lease
    /// requests queue without bound and never fail. `Some(depth)` turns
    /// overload into a typed [`EffresError::Busy`]: a batch arriving when
    /// `depth` requests are already waiting is shed immediately, and a
    /// queued batch that waits out [`admission_timeout`](Self::admission_timeout)
    /// without capacity is shed too. Resident backends (no pin budget)
    /// ignore both knobs.
    pub admission_queue_depth: Option<usize>,
    /// How long a scheduled batch may wait for a pin-capacity lease before
    /// being shed, when [`admission_queue_depth`](Self::admission_queue_depth)
    /// is bounded.
    pub admission_timeout: Duration,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            threads: 0,
            cache_capacity: 1 << 16,
            cache_shards: 16,
            parallel_threshold: 1 << 10,
            pool: None,
            readahead_pages: 0,
            admission_queue_depth: None,
            admission_timeout: Duration::from_secs(2),
        }
    }
}

/// Cumulative service counters (monotonic across the engine's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Queries answered (batch and single).
    pub queries: u64,
    /// Batches executed.
    pub batches: u64,
    /// Queries answered out of the pair cache.
    pub cache_hits: u64,
    /// Queries that had to run the sparse kernel.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_entries: usize,
    /// Total cache capacity (0 when caching is disabled).
    pub cache_capacity: usize,
    /// Page-cache hits of an out-of-core backend (column fetches served
    /// from resident decoded pages). Zero for resident backends.
    pub page_cache_hits: u64,
    /// Page-cache misses of an out-of-core backend (column fetches that
    /// read and decoded from disk). Zero for resident backends.
    pub page_cache_misses: u64,
    /// Bytes an out-of-core backend read from disk. Zero for resident
    /// backends.
    pub page_bytes_read: u64,
    /// Coalesced readahead reads an out-of-core backend issued (each covers
    /// a run of adjacent pages). Zero for resident backends.
    pub page_readahead_reads: u64,
    /// Page read attempts an out-of-core backend re-issued after a transient
    /// fault (including corruption re-fetches). Zero for resident backends
    /// and on fault-free storage.
    pub page_retries: u64,
    /// Page read attempts that faulted (I/O errors, short reads, validation
    /// failures) on an out-of-core backend. When this exceeds
    /// `page_retries`, faults burned through the retry budget and surfaced
    /// as typed per-column failures.
    pub page_faulted_reads: u64,
}

impl ServiceStats {
    /// Combines counters drained in an earlier window with counters accrued
    /// since: the monotone counters sum; the point-in-time gauges
    /// (`cache_entries`, `cache_capacity`) come from `later`.
    #[must_use]
    pub fn merged(&self, later: ServiceStats) -> ServiceStats {
        ServiceStats {
            queries: self.queries + later.queries,
            batches: self.batches + later.batches,
            cache_hits: self.cache_hits + later.cache_hits,
            cache_misses: self.cache_misses + later.cache_misses,
            cache_entries: later.cache_entries,
            cache_capacity: later.cache_capacity,
            page_cache_hits: self.page_cache_hits + later.page_cache_hits,
            page_cache_misses: self.page_cache_misses + later.page_cache_misses,
            page_bytes_read: self.page_bytes_read + later.page_bytes_read,
            page_readahead_reads: self.page_readahead_reads + later.page_readahead_reads,
            page_retries: self.page_retries + later.page_retries,
            page_faulted_reads: self.page_faulted_reads + later.page_faulted_reads,
        }
    }
}

/// Result of one batch execution.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Effective resistances, in the order of the batch's pairs.
    pub values: Vec<f64>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Parallel job chunks the batch fanned out into (1 for the sequential
    /// path); actual concurrency is additionally capped by the worker-pool
    /// size.
    pub threads: usize,
    /// Pair-cache hits within this batch.
    pub cache_hits: u64,
    /// Pair-cache misses within this batch.
    pub cache_misses: u64,
    /// Page traffic of **this batch** (hits, misses, bytes read, coalesced
    /// readahead reads), for out-of-core backends — taken with a
    /// snapshot/reset of the backend's relaxed counters around the batch, so
    /// the rates are per-batch, not process-lifetime. `None` for resident
    /// backends. Exact when batches on the engine do not overlap;
    /// overlapping batches split the totals between them.
    pub page_cache: Option<PageCacheStats>,
    /// What the multi-pair kernels streamed for **this batch** (hub loads,
    /// pairs per hub, arena bytes read) — exact per batch: the counters
    /// ride the scratch buffers each job drains before returning them, so
    /// concurrent batches never mix.
    pub kernel: KernelStats,
    /// How the locality scheduler organized this batch (scheduled paged
    /// executions only).
    pub schedule: Option<ScheduleReport>,
}

/// Shape of one locality-scheduled batch execution (see
/// `QueryEngine::<PagedSnapshot>::execute_scheduled`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleReport {
    /// Distinct `(page_lo, page_hi)` clusters the batch's cache-missing
    /// queries collapsed into.
    pub clusters: usize,
    /// Pinned page blocks the lo-side page space was partitioned into.
    pub blocks: usize,
    /// Readahead windows (hi-side page groups) processed across all blocks.
    pub windows: usize,
}

impl BatchResult {
    /// Queries answered per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return f64::INFINITY;
        }
        self.values.len() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Why an all-or-nothing batch with a cancellation token produced no
/// [`BatchResult`], and how much of it never ran — the error type of the
/// `_with_cancel` execution paths.
///
/// `abandoned_pairs` is the reclamation receipt: queries the engine *skipped*
/// because the token tripped (or the whole batch, when admission judged the
/// deadline unmeetable up front). It is zero for ordinary failures
/// (validation, store faults, admission `Busy`) — those batches failed, they
/// were not abandoned.
#[derive(Debug, Clone)]
pub struct BatchAbort {
    /// The typed error that ended the batch (for cancellation,
    /// [`EffresError::DeadlineExceeded`] carrying the [`CancelReason`]).
    pub error: EffresError,
    /// Queries the engine never ran because the batch was cancelled.
    pub abandoned_pairs: u64,
}

impl std::fmt::Display for BatchAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} pairs abandoned)",
            self.error, self.abandoned_pairs
        )
    }
}

impl From<EffresError> for BatchAbort {
    fn from(error: EffresError) -> Self {
        BatchAbort {
            error,
            abandoned_pairs: 0,
        }
    }
}

/// Result of one batch executed in **partial-results mode**
/// ([`QueryEngine::execute_partial`],
/// `QueryEngine::<PagedSnapshot>::execute_scheduled_partial`): instead of
/// one failure aborting the batch, every query carries its own status.
/// Successful answers are bit-identical to the all-or-nothing paths — the
/// partial paths run the very same kernels in the very same order; only
/// failure *handling* differs.
#[derive(Debug, Clone)]
pub struct PartialBatchResult {
    /// Per-query outcome, in the order of the batch's pairs: the resistance,
    /// or the typed error that failed this query (out-of-bounds node, a
    /// store failure on a page the pair touches, admission shed).
    pub statuses: Vec<Result<f64, EffresError>>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Parallel job chunks the batch fanned out into (1 for the sequential
    /// path).
    pub threads: usize,
    /// Pair-cache hits within this batch.
    pub cache_hits: u64,
    /// Pair-cache misses within this batch.
    pub cache_misses: u64,
    /// Page traffic of this batch (see [`BatchResult::page_cache`]).
    pub page_cache: Option<PageCacheStats>,
    /// Multi-pair kernel traffic of this batch (see
    /// [`BatchResult::kernel`]).
    pub kernel: KernelStats,
    /// How the locality scheduler organized this batch (scheduled paged
    /// executions only).
    pub schedule: Option<ScheduleReport>,
}

impl PartialBatchResult {
    /// Queries that failed.
    pub fn failures(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_err()).count()
    }

    /// `true` when every query succeeded.
    pub fn is_complete(&self) -> bool {
        self.statuses.iter().all(Result::is_ok)
    }

    /// Queries this batch never ran because its cancellation token tripped
    /// (statuses carrying [`EffresError::DeadlineExceeded`]) — the work the
    /// lifecycle layer reclaimed for live requests.
    pub fn abandoned_pairs(&self) -> u64 {
        self.statuses
            .iter()
            .filter(|s| matches!(s, Err(EffresError::DeadlineExceeded { .. })))
            .count() as u64
    }
}

/// Shards of the scratch free list: enough that concurrent batch jobs
/// rarely contend on the same `Mutex` (the PR-8 bench showed the single
/// shared list serializing multi-thread batches), small enough that stray
/// scratches (one dense column each) stay bounded.
const SCRATCH_SHARDS: usize = 8;

/// The shareable heart of the engine: everything a pool worker needs to
/// answer a slice of queries — the backend, the (optional) norm table, the
/// result cache and a free list of reusable scratch columns. Lives behind
/// one [`Arc`] so batch jobs are `'static` without copying any of it.
#[derive(Debug)]
pub(crate) struct EngineCore<B: ResistanceBackend> {
    pub(crate) backend: Arc<B>,
    /// `‖z̃_j‖²` per permuted column, when the backend can afford the table
    /// (resident stores, paged v3 snapshots) — shared with the backend, not
    /// copied. `None` for out-of-core backends without a persisted table,
    /// which serve per-column norms off their decoded pages — bit-identical
    /// either way.
    pub(crate) norms: Option<Arc<Vec<f64>>>,
    pub(crate) cache: Option<ShardedLru>,
    /// The pin-budget ledger concurrent scheduled batches lease capacity
    /// from, for backends that pin pages out of a bounded cache
    /// ([`ResistanceBackend::pin_budget_pages`]); `None` for resident
    /// backends, which pin nothing.
    pub(crate) admission: Option<Arc<AdmissionLedger>>,
    /// Reusable hub-scratch columns (see [`HubScratch`]), sharded so
    /// parallel batch jobs don't serialize on one free-list lock: each job
    /// hits the shard named by its job index first and steals from the
    /// others only when its own is empty.
    scratches: [Mutex<Vec<HubScratch>>; SCRATCH_SHARDS],
}

impl<B: ResistanceBackend> EngineCore<B> {
    /// Pops a scratch, preferring the `hint` shard (callers pass their job
    /// index so concurrent jobs start on distinct locks). Any stats a
    /// previous aborted batch left behind are discarded — per-batch kernel
    /// counters must start at zero.
    pub(crate) fn take_scratch(&self, hint: usize) -> HubScratch {
        for probe in 0..SCRATCH_SHARDS {
            let shard = &self.scratches[(hint + probe) % SCRATCH_SHARDS];
            if let Some(mut scratch) = shard.lock().expect("scratch free list poisoned").pop() {
                let _ = scratch.take_stats();
                return scratch;
            }
        }
        HubScratch::new(self.backend.node_count())
    }

    pub(crate) fn return_scratch(&self, hint: usize, scratch: HubScratch) {
        self.scratches[hint % SCRATCH_SHARDS]
            .lock()
            .expect("scratch free list poisoned")
            .push(scratch);
    }

    /// Squared norms of two permuted columns, from the table or the store.
    fn norms_of(&self, pp: usize, qq: usize) -> Result<(f64, f64), EffresError> {
        match &self.norms {
            Some(table) => Ok((table[pp], table[qq])),
            None => {
                let store = self.backend.store();
                Ok((
                    store.column_norm_squared(pp)?,
                    store.column_norm_squared(qq)?,
                ))
            }
        }
    }

    /// The resistance of one (permuted, distinct, in-bounds) pair through
    /// the norm identity `‖z̃_p − z̃_q‖² = ‖z̃_p‖² + ‖z̃_q‖² − 2⟨z̃_p, z̃_q⟩`.
    fn pair_value(&self, pp: usize, qq: usize) -> Result<f64, EffresError> {
        let dot = column_store::column_dot(self.backend.store(), pp, qq)?;
        let (np, nq) = self.norms_of(pp, qq)?;
        // Clamp: cancellation can go slightly negative for near-identical
        // columns, and resistances are nonnegative.
        Ok((np + nq - 2.0 * dot).max(0.0))
    }
}

/// A thread-safe, cache-fronted effective-resistance query service over a
/// shared immutable backend (resident estimator by default; see
/// [`ResistanceBackend`] for the paged alternative).
#[derive(Debug)]
pub struct QueryEngine<B: ResistanceBackend = EffectiveResistanceEstimator> {
    pub(crate) core: Arc<EngineCore<B>>,
    pub(crate) options: EngineOptions,
    /// The engine's own pool, created lazily on the first parallel batch
    /// when no shared pool was configured.
    owned_pool: OnceLock<WorkerPool>,
    pub(crate) queries: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    /// Page traffic drained from the backend's snapshot/reset counters by
    /// finished batches, so cumulative [`ServiceStats`] survive the
    /// per-batch resets.
    pub(crate) drained_page_stats: Mutex<PageCacheStats>,
    /// Service counters drained by [`QueryEngine::take_service_stats`], so
    /// cumulative [`QueryEngine::stats`] survive the per-interval resets.
    drained_service_stats: Mutex<ServiceStats>,
    /// Smoothed per-pair service time of completed batches, feeding the
    /// doomed-deadline check of the `_with_cancel` paths.
    pub(crate) service_time: ServiceTimeEwma,
    /// Brownout flag (set by the server's overload controller): while on,
    /// the locality scheduler trims its readahead windows to the minimum so
    /// a pressured cache stops speculating.
    brownout: AtomicBool,
}

impl QueryEngine {
    /// Convenience constructor taking ownership of a resident estimator and
    /// using default options.
    pub fn from_estimator(estimator: EffectiveResistanceEstimator) -> Self {
        QueryEngine::new(Arc::new(estimator), EngineOptions::default())
    }

    /// The shared estimator of a resident engine.
    pub fn estimator(&self) -> &Arc<EffectiveResistanceEstimator> {
        &self.core.backend
    }
}

impl<B: ResistanceBackend> QueryEngine<B> {
    /// Builds an engine over a shared backend.
    pub fn new(backend: Arc<B>, options: EngineOptions) -> Self {
        let norms = backend.precomputed_norms();
        let cache = if options.cache_capacity > 0 {
            Some(ShardedLru::new(
                options.cache_capacity,
                options.cache_shards,
            ))
        } else {
            None
        };
        // The ledger needs at least two pages (one per side of a pair), the
        // same floor the scheduler's own budget math applies.
        let admission = backend
            .pin_budget_pages()
            .map(|budget| Arc::new(AdmissionLedger::new(budget.max(2))));
        QueryEngine {
            core: Arc::new(EngineCore {
                backend,
                norms,
                cache,
                admission,
                scratches: std::array::from_fn(|_| Mutex::new(Vec::new())),
            }),
            options,
            owned_pool: OnceLock::new(),
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            drained_page_stats: Mutex::new(PageCacheStats::default()),
            drained_service_stats: Mutex::new(ServiceStats::default()),
            service_time: ServiceTimeEwma::new(),
            brownout: AtomicBool::new(false),
        }
    }

    /// The smoothed per-pair service time of completed batches (the figure
    /// the doomed-deadline admission check divides deadlines by).
    pub fn service_time(&self) -> &ServiceTimeEwma {
        &self.service_time
    }

    /// Flips brownout mode (see the field docs); idempotent.
    pub fn set_brownout(&self, on: bool) {
        self.brownout.store(on, Ordering::Relaxed);
    }

    /// Whether the engine is currently in brownout mode.
    pub fn brownout_active(&self) -> bool {
        self.brownout.load(Ordering::Relaxed)
    }

    /// The shared backend.
    pub fn backend(&self) -> &Arc<B> {
        &self.core.backend
    }

    /// Number of nodes served.
    pub fn node_count(&self) -> usize {
        self.core.backend.node_count()
    }

    /// The worker pool batches run on: the shared pool from
    /// [`EngineOptions::pool`] when configured, otherwise the engine's own
    /// (created lazily, persistent across batches).
    pub fn worker_pool(&self) -> &WorkerPool {
        match &self.options.pool {
            Some(pool) => pool,
            None => self
                .owned_pool
                .get_or_init(|| WorkerPool::new(self.options.threads)),
        }
    }

    /// Cumulative service counters: the page-cache figures combine what
    /// finished batches drained from the backend's snapshot/reset counters
    /// with whatever has accrued since (single queries, an in-flight batch),
    /// and the service counters survive [`QueryEngine::take_service_stats`]
    /// windows the same way.
    pub fn stats(&self) -> ServiceStats {
        let live = self.live_service_stats();
        self.drained_service_stats
            .lock()
            .expect("service stats lock poisoned")
            .merged(live)
    }

    /// Counters accrued since the last [`QueryEngine::take_service_stats`]
    /// window (or since construction).
    fn live_service_stats(&self) -> ServiceStats {
        let live = self.core.backend.page_cache_stats().unwrap_or_default();
        let page = self
            .drained_page_stats
            .lock()
            .expect("page stats lock poisoned")
            .merged(live);
        ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_entries: self.core.cache.as_ref().map_or(0, ShardedLru::len),
            cache_capacity: self.core.cache.as_ref().map_or(0, ShardedLru::capacity),
            page_cache_hits: page.hits,
            page_cache_misses: page.misses,
            page_bytes_read: page.bytes_read,
            page_readahead_reads: page.readahead_reads,
            page_retries: page.retries,
            page_faulted_reads: page.faulted_reads,
        }
    }

    /// Snapshots the service counters accrued since the previous call and
    /// resets the interval, mirroring
    /// [`take_page_cache_stats`](effres_io::PagedColumnStore::take_page_cache_stats):
    /// a long-lived server calls this once per reporting interval to get
    /// per-interval hit rates under sustained traffic, while
    /// [`QueryEngine::stats`] keeps reporting cumulative totals (the drained
    /// intervals are folded into a lifetime pool). The gauges
    /// (`cache_entries`, `cache_capacity`) are point-in-time in both views.
    ///
    /// Taking an interval while a batch is in flight attributes the batch's
    /// traffic so far to the closing interval and the rest to the next one —
    /// nothing is lost or double-counted.
    pub fn take_service_stats(&self) -> ServiceStats {
        // Drain the backend's live page counters into the per-engine pool
        // first, then empty the pool into the interval delta.
        if let Some(live) = self.core.backend.take_page_cache_stats() {
            let mut drained = self
                .drained_page_stats
                .lock()
                .expect("page stats lock poisoned");
            *drained = drained.merged(live);
        }
        let page = std::mem::take(
            &mut *self
                .drained_page_stats
                .lock()
                .expect("page stats lock poisoned"),
        );
        let delta = ServiceStats {
            queries: self.queries.swap(0, Ordering::Relaxed),
            batches: self.batches.swap(0, Ordering::Relaxed),
            cache_hits: self.cache_hits.swap(0, Ordering::Relaxed),
            cache_misses: self.cache_misses.swap(0, Ordering::Relaxed),
            cache_entries: self.core.cache.as_ref().map_or(0, ShardedLru::len),
            cache_capacity: self.core.cache.as_ref().map_or(0, ShardedLru::capacity),
            page_cache_hits: page.hits,
            page_cache_misses: page.misses,
            page_bytes_read: page.bytes_read,
            page_readahead_reads: page.readahead_reads,
            page_retries: page.retries,
            page_faulted_reads: page.faulted_reads,
        };
        let mut pool = self
            .drained_service_stats
            .lock()
            .expect("service stats lock poisoned");
        *pool = pool.merged(delta);
        delta
    }

    /// Counters of the pin-budget admission ledger, for backends that pin
    /// pages out of a bounded cache; `None` for resident backends.
    pub fn admission_stats(&self) -> Option<AdmissionStats> {
        self.core.admission.as_deref().map(AdmissionLedger::stats)
    }

    /// Opens a per-batch page-traffic window: counters accrued *before* the
    /// batch (single queries, stats polling) are drained into the cumulative
    /// pool so the close-of-window delta is the batch's own traffic.
    pub(crate) fn begin_page_window(&self) {
        if let Some(stray) = self.core.backend.take_page_cache_stats() {
            let mut drained = self
                .drained_page_stats
                .lock()
                .expect("page stats lock poisoned");
            *drained = drained.merged(stray);
        }
    }

    /// Closes a per-batch window: returns the batch's page traffic and folds
    /// it into the cumulative pool.
    pub(crate) fn end_page_window(&self) -> Option<PageCacheStats> {
        let delta = self.core.backend.take_page_cache_stats()?;
        let mut drained = self
            .drained_page_stats
            .lock()
            .expect("page stats lock poisoned");
        *drained = drained.merged(delta);
        Some(delta)
    }

    /// Answers one query through the cache and the norm identity.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] for invalid node indices and
    /// [`EffresError::StoreFailure`] if an out-of-core backend fails to
    /// produce a column.
    pub fn query(&self, p: usize, q: usize) -> Result<f64, EffresError> {
        let n = self.core.backend.node_count();
        if p >= n || q >= n {
            return Err(EffresError::NodeOutOfBounds {
                node: p.max(q),
                node_count: n,
            });
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        if p == q {
            return Ok(0.0);
        }
        let key = cache_key(p, q);
        if let Some(cache) = &self.core.cache {
            if let Some(value) = cache.get(key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(value);
            }
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let permutation = self.core.backend.permutation();
        let value = self
            .core
            .pair_value(permutation.new(p), permutation.new(q))?;
        if let Some(cache) = &self.core.cache {
            cache.insert(key, value);
        }
        Ok(value)
    }

    /// Executes a batch, in parallel when it is large enough.
    ///
    /// Every pair is validated before any work starts; on a validation error
    /// no query has run. Results come back in the batch's original pair
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] naming the first invalid
    /// node, or [`EffresError::StoreFailure`] if an out-of-core backend
    /// failed mid-batch (in which case the batch produced no values).
    pub fn execute(&self, batch: &QueryBatch) -> Result<BatchResult, EffresError> {
        let n = self.core.backend.node_count();
        for &(p, q) in batch.pairs() {
            if p >= n || q >= n {
                return Err(EffresError::NodeOutOfBounds {
                    node: p.max(q),
                    node_count: n,
                });
            }
        }
        let threads = self.effective_threads(batch.len());
        self.begin_page_window();
        let start = Instant::now();
        let (values, hits, misses, kernel) = self.run_parallel(batch.pairs(), threads)?;
        let elapsed = start.elapsed();
        self.queries
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
        self.service_time.record(batch.len(), elapsed);
        Ok(BatchResult {
            values,
            elapsed,
            threads,
            cache_hits: hits,
            cache_misses: misses,
            page_cache: self.end_page_window(),
            kernel,
            schedule: None,
        })
    }

    /// Executes a batch in **partial-results mode**: no single failure
    /// aborts the batch. Every query gets its own status — an invalid pair
    /// fails with [`EffresError::NodeOutOfBounds`], a pair touching a page
    /// the store cannot produce fails with [`EffresError::StoreFailure`],
    /// and every other query still succeeds, with values bit-identical to
    /// what [`QueryEngine::execute`] would have returned for it (same
    /// kernels, same order; see `tests/` for the pinning property tests).
    ///
    /// This is the serving mode of a long-lived server: one poisoned page
    /// degrades the answers that touch it instead of killing 20k-query
    /// batches wholesale.
    pub fn execute_partial(&self, batch: &QueryBatch) -> PartialBatchResult {
        self.execute_partial_inner(batch, None)
    }

    /// [`QueryEngine::execute`] with a cancellation token: the run checks
    /// `cancel` at every chunk boundary (between pairs of a job slice, never
    /// mid-kernel) and stops as soon as it trips, releasing scratch and page
    /// budget with the abandoned tail. On cancellation the whole batch
    /// reports as a [`BatchAbort`] carrying the [`CancelReason`] and how many
    /// pairs never ran; answers produced before the trip went through exactly
    /// the kernel calls a completed run would have made, they are just not
    /// returned (the all-or-nothing contract — use
    /// [`execute_partial_with_cancel`](Self::execute_partial_with_cancel) to
    /// keep the prefix).
    ///
    /// When the token carries a deadline and the engine has a service-time
    /// estimate, a *doomed* batch — estimated time already past the deadline
    /// — is rejected up front ([`CancelReason::Unmeetable`]) without touching
    /// the admission queue.
    pub fn execute_with_cancel(
        &self,
        batch: &QueryBatch,
        cancel: &Arc<CancelToken>,
    ) -> Result<BatchResult, BatchAbort> {
        let n = self.core.backend.node_count();
        for &(p, q) in batch.pairs() {
            if p >= n || q >= n {
                return Err(BatchAbort::from(EffresError::NodeOutOfBounds {
                    node: p.max(q),
                    node_count: n,
                }));
            }
        }
        if let Err(error) = self.admit_deadline(batch, cancel) {
            return Err(BatchAbort {
                error,
                abandoned_pairs: batch.len() as u64,
            });
        }
        let threads = self.effective_threads(batch.len());
        self.begin_page_window();
        let start = Instant::now();
        let run = self.run_parallel_statuses(batch.pairs(), threads, true, Some(cancel));
        let elapsed = start.elapsed();
        let (statuses, hits, misses, kernel) = match run {
            Ok(out) => out,
            Err(error) => {
                self.end_page_window();
                return Err(BatchAbort::from(error));
            }
        };
        // In fail-fast mode a non-cancellation failure aborted above, so any
        // `Err` statuses here are the cancelled tail.
        let abandoned = statuses.iter().filter(|s| s.is_err()).count() as u64;
        self.queries
            .fetch_add(batch.len() as u64 - abandoned, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
        if abandoned > 0 {
            self.end_page_window();
            let error = statuses
                .into_iter()
                .find_map(Result::err)
                .expect("an abandoned batch has an Err status");
            return Err(BatchAbort {
                error,
                abandoned_pairs: abandoned,
            });
        }
        self.service_time.record(batch.len(), elapsed);
        Ok(BatchResult {
            values: statuses
                .into_iter()
                .map(|s| s.expect("no Err statuses survive the abandoned check"))
                .collect(),
            elapsed,
            threads,
            cache_hits: hits,
            cache_misses: misses,
            page_cache: self.end_page_window(),
            kernel,
            schedule: None,
        })
    }

    /// [`QueryEngine::execute_partial`] with a cancellation token: when the
    /// token trips mid-batch, queries answered before the trip keep their
    /// (bit-identical) values and the abandoned tail carries
    /// [`EffresError::DeadlineExceeded`] statuses — count them with
    /// [`PartialBatchResult::abandoned_pairs`]. A batch judged doomed up
    /// front (deadline closer than the estimated service time) is rejected
    /// as a whole with `Err`.
    pub fn execute_partial_with_cancel(
        &self,
        batch: &QueryBatch,
        cancel: &Arc<CancelToken>,
    ) -> Result<PartialBatchResult, EffresError> {
        self.admit_deadline(batch, cancel)?;
        Ok(self.execute_partial_inner(batch, Some(cancel)))
    }

    fn execute_partial_inner(
        &self,
        batch: &QueryBatch,
        cancel: Option<&Arc<CancelToken>>,
    ) -> PartialBatchResult {
        let threads = self.effective_threads(batch.len());
        self.begin_page_window();
        let start = Instant::now();
        let (statuses, hits, misses, kernel) = self
            .run_parallel_statuses(batch.pairs(), threads, false, cancel)
            .expect("partial-mode run never aborts");
        let elapsed = start.elapsed();
        self.queries
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
        let result = PartialBatchResult {
            statuses,
            elapsed,
            threads,
            cache_hits: hits,
            cache_misses: misses,
            page_cache: self.end_page_window(),
            kernel,
            schedule: None,
        };
        if result.is_complete() {
            self.service_time.record(batch.len(), elapsed);
        }
        result
    }

    /// The doomed-deadline gate of every `_with_cancel` path: an
    /// already-tripped token fails immediately, and a deadline the
    /// service-time EWMA says cannot be met is shed up front
    /// ([`CancelReason::Unmeetable`]) — through the admission ledger when the
    /// backend has one (so the shed is counted in
    /// [`AdmissionStats::shed_doomed`]), directly otherwise. With no
    /// estimate yet (cold engine) every deadline is admitted: the gate only
    /// sheds on evidence.
    pub(crate) fn admit_deadline(
        &self,
        batch: &QueryBatch,
        cancel: &CancelToken,
    ) -> Result<(), EffresError> {
        cancel.check()?;
        let Some(deadline) = cancel.deadline() else {
            return Ok(());
        };
        // `distinct_len` is the tighter work bound (duplicates are cache
        // hits, self-pairs short-circuit), and only deadline-carrying
        // requests pay for computing it.
        let Some(estimated) = self.service_time.estimate(batch.distinct_len()) else {
            return Ok(());
        };
        match &self.core.admission {
            Some(ledger) => ledger.admit_by_deadline(estimated, deadline),
            None if Instant::now() + estimated > deadline => Err(EffresError::DeadlineExceeded {
                reason: CancelReason::Unmeetable,
            }),
            None => Ok(()),
        }
    }

    pub(crate) fn effective_threads(&self, batch_len: usize) -> usize {
        if batch_len < self.options.parallel_threshold.max(2) {
            return 1;
        }
        let configured = if self.options.threads != 0 {
            self.options.threads
        } else if let Some(pool) = &self.options.pool {
            pool.threads()
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        // No point in more job chunks than work of a sensible size.
        configured.min(batch_len.div_ceil(256)).max(1)
    }

    #[allow(clippy::type_complexity)]
    fn run_parallel(
        &self,
        pairs: &[(usize, usize)],
        threads: usize,
    ) -> Result<(Vec<f64>, u64, u64, KernelStats), EffresError> {
        let (statuses, hits, misses, kernel) =
            self.run_parallel_statuses(pairs, threads, true, None)?;
        let values = statuses
            .into_iter()
            .map(|s| s.expect("fail-fast parallel run aborts on the first error"))
            .collect();
        Ok((values, hits, misses, kernel))
    }

    /// The status-returning batch path, sequential (`threads <= 1`) or
    /// parallel. Both modes sort and scatter back identically — the
    /// sequential mode just answers the whole sorted batch inline instead of
    /// dispatching chunk jobs to the pool — so values are bit-identical
    /// across modes. Sorting even the sequential batch is what lets the
    /// hub-run kernel engage on a single worker.
    #[allow(clippy::type_complexity)]
    fn run_parallel_statuses(
        &self,
        pairs: &[(usize, usize)],
        threads: usize,
        fail_fast: bool,
        cancel: Option<&Arc<CancelToken>>,
    ) -> Result<(Vec<Result<f64, EffresError>>, u64, u64, KernelStats), EffresError> {
        // Sort query indices by **permuted** normalized pair so queries
        // sharing a permuted endpoint land in the same chunk and reuse the
        // scattered column (and, on the paged backend, the same decoded
        // pages). Sorting in the permuted domain also makes the suffix
        // bounds ascend within a run, so one suffix-bounded scatter serves
        // the whole run. Out-of-bounds pairs (possible in partial mode)
        // sort last, past every valid pair.
        let n = self.core.backend.node_count();
        let permutation = self.core.backend.permutation();
        let mut order: Vec<u32> = (0..pairs.len() as u32).collect();
        order.sort_unstable_by_key(|&i| {
            let (p, q) = pairs[i as usize];
            if p >= n || q >= n {
                return (usize::MAX, usize::MAX);
            }
            let (pp, qq) = (permutation.new(p), permutation.new(q));
            (pp.min(qq), pp.max(qq))
        });
        // One shared copy of the sorted batch: jobs borrow disjoint ranges
        // of it through the Arc instead of each owning a `to_vec` of its
        // chunk (the per-job copies were measurable at batch sizes where
        // the parallel path engages).
        let sorted_pairs: Arc<Vec<(usize, usize)>> =
            Arc::new(order.iter().map(|&i| pairs[i as usize]).collect());

        let results = if threads <= 1 {
            let mut scratch = self.core.take_scratch(0);
            let out = self.core.run_slice_statuses(
                &sorted_pairs,
                &mut scratch,
                fail_fast,
                cancel.map(Arc::as_ref),
            );
            self.core.return_scratch(0, scratch);
            vec![out]
        } else {
            let chunk_len = sorted_pairs.len().div_ceil(threads);
            // One pool job per chunk: the job takes a clone of the engine
            // core and its chunk's range, answers it with a scratch column
            // drawn from the core's sharded free list (the job index spreads
            // jobs over distinct shards), and hands back the statuses plus
            // the kernel counters its scratch accumulated.
            let jobs: Vec<_> = (0..sorted_pairs.len())
                .step_by(chunk_len)
                .enumerate()
                .map(|(job, lo)| {
                    let hi = (lo + chunk_len).min(sorted_pairs.len());
                    let core = Arc::clone(&self.core);
                    let sorted_pairs = Arc::clone(&sorted_pairs);
                    let cancel = cancel.map(Arc::clone);
                    move || {
                        let mut scratch = core.take_scratch(job);
                        let out = core.run_slice_statuses(
                            &sorted_pairs[lo..hi],
                            &mut scratch,
                            fail_fast,
                            cancel.as_deref(),
                        );
                        core.return_scratch(job, scratch);
                        out
                    }
                })
                .collect();
            self.worker_pool().run(jobs)
        };

        let mut sorted_statuses = Vec::with_capacity(sorted_pairs.len());
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut kernel = KernelStats::default();
        for result in results {
            let (statuses, h, m, k) = result?;
            sorted_statuses.extend(statuses);
            hits += h;
            misses += m;
            kernel.merge(k);
        }
        let mut statuses: Vec<Result<f64, EffresError>> =
            (0..pairs.len()).map(|_| Ok(0.0)).collect();
        for (&original, status) in order.iter().zip(sorted_statuses) {
            statuses[original as usize] = status;
        }
        Ok((statuses, hits, misses, kernel))
    }
}

pub(crate) fn cache_key(p: usize, q: usize) -> u64 {
    let (a, b) = if p < q { (p, q) } else { (q, p) };
    ((a as u64) << 32) | b as u64
}

impl<B: ResistanceBackend> EngineCore<B> {
    /// The status-returning heart of both batch modes: answers `pairs` in
    /// order, producing a per-query `Result`. With `fail_fast` the first
    /// failure aborts the slice (the all-or-nothing contract of
    /// [`QueryEngine::execute`]); without it the failure is recorded as that
    /// query's status and the slice continues — the partial-results
    /// contract. Both modes run the **same kernels in the same order**, so
    /// the values a query succeeds with are bit-identical regardless of
    /// mode and of failures elsewhere in the slice (a failed scratch load
    /// leaves the scratch empty, which only means the next run re-scatters —
    /// same arithmetic).
    ///
    /// A `cancel` token is checked **between pairs, never mid-kernel**: when
    /// it trips, the pair about to run and everything after it get
    /// [`EffresError::DeadlineExceeded`] statuses and the slice stops — in
    /// *both* modes (cancellation is stop-and-report, not a fault, so even
    /// fail-fast slices return `Ok` and let the caller account the
    /// abandoned tail). Answers produced before the trip are untouched,
    /// which keeps them bit-identical to an uncancelled run.
    #[allow(clippy::type_complexity)]
    fn run_slice_statuses(
        &self,
        pairs: &[(usize, usize)],
        scratch: &mut HubScratch,
        fail_fast: bool,
        cancel: Option<&CancelToken>,
    ) -> Result<(Vec<Result<f64, EffresError>>, u64, u64, KernelStats), EffresError> {
        let mut statuses = Vec::with_capacity(pairs.len());
        let mut hits = 0u64;
        let mut misses = 0u64;
        let n = self.backend.node_count();
        let store = self.backend.store();
        let permutation = self.backend.permutation();
        for (slot, &(p, q)) in pairs.iter().enumerate() {
            if let Some(reason) = cancel.and_then(CancelToken::cancelled) {
                statuses.extend(
                    (slot..pairs.len()).map(|_| Err(EffresError::DeadlineExceeded { reason })),
                );
                break;
            }
            if p >= n || q >= n {
                let err = EffresError::NodeOutOfBounds {
                    node: p.max(q),
                    node_count: n,
                };
                if fail_fast {
                    return Err(err);
                }
                statuses.push(Err(err));
                continue;
            }
            if p == q {
                statuses.push(Ok(0.0));
                continue;
            }
            let key = cache_key(p, q);
            if let Some(cache) = &self.cache {
                if let Some(value) = cache.get(key) {
                    hits += 1;
                    statuses.push(Ok(value));
                    continue;
                }
            }
            misses += 1;
            let pp = permutation.new(p);
            let qq = permutation.new(q);
            // Batches are sorted by permuted `(min, max)`, so runs of
            // queries sharing a permuted anchor are contiguous and their
            // suffix bounds ascend. For a run, scatter the anchor column's
            // suffix once — from the run's first (smallest) bound — and
            // answer each query with suffix lookups; isolated queries use
            // the two-pointer suffix merge directly (a scatter would cost
            // more than it saves).
            let (hub, partner) = (pp.min(qq), pp.max(qq));
            let shares_hub = |other: &(usize, usize)| {
                let (op, oq) = *other;
                op < n && oq < n && {
                    let (opp, oqq) = (permutation.new(op), permutation.new(oq));
                    opp.min(oqq) == hub
                }
            };
            let run = scratch.hub() == Some(hub) || pairs.get(slot + 1).is_some_and(shares_hub);
            let outcome = (|| {
                let dot = if run {
                    scratch.load_suffix(store, hub, partner as u32)?;
                    scratch.suffix_dot(store, partner)?
                } else {
                    scratch.isolated_dot(store, pp, qq)?
                };
                let (np, nq) = self.norms_of(pp, qq)?;
                Ok((np + nq - 2.0 * dot).max(0.0))
            })();
            match outcome {
                Ok(value) => {
                    if let Some(cache) = &self.cache {
                        cache.insert(key, value);
                    }
                    statuses.push(Ok(value));
                }
                Err(err) => {
                    if fail_fast {
                        return Err(err);
                    }
                    statuses.push(Err(err));
                }
            }
        }
        Ok((statuses, hits, misses, scratch.take_stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres::EffresConfig;
    use effres_graph::generators;

    fn engine_for(nodes: usize, options: EngineOptions) -> QueryEngine {
        let side = (nodes as f64).sqrt() as usize;
        let graph = generators::grid_2d(side, side, 0.5, 2.0, 5).expect("generator");
        let estimator =
            EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build");
        QueryEngine::new(Arc::new(estimator), options)
    }

    #[test]
    fn single_queries_match_estimator() {
        let engine = engine_for(256, EngineOptions::default());
        let estimator = Arc::clone(engine.estimator());
        for &(p, q) in &[(0, 255), (3, 200), (17, 17), (100, 101)] {
            let a = engine.query(p, q).expect("query");
            let b = estimator.query(p, q).expect("query");
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "({p},{q}): {a} vs {b}"
            );
        }
        assert!(engine.query(0, 9999).is_err());
    }

    #[test]
    fn batch_results_match_sequential_queries_in_order() {
        let engine = engine_for(
            400,
            EngineOptions {
                parallel_threshold: 8, // force the parallel path
                threads: 4,
                ..EngineOptions::default()
            },
        );
        let batch = QueryBatch::random(5000, engine.node_count(), 42);
        let result = engine.execute(&batch).expect("batch");
        assert_eq!(result.values.len(), batch.len());
        assert!(result.threads > 1, "expected parallel execution");
        let estimator = Arc::clone(engine.estimator());
        for (&(p, q), &value) in batch.pairs().iter().zip(&result.values) {
            let reference = estimator.query(p, q).expect("query");
            assert!(
                (value - reference).abs() <= 1e-9 * reference.abs().max(1.0),
                "({p},{q}): {value} vs {reference}"
            );
        }
    }

    #[test]
    fn invalid_batches_fail_before_any_work() {
        let engine = engine_for(64, EngineOptions::default());
        let before = engine.stats().queries;
        let batch = QueryBatch::from_pairs(vec![(0, 1), (2, 1_000_000)]);
        assert!(engine.execute(&batch).is_err());
        assert_eq!(engine.stats().queries, before);
    }

    #[test]
    fn cache_serves_repeats() {
        let engine = engine_for(64, EngineOptions::default());
        let first = engine.query(1, 40).expect("query");
        let stats_after_miss = engine.stats();
        assert_eq!(stats_after_miss.cache_misses, 1);
        let second = engine.query(40, 1).expect("query"); // symmetric key
        assert_eq!(first, second);
        let stats_after_hit = engine.stats();
        assert_eq!(stats_after_hit.cache_hits, 1);
        assert!(stats_after_hit.cache_entries >= 1);
    }

    #[test]
    fn cache_can_be_disabled() {
        let engine = engine_for(
            64,
            EngineOptions {
                cache_capacity: 0,
                ..EngineOptions::default()
            },
        );
        engine.query(0, 10).expect("query");
        engine.query(0, 10).expect("query");
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_capacity, 0);
    }

    #[test]
    fn stats_accumulate_across_batches() {
        let engine = engine_for(100, EngineOptions::default());
        let batch = QueryBatch::random(100, engine.node_count(), 3);
        engine.execute(&batch).expect("batch");
        engine.execute(&batch).expect("batch");
        let stats = engine.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries, 200);
        // Second run should be answered almost entirely from cache.
        assert!(stats.cache_hits > 0);
        assert!(stats.cache_hits + stats.cache_misses <= 200);
        // A resident backend has no page cache to report on.
        assert_eq!(stats.page_cache_hits, 0);
        assert_eq!(stats.page_cache_misses, 0);
    }

    /// A store whose fetches always fail, for exercising the engine's
    /// error paths (the resident arena can never produce one).
    struct FailingStore {
        order: usize,
    }

    impl ColumnStore for FailingStore {
        fn order(&self) -> usize {
            self.order
        }

        fn nnz(&self) -> usize {
            0
        }

        fn with_column<R>(
            &self,
            j: usize,
            _f: impl FnOnce(effres::approx_inverse::ColumnView<'_>) -> R,
        ) -> Result<R, EffresError> {
            Err(EffresError::StoreFailure {
                column: j,
                message: "injected failure".into(),
            })
        }
    }

    #[test]
    fn a_failed_scratch_load_leaves_no_stale_column_behind() {
        // Regression test: scratches return to a shared free list even when
        // a batch aborts, so a load that fails halfway must leave the
        // scratch *empty* — a stale hub marker over a cleared buffer would
        // make a later batch silently compute dot = 0.
        let engine = engine_for(64, EngineOptions::default());
        let estimator = Arc::clone(engine.estimator());
        let store = estimator.approximate_inverse();
        let mut scratch = HubScratch::new(store.order());
        scratch.load(store, 3).expect("resident load");
        assert_eq!(scratch.hub(), Some(3));
        let reference = scratch.suffix_dot(store, 5).expect("resident dot");

        // A failing fetch clears the hub marker...
        let failing = FailingStore {
            order: store.order(),
        };
        assert!(scratch.load(&failing, 7).is_err());
        assert_eq!(scratch.hub(), None);

        // ...so reloading the original column really rescatters it instead
        // of trusting a stale marker, and the dot product is unchanged.
        scratch.load(store, 3).expect("resident reload");
        let again = scratch.suffix_dot(store, 5).expect("resident dot");
        assert_eq!(reference.to_bits(), again.to_bits());
    }

    #[test]
    fn pair_value_clamps_negative_cancellation_to_zero() {
        // Pins the clamp in `pair_value` and `run_slice_statuses`:
        // floating-point cancellation in ‖z̃_p‖² + ‖z̃_q‖² − 2⟨z̃_p, z̃_q⟩ can
        // go slightly negative for near-identical columns, and resistances
        // are nonnegative, so the engine must return exactly 0.0 — never a
        // negative value. Drive the identity negative deterministically with
        // a norm table that understates the true norms.
        let engine = engine_for(64, EngineOptions::default());
        let estimator = Arc::clone(engine.estimator());
        let store = estimator.approximate_inverse();
        let permutation = estimator.permutation();
        let n = store.order();
        let (a, b, pp, qq, dot) = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .find_map(|(a, b)| {
                let (pp, qq) = (permutation.new(a), permutation.new(b));
                let dot = column_store::column_dot(store, pp, qq).expect("resident dot");
                (dot > 0.0).then_some((a, b, pp, qq, dot))
            })
            .expect("some pair of columns overlaps");
        let mut norms = vec![1.0; n];
        norms[pp] = 0.9 * dot;
        norms[qq] = 0.9 * dot;
        let unclamped = norms[pp] + norms[qq] - 2.0 * dot;
        assert!(
            unclamped < 0.0,
            "identity must evaluate negative: {unclamped}"
        );
        let core = EngineCore {
            backend: Arc::clone(&estimator),
            norms: Some(Arc::new(norms)),
            cache: None,
            admission: None,
            scratches: std::array::from_fn(|_| Mutex::new(Vec::new())),
        };
        let value = core.pair_value(pp, qq).expect("pair value");
        assert_eq!(value, 0.0, "clamped exactly to zero, not {unclamped}");
        // The batch kernel path applies the same clamp.
        let mut scratch = HubScratch::new(n);
        let (statuses, _, _, _) = core
            .run_slice_statuses(&[(a, b)], &mut scratch, true, None)
            .expect("slice");
        assert_eq!(*statuses[0].as_ref().expect("status"), 0.0);
    }

    #[test]
    fn a_pretripped_token_abandons_the_whole_batch() {
        let engine = engine_for(64, EngineOptions::default());
        let batch = QueryBatch::random(100, engine.node_count(), 5);
        let cancel = Arc::new(CancelToken::unbounded());
        cancel.cancel(CancelReason::Disconnected);
        let before = engine.stats();
        let abort = engine.execute_with_cancel(&batch, &cancel).unwrap_err();
        assert_eq!(
            abort.error,
            EffresError::DeadlineExceeded {
                reason: CancelReason::Disconnected
            }
        );
        assert_eq!(abort.abandoned_pairs, batch.len() as u64);
        assert_eq!(engine.stats().queries, before.queries, "no query ran");
    }

    #[test]
    fn an_untripped_token_changes_nothing() {
        let engine = engine_for(
            400,
            EngineOptions {
                parallel_threshold: 8,
                threads: 4,
                cache_capacity: 0,
                ..EngineOptions::default()
            },
        );
        let batch = QueryBatch::random(3000, engine.node_count(), 13);
        let reference = engine.execute(&batch).expect("reference");
        let cancel = Arc::new(CancelToken::after(Duration::from_secs(3600)));
        let result = engine
            .execute_with_cancel(&batch, &cancel)
            .expect("nowhere near the deadline");
        assert_eq!(result.values.len(), reference.values.len());
        for (value, reference) in result.values.iter().zip(&reference.values) {
            assert_eq!(value.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn cancellation_keeps_completed_answers_bit_identical() {
        let engine = engine_for(
            400,
            EngineOptions {
                parallel_threshold: 8,
                threads: 4,
                cache_capacity: 0,
                ..EngineOptions::default()
            },
        );
        let batch = QueryBatch::random(20_000, engine.node_count(), 11);
        let reference = engine.execute(&batch).expect("reference").values;
        let cancel = Arc::new(CancelToken::unbounded());
        let canceller = {
            let cancel = Arc::clone(&cancel);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(300));
                cancel.cancel(CancelReason::Disconnected);
            })
        };
        let outcome = engine.execute_partial_with_cancel(&batch, &cancel);
        canceller.join().expect("canceller");
        match outcome {
            Ok(result) => {
                // Whatever the race decided, every completed answer is
                // bit-identical to the solo run and the abandoned tail is
                // typed and fully accounted.
                let mut completed = 0u64;
                for (status, reference) in result.statuses.iter().zip(&reference) {
                    match status {
                        Ok(value) => {
                            completed += 1;
                            assert_eq!(value.to_bits(), reference.to_bits());
                        }
                        Err(EffresError::DeadlineExceeded { reason }) => {
                            assert_eq!(*reason, CancelReason::Disconnected);
                        }
                        Err(other) => panic!("unexpected status: {other}"),
                    }
                }
                assert_eq!(completed + result.abandoned_pairs(), batch.len() as u64);
            }
            // The canceller won the race to admission: nothing ran at all.
            Err(EffresError::DeadlineExceeded { .. }) => {}
            Err(other) => panic!("unexpected batch error: {other}"),
        }
    }

    #[test]
    fn a_doomed_deadline_is_rejected_up_front() {
        let engine = engine_for(100, EngineOptions::default());
        // Teach the service-time estimator that pairs are outrageously slow
        // (one second each), so a 100-pair batch estimates at 100 s — far
        // beyond a 5 s deadline that itself has no chance of expiring
        // spuriously before admission runs. Deterministic either way.
        engine.service_time().record(1, Duration::from_secs(1));
        let batch = QueryBatch::random(100, engine.node_count(), 8);
        let before = engine.stats();
        let cancel = Arc::new(CancelToken::after(Duration::from_secs(5)));
        let abort = engine.execute_with_cancel(&batch, &cancel).unwrap_err();
        assert_eq!(
            abort.error,
            EffresError::DeadlineExceeded {
                reason: CancelReason::Unmeetable
            }
        );
        assert_eq!(abort.abandoned_pairs, batch.len() as u64);
        assert_eq!(engine.stats().queries, before.queries, "no query ran");
    }

    #[test]
    fn throughput_is_finite_and_positive() {
        let engine = engine_for(100, EngineOptions::default());
        let batch = QueryBatch::random(256, engine.node_count(), 1);
        let result = engine.execute(&batch).expect("batch");
        assert!(result.throughput() > 0.0);
    }
}
