//! Batched query workloads.

use effres_graph::Graph;

/// A batch of `(p, q)` effective-resistance queries in the estimator's dense
/// node space.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryBatch {
    pairs: Vec<(usize, usize)>,
}

impl QueryBatch {
    /// A batch over explicit pairs.
    pub fn from_pairs(pairs: Vec<(usize, usize)>) -> Self {
        QueryBatch { pairs }
    }

    /// The `Q_r = E` workload of the paper's Table I: every edge of `graph`.
    pub fn all_edges(graph: &Graph) -> Self {
        QueryBatch {
            pairs: graph.edges().map(|(_, e)| (e.u, e.v)).collect(),
        }
    }

    /// `count` pseudo-random pairs over `0..node_count`, deterministic in
    /// `seed` (SplitMix64). Pairs with `p == q` are allowed — they cost the
    /// engine nothing and real traffic contains them.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero and `count` is not.
    pub fn random(count: usize, node_count: usize, seed: u64) -> Self {
        assert!(
            node_count > 0 || count == 0,
            "cannot draw pairs from an empty node set"
        );
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let draw = |bits: u64| ((bits as u128 * node_count as u128) >> 64) as usize;
        let pairs = (0..count).map(|_| (draw(next()), draw(next()))).collect();
        QueryBatch { pairs }
    }

    /// The queries of the batch.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of *distinct* non-trivial queries: unique unordered pairs with
    /// `p != q`. Self-pairs short-circuit to `0.0` and duplicates are result
    /// cache hits, so this is the tighter (optimistic) work bound the
    /// deadline admission gate multiplies by the per-pair service-time EWMA
    /// — an optimistic bound only ever sheds *less*, never a meetable
    /// request.
    pub fn distinct_len(&self) -> usize {
        let mut seen = std::collections::HashSet::with_capacity(self.pairs.len());
        self.pairs
            .iter()
            .filter(|&&(p, q)| p != q && seen.insert((p.min(q), p.max(q))))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_and_in_bounds() {
        let a = QueryBatch::random(1000, 37, 7);
        let b = QueryBatch::random(1000, 37, 7);
        assert_eq!(a, b);
        assert!(a.pairs().iter().all(|&(p, q)| p < 37 && q < 37));
        let c = QueryBatch::random(1000, 37, 8);
        assert_ne!(a, c);
        assert_eq!(QueryBatch::random(0, 0, 1).len(), 0);
    }

    #[test]
    fn distinct_len_ignores_self_pairs_duplicates_and_orientation() {
        let batch = QueryBatch::from_pairs(vec![(0, 1), (1, 0), (2, 2), (0, 1), (3, 4)]);
        assert_eq!(batch.distinct_len(), 2);
        assert_eq!(QueryBatch::default().distinct_len(), 0);
    }

    #[test]
    fn all_edges_matches_graph() {
        let g = Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).expect("valid");
        let batch = QueryBatch::all_edges(&g);
        assert_eq!(batch.pairs(), &[(0, 1), (1, 2), (2, 3)]);
        assert!(!batch.is_empty());
    }
}
