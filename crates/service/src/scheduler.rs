//! The locality scheduler: batch execution for the paged backend that
//! reorders queries by the **pages** they touch instead of answering them in
//! arrival order.
//!
//! Arrival-order paged batches are an I/O disaster: every query touches the
//! pages of two essentially random columns, so a cache smaller than the file
//! thrashes — the PR-4 bench measured ~400× below resident throughput with
//! the work being pure page decode, not arithmetic. The fix is the classic
//! external-memory discipline (PEERS; Yang et al., "Efficient Estimation of
//! Pairwise Effective Resistance"): *amortize every fetched block over all
//! the queries that need it before letting it go*.
//!
//! [`QueryEngine::execute_scheduled`] does that in three steps:
//!
//! 1. **Cluster** — each cache-missing query is mapped to its page pair
//!    `(page_lo, page_hi)` (permuted endpoints, unordered) and the batch is
//!    sorted into page-pair clusters.
//! 2. **Block** — the `page_lo` side is partitioned into blocks of pinned
//!    pages sized to the store's cache budget minus a readahead window.
//!    Each block is fetched once with coalesced reads
//!    ([`PagedColumnStore::pin_pages`](effres_io::PagedColumnStore::pin_pages))
//!    and stays resident while *all* of its queries drain.
//! 3. **Sweep** — within a block, queries are re-sorted by `page_hi`, and
//!    the hi side becomes a sorted sweep: successive readahead windows of
//!    upcoming hi pages are pinned with one coalesced read each, drained,
//!    and dropped. Windows fan out as jobs on the engine's
//!    [`WorkerPool`](effres::WorkerPool) — each worker pins its own window
//!    (its private cache shard, in effect) while sharing the block pin.
//!
//! Every page is therefore read `O(blocks)` times instead of `O(queries)`
//! times, and every read is a large sequential one. Pin capacity is not
//! assumed but **leased**: every block acquires its pages from the engine's
//! [`AdmissionLedger`](crate::admission::AdmissionLedger) first, so
//! concurrent batches on one engine split the cache budget between them
//! (block by block) instead of over-pinning it — an uncontended lease gets
//! the full budget and the plan is exactly the solo plan. Results are scattered
//! back into the batch's original request order, and each query is evaluated
//! by exactly the same store-generic kernels as the unscheduled path (the
//! grouped multi-pair kernel
//! [`column_distances_squared_grouped`](effres::column_store::column_distances_squared_grouped),
//! property-pinned bit-identical to the pairwise
//! [`column_dot`](effres::column_store::column_dot) loop), so the values are
//! **bit-identical** to unscheduled paged — and to resident — execution;
//! only the evaluation order and the I/O pattern change. Query independence makes that reordering safe by construction,
//! and the property tests in `tests/io_service_end_to_end.rs` pin it.

use crate::admission::PinLease;
use crate::backend::ResistanceBackend;
use crate::batch::QueryBatch;
use crate::cancel::CancelToken;
use crate::engine::{
    cache_key, BatchAbort, BatchResult, EngineCore, PartialBatchResult, QueryEngine, ScheduleReport,
};
use effres::column_store::{self, KernelStats};
use effres::EffresError;
use effres_io::{PagedSnapshot, PinnedPages, PinnedReader};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// One cache-missing query, resolved into the permuted domain and mapped
/// onto its page pair.
#[derive(Debug, Clone, Copy)]
struct Pending {
    /// Index into the batch (and the output vector).
    slot: u32,
    /// Permuted endpoints.
    pp: u32,
    qq: u32,
    /// Pair-cache key of the original `(p, q)`.
    key: u64,
    /// Unordered page pair: `page_lo <= page_hi`.
    page_lo: u32,
    page_hi: u32,
}

impl QueryEngine<PagedSnapshot> {
    /// Leases pin capacity for one block, honoring the engine's admission
    /// bounds: unbounded blocking by default, shedding with a typed
    /// [`EffresError::Busy`] when
    /// [`admission_queue_depth`](crate::engine::EngineOptions::admission_queue_depth)
    /// is configured.
    /// A cancellation token bounds the wait further: an already-tripped
    /// token fails before queueing, a deadline caps the lease wait at the
    /// time actually left, and a wait that runs out the deadline surfaces as
    /// [`EffresError::DeadlineExceeded`] rather than a retryable `Busy`.
    fn lease_block(
        &self,
        desired: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<PinLease<'_>>, EffresError> {
        if let Some(token) = cancel {
            token.check()?;
        }
        let Some(ledger) = self.core.admission.as_deref() else {
            return Ok(None);
        };
        let remaining = cancel.and_then(CancelToken::remaining);
        let lease = match (self.options.admission_queue_depth, remaining) {
            (None, None) => Ok(ledger.lease(2, desired)),
            (None, Some(remaining)) => ledger.lease_within(2, desired, usize::MAX, remaining),
            (Some(depth), None) => {
                ledger.lease_within(2, desired, depth, self.options.admission_timeout)
            }
            (Some(depth), Some(remaining)) => ledger.lease_within(
                2,
                desired,
                depth,
                self.options.admission_timeout.min(remaining),
            ),
        };
        match lease {
            Ok(lease) => Ok(Some(lease)),
            Err(err) => {
                // A lease timeout that coincides with the token's deadline
                // *is* the deadline: report it as such, not as a retryable
                // overload shed.
                if let Some(token) = cancel {
                    token.check()?;
                }
                Err(err)
            }
        }
    }

    /// Executes a batch through the locality scheduler (see the module
    /// docs): answers come back in the batch's original pair order and are
    /// bit-identical to [`QueryEngine::execute`], which remains the
    /// arrival-order reference path.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] naming the first invalid
    /// node (no query has run), [`EffresError::StoreFailure`] if the
    /// store failed mid-batch (in which case the batch produced no values),
    /// or [`EffresError::Busy`] if bounded admission shed the batch.
    pub fn execute_scheduled(&self, batch: &QueryBatch) -> Result<BatchResult, EffresError> {
        self.validate_batch(batch)?;
        self.execute_scheduled_inner(batch, None)
            .map_err(|abort| abort.error)
    }

    /// [`execute_scheduled`](Self::execute_scheduled) with a cancellation
    /// token, checked at every **block boundary and readahead-wave
    /// boundary** — the scheduler's natural chunk edges, where the block
    /// lease, the pinned pages and the window pins all release by RAII, so a
    /// trip frees page-cache budget for live batches within one chunk and
    /// never interrupts a kernel (answers already drained went through
    /// exactly the calls a completed run makes). On cancellation the batch
    /// reports as a [`BatchAbort`] counting the queries that never drained;
    /// a deadline the service-time EWMA says cannot be met is shed up front
    /// through the admission ledger's doomed gate.
    pub fn execute_scheduled_with_cancel(
        &self,
        batch: &QueryBatch,
        cancel: &Arc<CancelToken>,
    ) -> Result<BatchResult, BatchAbort> {
        self.validate_batch(batch)?;
        if let Err(error) = self.admit_deadline(batch, cancel) {
            return Err(BatchAbort {
                error,
                abandoned_pairs: batch.len() as u64,
            });
        }
        self.execute_scheduled_inner(batch, Some(cancel))
    }

    fn validate_batch(&self, batch: &QueryBatch) -> Result<(), EffresError> {
        let n = self.core.backend.node_count();
        for &(p, q) in batch.pairs() {
            if p >= n || q >= n {
                return Err(EffresError::NodeOutOfBounds {
                    node: p.max(q),
                    node_count: n,
                });
            }
        }
        Ok(())
    }

    fn execute_scheduled_inner(
        &self,
        batch: &QueryBatch,
        cancel: Option<&Arc<CancelToken>>,
    ) -> Result<BatchResult, BatchAbort> {
        let n = self.core.backend.node_count();
        debug_assert!(batch.pairs().iter().all(|&(p, q)| p < n && q < n));
        self.begin_page_window();
        let start = Instant::now();

        let store = &self.core.backend.store;
        let permutation = self.core.backend.permutation();
        let mut values = vec![0.0f64; batch.len()];
        let mut hits = 0u64;
        let mut pending: Vec<Pending> = Vec::with_capacity(batch.len());
        // With a pair cache, in-batch repeats of a pair compute once and fan
        // out afterwards (the arrival-order path serves them from the cache
        // as it goes; here the cache is consulted before any work, so
        // duplicates must be folded explicitly — each entry maps a repeat's
        // slot to the slot of the pair's first occurrence, and counts as the
        // hit it would have been). With the cache disabled, repeats are
        // computed like the arrival-order path computes them, keeping the
        // hit/miss accounting of the two paths identical.
        let mut duplicates: Vec<(u32, u32)> = Vec::new();
        let mut first_slot_of: std::collections::HashMap<u64, u32> =
            std::collections::HashMap::new();
        for (slot, &(p, q)) in batch.pairs().iter().enumerate() {
            if p == q {
                continue; // values[slot] stays 0.0
            }
            let key = cache_key(p, q);
            if let Some(cache) = &self.core.cache {
                if let Some(value) = cache.get(key) {
                    hits += 1;
                    values[slot] = value;
                    continue;
                }
                if let Some(&first) = first_slot_of.get(&key) {
                    hits += 1;
                    duplicates.push((slot as u32, first));
                    continue;
                }
                first_slot_of.insert(key, slot as u32);
            }
            let pp = permutation.new(p);
            let qq = permutation.new(q);
            let (pa, pb) = (store.page_of_column(pp), store.page_of_column(qq));
            pending.push(Pending {
                slot: slot as u32,
                pp: pp as u32,
                qq: qq as u32,
                key,
                page_lo: pa.min(pb) as u32,
                page_hi: pa.max(pb) as u32,
            });
        }
        drop(first_slot_of);
        let misses = pending.len() as u64;

        // 1. Cluster: queries sharing a page pair become adjacent; the slot
        // tiebreak keeps the plan deterministic for identical batches.
        pending.sort_unstable_by_key(|t| (t.page_lo, t.page_hi, t.slot));
        let clusters = pending
            .windows(2)
            .filter(|w| (w[0].page_lo, w[0].page_hi) != (w[1].page_lo, w[1].page_hi))
            .count()
            + usize::from(!pending.is_empty());

        // 2. Budget split: the store's page budget funds one long-lived
        // block pin plus a readahead window per concurrent worker. The
        // scheduler needs at least two pages of budget (one per side of a
        // pair) — a smaller cache still works, it just re-reads more.
        //
        // Under concurrent batches the budget is not ours to assume: each
        // block **leases** its pin capacity from the engine's admission
        // ledger (full budget when uncontended — identical plan to solo
        // execution — a fair share otherwise), and the block/window split is
        // recomputed from the actual grant. Leasing per block, not per
        // batch, is what lets a large batch split: it re-queues at every
        // block boundary, so competing traffic interleaves.
        let budget = store.cache_capacity_pages().max(2);
        let threads = self.effective_threads(batch.len()).max(1);
        // Brownout trims readahead to the single-page minimum: a pressured
        // cache stops speculating, at the cost of more, smaller reads. The
        // plan changes shape but the kernels and their inputs do not, so
        // values stay bit-identical.
        let brownout = self.brownout_active();
        let window_of = |grant: usize| {
            if brownout {
                1
            } else {
                match self.options.readahead_pages {
                    0 => (grant / 8).clamp(1, 64),
                    w => w,
                }
            }
            .min(grant - 1)
            .max(1)
        };
        let full_window = window_of(budget);
        let full_block_cap = budget.saturating_sub(full_window * threads).max(1);

        // Distinct lo pages in `pending[i..]`, for sizing the lease of a
        // final partial block to what it can actually use.
        let mut distinct_lo_from = vec![0usize; pending.len() + 1];
        for i in (0..pending.len()).rev() {
            let new_page = i + 1 == pending.len() || pending[i].page_lo != pending[i + 1].page_lo;
            distinct_lo_from[i] = distinct_lo_from[i + 1] + usize::from(new_page);
        }

        let mut report = ScheduleReport {
            clusters,
            blocks: 0,
            windows: 0,
        };
        let mut kernel = KernelStats::default();
        let mut parallel_fan = 1usize;
        let mut at = 0usize;
        let total_pending = pending.len();
        while at < total_pending {
            // Block boundary: the cheapest place to notice a tripped token —
            // no lease held, nothing pinned, everything after `at` unread.
            if let Some(reason) = cancel.and_then(|token| token.cancelled()) {
                return Err(BatchAbort {
                    error: EffresError::DeadlineExceeded { reason },
                    abandoned_pairs: (total_pending - at) as u64,
                });
            }
            let desired = if distinct_lo_from[at] >= full_block_cap {
                budget
            } else {
                (distinct_lo_from[at] + full_window * threads).min(budget)
            };
            // Two pages is the smallest viable grant: one block page plus
            // one window page. The lease blocks until capacity is free and
            // returns it when dropped at the end of the block (or sheds
            // with `Busy` under bounded admission).
            let lease = match self.lease_block(desired, cancel.map(Arc::as_ref)) {
                Ok(lease) => lease,
                Err(error) => {
                    let abandoned = if matches!(error, EffresError::DeadlineExceeded { .. }) {
                        (total_pending - at) as u64
                    } else {
                        0
                    };
                    return Err(BatchAbort {
                        error,
                        abandoned_pairs: abandoned,
                    });
                }
            };
            let grant = lease.as_ref().map_or(budget, |l| l.granted());
            // Re-derive the split from the grant. `fan` caps how many
            // windows may be pinned at once so block + concurrent windows
            // never exceed the grant (`block_cap + fan·window ≤ grant`).
            let window = window_of(grant.max(2));
            let fan = threads.min((grant.saturating_sub(1) / window).max(1));
            let block_cap = grant.saturating_sub(window * fan).max(1);

            // Grow the block until it holds `block_cap` distinct lo pages.
            let block_start = at;
            let mut lo_pages: Vec<usize> = Vec::new();
            while at < pending.len() {
                let lo = pending[at].page_lo as usize;
                if lo_pages.last() != Some(&lo) {
                    if lo_pages.len() == block_cap {
                        break;
                    }
                    lo_pages.push(lo);
                }
                at += 1;
            }
            report.blocks += 1;
            let block = &mut pending[block_start..at];
            // 3. Pin the block (coalesced) and sweep its hi side in sorted
            // order, so every hi fetch is sequential readahead.
            let pinned = Arc::new(store.pin_pages(&lo_pages)?);
            block.sort_unstable_by_key(|t| (t.page_hi, t.page_lo, t.slot));

            // Cut the sweep into window jobs: each accumulates up to
            // `window` distinct hi pages that are not already pinned with
            // the block.
            let mut job_bounds: Vec<(Vec<usize>, usize, usize)> = Vec::new();
            let mut job_pids: Vec<usize> = Vec::new();
            let mut job_start = 0usize;
            for (i, t) in block.iter().enumerate() {
                let hi = t.page_hi as usize;
                let needed = lo_pages.binary_search(&hi).is_err() && job_pids.last() != Some(&hi);
                if needed && job_pids.len() == window {
                    job_bounds.push((std::mem::take(&mut job_pids), job_start, i));
                    job_start = i;
                }
                if needed {
                    job_pids.push(hi);
                }
            }
            job_bounds.push((job_pids, job_start, block.len()));
            report.windows += job_bounds.len();

            if fan > 1 && job_bounds.len() > 1 {
                // Fan the windows out: each worker pins its own window (its
                // per-worker shard of the grant) over the shared block pin.
                // Jobs are submitted in waves of at most `fan`, because the
                // pin bound is per *concurrent* window — a pool with more
                // workers than `fan` would otherwise pin every window of the
                // block at once and blow through the lease. The closures are
                // built per wave, not up front, so a token that trips
                // between waves abandons the un-dispatched windows without
                // ever materializing them.
                parallel_fan = parallel_fan.max(job_bounds.len().min(fan));
                let mut bounds: VecDeque<(Vec<usize>, usize, usize)> = job_bounds.into();
                let mut job_index = 0usize;
                while !bounds.is_empty() {
                    if let Some(reason) = cancel.and_then(|token| token.cancelled()) {
                        let undrained: u64 =
                            bounds.iter().map(|&(_, lo, hi)| (hi - lo) as u64).sum();
                        return Err(BatchAbort {
                            error: EffresError::DeadlineExceeded { reason },
                            abandoned_pairs: undrained + (total_pending - at) as u64,
                        });
                    }
                    let wave: Vec<_> = bounds
                        .drain(..fan.min(bounds.len()))
                        .map(|(pids, lo, hi)| {
                            let job = job_index;
                            job_index += 1;
                            let core = Arc::clone(&self.core);
                            let pinned = Arc::clone(&pinned);
                            let queries = block[lo..hi].to_vec();
                            move || drain_window(&core, &pinned, &pids, &queries, job)
                        })
                        .collect();
                    for result in self.worker_pool().run(wave) {
                        let (drained, window_kernel) = result?;
                        kernel.merge(window_kernel);
                        for (slot, value) in drained {
                            values[slot as usize] = value;
                        }
                    }
                }
            } else {
                for (index, (pids, lo, hi)) in job_bounds.iter().enumerate() {
                    if let Some(reason) = cancel.and_then(|token| token.cancelled()) {
                        let undrained: u64 = job_bounds[index..]
                            .iter()
                            .map(|&(_, lo, hi)| (hi - lo) as u64)
                            .sum();
                        return Err(BatchAbort {
                            error: EffresError::DeadlineExceeded { reason },
                            abandoned_pairs: undrained + (total_pending - at) as u64,
                        });
                    }
                    let (drained, window_kernel) =
                        drain_window(&self.core, &pinned, pids, &block[*lo..*hi], 0)?;
                    kernel.merge(window_kernel);
                    for (slot, value) in drained {
                        values[slot as usize] = value;
                    }
                }
            }
        }

        for (slot, first) in duplicates {
            values[slot as usize] = values[first as usize];
        }

        let elapsed = start.elapsed();
        self.queries
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
        self.service_time.record(batch.len(), elapsed);
        Ok(BatchResult {
            values,
            elapsed,
            threads: parallel_fan,
            cache_hits: hits,
            cache_misses: misses,
            page_cache: self.end_page_window(),
            kernel,
            schedule: Some(report),
        })
    }

    /// The partial-results twin of
    /// [`execute_scheduled`](Self::execute_scheduled): same clustering, same
    /// blocks, same kernels — but failures **degrade** instead of aborting.
    ///
    /// * An out-of-bounds pair fails only its own slot
    ///   ([`EffresError::NodeOutOfBounds`]).
    /// * A page the store cannot produce (exhausted retries, persistent
    ///   corruption) fails only the queries that touch it: block pins
    ///   degrade through
    ///   [`pin_pages_partial`](effres_io::PagedColumnStore::pin_pages_partial),
    ///   and a window whose batched kernel fails is re-run query by query so
    ///   the poisoned page pair is isolated
    ///   ([`EffresError::StoreFailure`]).
    /// * Under bounded admission, a shed at a block boundary marks the
    ///   *remaining* queries [`EffresError::Busy`] and returns what already
    ///   drained.
    ///
    /// Successful answers are bit-identical to a fault-free
    /// [`execute_scheduled`](Self::execute_scheduled) run: the per-query
    /// fallback calls the very same batched kernel
    /// ([`column_store::column_distances_squared_batch`]) on a one-pair
    /// slice, which computes per pair exactly what the full-window call
    /// computes.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::Busy`] only when bounded admission sheds the
    /// **first** block — nothing has been computed, so the caller should
    /// back off and resubmit the batch whole.
    pub fn execute_scheduled_partial(
        &self,
        batch: &QueryBatch,
    ) -> Result<PartialBatchResult, EffresError> {
        self.execute_scheduled_partial_inner(batch, None)
    }

    /// [`execute_scheduled_partial`](Self::execute_scheduled_partial) with a
    /// cancellation token: a trip at a block or readahead-wave boundary
    /// keeps everything already drained (bit-identical, as always) and marks
    /// the rest [`EffresError::DeadlineExceeded`] — count the tail with
    /// [`PartialBatchResult::abandoned_pairs`]. A batch whose deadline the
    /// service-time EWMA says cannot be met is shed whole with `Err` before
    /// anything is queued or pinned.
    pub fn execute_scheduled_partial_with_cancel(
        &self,
        batch: &QueryBatch,
        cancel: &Arc<CancelToken>,
    ) -> Result<PartialBatchResult, EffresError> {
        self.admit_deadline(batch, cancel)?;
        self.execute_scheduled_partial_inner(batch, Some(cancel))
    }

    fn execute_scheduled_partial_inner(
        &self,
        batch: &QueryBatch,
        cancel: Option<&Arc<CancelToken>>,
    ) -> Result<PartialBatchResult, EffresError> {
        let n = self.core.backend.node_count();
        self.begin_page_window();
        let start = Instant::now();

        let store = &self.core.backend.store;
        let permutation = self.core.backend.permutation();
        let mut statuses: Vec<Result<f64, EffresError>> =
            (0..batch.len()).map(|_| Ok(0.0)).collect();
        let mut hits = 0u64;
        let mut pending: Vec<Pending> = Vec::with_capacity(batch.len());
        let mut duplicates: Vec<(u32, u32)> = Vec::new();
        let mut first_slot_of: std::collections::HashMap<u64, u32> =
            std::collections::HashMap::new();
        for (slot, &(p, q)) in batch.pairs().iter().enumerate() {
            if p >= n || q >= n {
                statuses[slot] = Err(EffresError::NodeOutOfBounds {
                    node: p.max(q),
                    node_count: n,
                });
                continue;
            }
            if p == q {
                continue; // statuses[slot] stays Ok(0.0)
            }
            let key = cache_key(p, q);
            if let Some(cache) = &self.core.cache {
                if let Some(value) = cache.get(key) {
                    hits += 1;
                    statuses[slot] = Ok(value);
                    continue;
                }
                if let Some(&first) = first_slot_of.get(&key) {
                    hits += 1;
                    duplicates.push((slot as u32, first));
                    continue;
                }
                first_slot_of.insert(key, slot as u32);
            }
            let pp = permutation.new(p);
            let qq = permutation.new(q);
            let (pa, pb) = (store.page_of_column(pp), store.page_of_column(qq));
            pending.push(Pending {
                slot: slot as u32,
                pp: pp as u32,
                qq: qq as u32,
                key,
                page_lo: pa.min(pb) as u32,
                page_hi: pa.max(pb) as u32,
            });
        }
        drop(first_slot_of);
        let misses = pending.len() as u64;

        pending.sort_unstable_by_key(|t| (t.page_lo, t.page_hi, t.slot));
        let clusters = pending
            .windows(2)
            .filter(|w| (w[0].page_lo, w[0].page_hi) != (w[1].page_lo, w[1].page_hi))
            .count()
            + usize::from(!pending.is_empty());

        // Identical budget math to the all-or-nothing path: the plan — and
        // therefore the evaluation order — must not depend on the mode.
        let budget = store.cache_capacity_pages().max(2);
        let threads = self.effective_threads(batch.len()).max(1);
        let brownout = self.brownout_active();
        let window_of = |grant: usize| {
            if brownout {
                1
            } else {
                match self.options.readahead_pages {
                    0 => (grant / 8).clamp(1, 64),
                    w => w,
                }
            }
            .min(grant - 1)
            .max(1)
        };
        let full_window = window_of(budget);
        let full_block_cap = budget.saturating_sub(full_window * threads).max(1);

        let mut distinct_lo_from = vec![0usize; pending.len() + 1];
        for i in (0..pending.len()).rev() {
            let new_page = i + 1 == pending.len() || pending[i].page_lo != pending[i + 1].page_lo;
            distinct_lo_from[i] = distinct_lo_from[i + 1] + usize::from(new_page);
        }

        let mut report = ScheduleReport {
            clusters,
            blocks: 0,
            windows: 0,
        };
        let mut kernel = KernelStats::default();
        let mut parallel_fan = 1usize;
        let mut at = 0usize;
        while at < pending.len() {
            // Block boundary: a tripped token keeps the drained prefix and
            // types the rest — partial mode never aborts mid-batch.
            if let Some(reason) = cancel.and_then(|token| token.cancelled()) {
                for t in &pending[at..] {
                    statuses[t.slot as usize] = Err(EffresError::DeadlineExceeded { reason });
                }
                break;
            }
            let desired = if distinct_lo_from[at] >= full_block_cap {
                budget
            } else {
                (distinct_lo_from[at] + full_window * threads).min(budget)
            };
            let lease = match self.lease_block(desired, cancel.map(Arc::as_ref)) {
                Ok(lease) => lease,
                Err(busy @ EffresError::Busy { .. }) if at == 0 => return Err(busy),
                Err(err) => {
                    // Mid-batch shed (or a deadline run out waiting for the
                    // lease): everything drained so far stands; the rest is
                    // typed for the client — `Busy` to retry,
                    // `DeadlineExceeded` to give up on.
                    for t in &pending[at..] {
                        statuses[t.slot as usize] = Err(err.clone());
                    }
                    break;
                }
            };
            let grant = lease.as_ref().map_or(budget, |l| l.granted());
            let window = window_of(grant.max(2));
            let fan = threads.min((grant.saturating_sub(1) / window).max(1));
            let block_cap = grant.saturating_sub(window * fan).max(1);

            let block_start = at;
            let mut lo_pages: Vec<usize> = Vec::new();
            while at < pending.len() {
                let lo = pending[at].page_lo as usize;
                if lo_pages.last() != Some(&lo) {
                    if lo_pages.len() == block_cap {
                        break;
                    }
                    lo_pages.push(lo);
                }
                at += 1;
            }
            report.blocks += 1;
            let block = &mut pending[block_start..at];
            // Degraded pin: pages that cannot be produced fail only the
            // queries anchored on them; the rest of the block proceeds over
            // whatever did pin.
            let (pinned, pin_failures) = store.pin_pages_partial(&lo_pages);
            let pinned = Arc::new(pinned);
            block.sort_unstable_by_key(|t| (t.page_hi, t.page_lo, t.slot));
            let mut drainable: Vec<Pending> = Vec::with_capacity(block.len());
            if pin_failures.is_empty() {
                drainable.extend_from_slice(block);
            } else {
                for t in block.iter() {
                    match pin_failures
                        .iter()
                        .find(|(pid, _)| *pid == t.page_lo as usize)
                    {
                        Some((_, err)) => statuses[t.slot as usize] = Err(err.clone()),
                        None => drainable.push(*t),
                    }
                }
            }

            let mut job_bounds: Vec<(Vec<usize>, usize, usize)> = Vec::new();
            let mut job_pids: Vec<usize> = Vec::new();
            let mut job_start = 0usize;
            for (i, t) in drainable.iter().enumerate() {
                let hi = t.page_hi as usize;
                let needed = lo_pages.binary_search(&hi).is_err() && job_pids.last() != Some(&hi);
                if needed && job_pids.len() == window {
                    job_bounds.push((std::mem::take(&mut job_pids), job_start, i));
                    job_start = i;
                }
                if needed {
                    job_pids.push(hi);
                }
            }
            job_bounds.push((job_pids, job_start, drainable.len()));
            report.windows += job_bounds.len();

            if fan > 1 && job_bounds.len() > 1 {
                parallel_fan = parallel_fan.max(job_bounds.len().min(fan));
                let mut bounds: VecDeque<(Vec<usize>, usize, usize)> = job_bounds.into();
                let mut job_index = 0usize;
                while !bounds.is_empty() {
                    // Wave boundary: abandon the un-dispatched windows of
                    // this block (the sticky token marks the later blocks at
                    // the top of the outer loop).
                    if let Some(reason) = cancel.and_then(|token| token.cancelled()) {
                        for &(_, lo, hi) in &bounds {
                            for t in &drainable[lo..hi] {
                                statuses[t.slot as usize] =
                                    Err(EffresError::DeadlineExceeded { reason });
                            }
                        }
                        break;
                    }
                    let wave: Vec<_> = bounds
                        .drain(..fan.min(bounds.len()))
                        .map(|(pids, lo, hi)| {
                            let job = job_index;
                            job_index += 1;
                            let core = Arc::clone(&self.core);
                            let pinned = Arc::clone(&pinned);
                            let queries = drainable[lo..hi].to_vec();
                            move || drain_window_partial(&core, &pinned, &pids, &queries, job)
                        })
                        .collect();
                    for (window_statuses, window_kernel) in self.worker_pool().run(wave) {
                        kernel.merge(window_kernel);
                        for (slot, status) in window_statuses {
                            statuses[slot as usize] = status;
                        }
                    }
                }
            } else {
                for (index, (pids, lo, hi)) in job_bounds.iter().enumerate() {
                    if let Some(reason) = cancel.and_then(|token| token.cancelled()) {
                        for &(_, lo, hi) in &job_bounds[index..] {
                            for t in &drainable[lo..hi] {
                                statuses[t.slot as usize] =
                                    Err(EffresError::DeadlineExceeded { reason });
                            }
                        }
                        break;
                    }
                    let (window_statuses, window_kernel) =
                        drain_window_partial(&self.core, &pinned, pids, &drainable[*lo..*hi], 0);
                    kernel.merge(window_kernel);
                    for (slot, status) in window_statuses {
                        statuses[slot as usize] = status;
                    }
                }
            }
        }

        for (slot, first) in duplicates {
            statuses[slot as usize] = statuses[first as usize].clone();
        }

        let elapsed = start.elapsed();
        self.queries
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
        let result = PartialBatchResult {
            statuses,
            elapsed,
            threads: parallel_fan,
            cache_hits: hits,
            cache_misses: misses,
            page_cache: self.end_page_window(),
            kernel,
            schedule: Some(report),
        };
        if result.is_complete() {
            self.service_time.record(batch.len(), elapsed);
        }
        Ok(result)
    }
}

/// Drains one readahead window: pins its hi pages (one coalesced read for
/// adjacent pages — the sweep keeps them mostly adjacent), then answers the
/// window's queries through the store-generic grouped multi-pair kernel
/// ([`column_store::column_distances_squared_grouped`]) — bit-identical to
/// the pairwise kernel, but a window's queries sharing a hub column stream
/// that column once — via a reader that prefers the pinned pages and never
/// touches the cache locks for them. The hub scratch comes from the
/// engine's sharded free list (`scratch_hint` spreads concurrent windows
/// over distinct shards), and the kernel counters it accumulated ride back
/// alongside the values.
fn drain_window(
    core: &EngineCore<PagedSnapshot>,
    block_pin: &PinnedPages,
    window_pids: &[usize],
    queries: &[Pending],
    scratch_hint: usize,
) -> Result<(Vec<(u32, f64)>, KernelStats), EffresError> {
    let store = &core.backend.store;
    let window_pin = store.pin_pages(window_pids)?;
    let reader = PinnedReader::new(store, block_pin, Some(&window_pin));
    // Re-sort the window by normalized column pair: pages hold neighbouring
    // columns, so the page-sorted window is nearly column-sorted already,
    // and this makes runs sharing a hub column contiguous for the grouped
    // kernel. Safe because queries are independent and answers scatter back
    // by slot.
    let mut sorted: Vec<Pending> = queries.to_vec();
    sorted.sort_unstable_by_key(|t| (t.pp.min(t.qq), t.pp.max(t.qq), t.slot));
    let pairs: Vec<(usize, usize)> = sorted
        .iter()
        .map(|t| (t.pp as usize, t.qq as usize))
        .collect();
    let mut scratch = core.take_scratch(scratch_hint);
    let outcome = column_store::column_distances_squared_grouped(
        &reader,
        &pairs,
        core.norms.as_ref().map(|table| table.as_slice()),
        &mut scratch,
    );
    let kernel = scratch.take_stats();
    core.return_scratch(scratch_hint, scratch);
    let values = outcome?;
    let mut out = Vec::with_capacity(sorted.len());
    for (t, &value) in sorted.iter().zip(&values) {
        if let Some(cache) = &core.cache {
            cache.insert(t.key, value);
        }
        out.push((t.slot, value));
    }
    Ok((out, kernel))
}

/// The degrading twin of [`drain_window`]: window pins degrade page by page,
/// and a failed grouped kernel is re-run **query by query** over the same
/// pinned reader — the grouped kernel on a one-pair slice computes the
/// bit-identical per-pair value (the multi-pair property tests pin this),
/// so the successes stay bit-identical and only queries actually touching
/// an unproducible page fail.
#[allow(clippy::type_complexity)]
fn drain_window_partial(
    core: &EngineCore<PagedSnapshot>,
    block_pin: &PinnedPages,
    window_pids: &[usize],
    queries: &[Pending],
    scratch_hint: usize,
) -> (Vec<(u32, Result<f64, EffresError>)>, KernelStats) {
    let store = &core.backend.store;
    // Failed window pins are not fatal: the reader falls back to the store
    // for unpinned pages, and any page that truly cannot be produced fails
    // its queries in the per-query pass below.
    let (window_pin, _window_failures) = store.pin_pages_partial(window_pids);
    let reader = PinnedReader::new(store, block_pin, Some(&window_pin));
    let norms = core.norms.as_ref().map(|table| table.as_slice());
    let mut sorted: Vec<Pending> = queries.to_vec();
    sorted.sort_unstable_by_key(|t| (t.pp.min(t.qq), t.pp.max(t.qq), t.slot));
    let pairs: Vec<(usize, usize)> = sorted
        .iter()
        .map(|t| (t.pp as usize, t.qq as usize))
        .collect();
    let mut scratch = core.take_scratch(scratch_hint);
    let out = match column_store::column_distances_squared_grouped(
        &reader,
        &pairs,
        norms,
        &mut scratch,
    ) {
        Ok(values) => sorted
            .iter()
            .zip(&values)
            .map(|(t, &value)| {
                if let Some(cache) = &core.cache {
                    cache.insert(t.key, value);
                }
                (t.slot, Ok(value))
            })
            .collect(),
        Err(_) => sorted
            .iter()
            .map(|t| {
                let pair = [(t.pp as usize, t.qq as usize)];
                match column_store::column_distances_squared_grouped(
                    &reader,
                    &pair,
                    norms,
                    &mut scratch,
                ) {
                    Ok(values) => {
                        let value = values[0];
                        if let Some(cache) = &core.cache {
                            cache.insert(t.key, value);
                        }
                        (t.slot, Ok(value))
                    }
                    Err(err) => (t.slot, Err(err)),
                }
            })
            .collect(),
    };
    let kernel = scratch.take_stats();
    core.return_scratch(scratch_hint, scratch);
    (out, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use effres::{EffectiveResistanceEstimator, EffresConfig};
    use effres_graph::generators;
    use effres_io::paged::{open_paged, PagedOptions};
    use effres_io::snapshot::save_snapshot;

    fn temp_snapshot(name: &str) -> (std::path::PathBuf, EffectiveResistanceEstimator) {
        let graph = generators::grid_2d(16, 16, 0.5, 2.0, 7).expect("generator");
        let estimator =
            EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build");
        let dir = std::env::temp_dir().join("effres-scheduler-unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(name);
        save_snapshot(&path, &estimator, None).expect("save");
        (path, estimator)
    }

    fn paged_engine(
        path: &std::path::Path,
        paged_options: &PagedOptions,
        options: EngineOptions,
    ) -> QueryEngine<PagedSnapshot> {
        let paged = open_paged(path, paged_options).expect("open paged");
        QueryEngine::new(Arc::new(paged), options)
    }

    #[test]
    fn scheduled_matches_unscheduled_bitwise_in_original_order() {
        let (path, _estimator) = temp_snapshot("sched16.snap");
        let batch = QueryBatch::random(3000, 256, 99);
        for paged_options in [
            PagedOptions {
                columns_per_page: 4,
                cache_pages: 8,
                cache_shards: 2,
                ..PagedOptions::default()
            },
            PagedOptions {
                columns_per_page: 1,
                cache_pages: 1,
                cache_shards: 1,
                ..PagedOptions::default()
            },
            PagedOptions {
                columns_per_page: 64,
                cache_pages: 2,
                cache_shards: 1,
                ..PagedOptions::default()
            },
        ] {
            // Fresh engines, pair caches off: both sides take the kernel
            // path for every query.
            let options = || EngineOptions {
                cache_capacity: 0,
                parallel_threshold: usize::MAX,
                ..EngineOptions::default()
            };
            let reference = paged_engine(&path, &paged_options, options());
            let scheduled = paged_engine(&path, &paged_options, options());
            let a = reference.execute(&batch).expect("unscheduled");
            let b = scheduled.execute_scheduled(&batch).expect("scheduled");
            assert_eq!(a.values.len(), b.values.len());
            for (slot, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{paged_options:?} slot {slot} {:?}",
                    batch.pairs()[slot]
                );
            }
            let schedule = b.schedule.expect("scheduled path reports its shape");
            assert!(schedule.blocks >= 1);
            assert!(schedule.windows >= schedule.blocks);
            assert!(schedule.clusters >= 1);
            let page = b.page_cache.expect("paged backend reports page traffic");
            assert!(page.misses > 0);
            assert!(page.bytes_read > 0);
        }
    }

    #[test]
    fn scheduled_parallel_fan_out_is_bit_identical_too() {
        let (path, _estimator) = temp_snapshot("sched16_par.snap");
        let batch = QueryBatch::random(4000, 256, 5);
        let paged_options = PagedOptions {
            columns_per_page: 2,
            cache_pages: 16,
            cache_shards: 2,
            ..PagedOptions::default()
        };
        let sequential = paged_engine(
            &path,
            &paged_options,
            EngineOptions {
                cache_capacity: 0,
                parallel_threshold: usize::MAX,
                ..EngineOptions::default()
            },
        );
        let parallel = paged_engine(
            &path,
            &paged_options,
            EngineOptions {
                cache_capacity: 0,
                threads: 4,
                parallel_threshold: 8,
                readahead_pages: 2,
                ..EngineOptions::default()
            },
        );
        let a = sequential.execute_scheduled(&batch).expect("sequential");
        let b = parallel.execute_scheduled(&batch).expect("parallel");
        assert!(b.threads > 1, "expected window fan-out");
        for (x, y) in a.values.iter().zip(&b.values) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn scheduled_batches_hit_the_pair_cache_and_count_queries() {
        let (path, _estimator) = temp_snapshot("sched16_cache.snap");
        let engine = paged_engine(
            &path,
            &PagedOptions {
                columns_per_page: 8,
                cache_pages: 4,
                cache_shards: 1,
                ..PagedOptions::default()
            },
            EngineOptions::default(),
        );
        let batch = QueryBatch::random(500, 256, 11);
        let first = engine.execute_scheduled(&batch).expect("first");
        // A few in-batch duplicate pairs fold into hits; everything else
        // takes the kernel on a cold cache.
        assert!(first.cache_misses > 400);
        let second = engine.execute_scheduled(&batch).expect("second");
        assert!(second.cache_hits > 400, "repeat served from the pair cache");
        for (x, y) in first.values.iter().zip(&second.values) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let stats = engine.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries, 1000);
        // Cumulative page stats survive the per-batch snapshot/reset cycle.
        let first_page = first.page_cache.expect("paged");
        let second_page = second.page_cache.expect("paged");
        assert_eq!(
            stats.page_cache_misses,
            first_page.misses + second_page.misses
        );
        assert_eq!(
            stats.page_bytes_read,
            first_page.bytes_read + second_page.bytes_read
        );
        // The repeat batch paged almost nothing back in.
        assert!(second_page.bytes_read < first_page.bytes_read / 2);
    }

    #[test]
    fn a_pretripped_token_abandons_the_scheduled_batch() {
        use effres::CancelReason;
        let (path, _estimator) = temp_snapshot("sched16_cancel.snap");
        let engine = paged_engine(
            &path,
            &PagedOptions {
                columns_per_page: 4,
                cache_pages: 8,
                cache_shards: 2,
                ..PagedOptions::default()
            },
            EngineOptions {
                cache_capacity: 0,
                ..EngineOptions::default()
            },
        );
        let batch = QueryBatch::random(500, 256, 21);
        let cancel = Arc::new(CancelToken::unbounded());
        cancel.cancel(CancelReason::Disconnected);
        let abort = engine
            .execute_scheduled_with_cancel(&batch, &cancel)
            .unwrap_err();
        assert_eq!(
            abort.error,
            EffresError::DeadlineExceeded {
                reason: CancelReason::Disconnected
            }
        );
        assert_eq!(abort.abandoned_pairs, batch.len() as u64);
        // Nothing was pinned or leased: the full budget is still available.
        let admission = engine.admission_stats().expect("paged ledger");
        assert_eq!(admission.available, admission.budget);
        // The partial twin rejects whole too when nothing has run.
        assert!(matches!(
            engine.execute_scheduled_partial_with_cancel(&batch, &cancel),
            Err(EffresError::DeadlineExceeded { .. })
        ));
        // An untripped token executes normally, bit-identical.
        let live = Arc::new(CancelToken::unbounded());
        let reference = engine.execute_scheduled(&batch).expect("reference");
        let result = engine
            .execute_scheduled_with_cancel(&batch, &live)
            .expect("live batch");
        for (x, y) in reference.values.iter().zip(&result.values) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn brownout_trims_readahead_windows_but_not_values() {
        let (path, _estimator) = temp_snapshot("sched16_brownout.snap");
        let paged_options = PagedOptions {
            columns_per_page: 2,
            cache_pages: 16,
            cache_shards: 2,
            ..PagedOptions::default()
        };
        let options = || EngineOptions {
            cache_capacity: 0,
            parallel_threshold: usize::MAX,
            ..EngineOptions::default()
        };
        let normal = paged_engine(&path, &paged_options, options());
        let browned = paged_engine(&path, &paged_options, options());
        browned.set_brownout(true);
        assert!(browned.brownout_active());
        let batch = QueryBatch::random(2000, 256, 33);
        let a = normal.execute_scheduled(&batch).expect("normal");
        let b = browned.execute_scheduled(&batch).expect("brownout");
        // Brownout only reshapes the I/O plan — single-page readahead means
        // strictly more, smaller windows — while every value stays
        // bit-identical.
        for (x, y) in a.values.iter().zip(&b.values) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let (sa, sb) = (a.schedule.expect("normal"), b.schedule.expect("brownout"));
        assert!(
            sb.windows > sa.windows,
            "brownout must trim readahead: {} vs {}",
            sb.windows,
            sa.windows
        );
        // Clearing brownout restores the original plan.
        browned.set_brownout(false);
        let c = browned.execute_scheduled(&batch).expect("recovered");
        assert_eq!(c.schedule.expect("recovered").windows, sa.windows);
    }

    #[test]
    fn invalid_scheduled_batches_fail_before_any_work() {
        let (path, _estimator) = temp_snapshot("sched16_invalid.snap");
        let engine = paged_engine(&path, &PagedOptions::default(), EngineOptions::default());
        let before = engine.stats().queries;
        let batch = QueryBatch::from_pairs(vec![(0, 1), (2, 1_000_000)]);
        assert!(engine.execute_scheduled(&batch).is_err());
        assert_eq!(engine.stats().queries, before);
    }
}
