//! A sharded LRU cache for effective-resistance pair results.
//!
//! Query traffic on real graphs is heavily skewed — a small set of popular
//! node pairs dominates — so a bounded cache in front of the sparse kernel
//! pays for itself quickly. The cache is split into shards, each guarded by
//! its own mutex, so parallel batch workers rarely contend on the same lock.
//! Every shard is a classic intrusive-list LRU over a `Vec` slab (indices
//! instead of pointers keeps the code entirely safe).

use std::collections::HashMap;
use std::sync::Mutex;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    value: f64,
    prev: u32,
    next: u32,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, u32>,
    slab: Vec<Node>,
    head: u32,
    tail: u32,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, index: u32) {
        let node = self.slab[index as usize];
        match node.prev {
            NIL => self.head = node.next,
            prev => self.slab[prev as usize].next = node.next,
        }
        match node.next {
            NIL => self.tail = node.prev,
            next => self.slab[next as usize].prev = node.prev,
        }
    }

    fn push_front(&mut self, index: u32) {
        let old_head = self.head;
        {
            let node = &mut self.slab[index as usize];
            node.prev = NIL;
            node.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = index;
        }
        self.head = index;
        if self.tail == NIL {
            self.tail = index;
        }
    }

    fn get(&mut self, key: u64) -> Option<f64> {
        let index = *self.map.get(&key)?;
        if self.head != index {
            self.unlink(index);
            self.push_front(index);
        }
        Some(self.slab[index as usize].value)
    }

    fn insert(&mut self, key: u64, value: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&index) = self.map.get(&key) {
            self.slab[index as usize].value = value;
            if self.head != index {
                self.unlink(index);
                self.push_front(index);
            }
            return;
        }
        let index = if self.map.len() >= self.capacity {
            // Evict the least recently used entry and reuse its slot (the
            // slab never shrinks, so eviction is the only source of reuse).
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim as usize].key);
            victim
        } else {
            self.slab.push(Node {
                key: 0,
                value: 0.0,
                prev: NIL,
                next: NIL,
            });
            (self.slab.len() - 1) as u32
        };
        {
            let node = &mut self.slab[index as usize];
            node.key = key;
            node.value = value;
        }
        self.map.insert(key, index);
        self.push_front(index);
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A thread-safe LRU cache split into independently locked shards.
#[derive(Debug)]
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    mask: u64,
}

impl ShardedLru {
    /// A cache holding about `capacity` entries across `shards` shards.
    /// `shards` is rounded up to a power of two; each shard gets an equal
    /// slice of the capacity (at least one entry).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(shard_count).max(1);
        ShardedLru {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            mask: shard_count as u64 - 1,
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // SplitMix64 finalizer spreads adjacent keys across shards.
        let mut h = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        &self.shards[(h & self.mask) as usize]
    }

    /// Looks a key up, marking it most recently used.
    pub fn get(&self, key: u64) -> Option<f64> {
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
    }

    /// Inserts (or refreshes) a key, evicting the shard's LRU entry if full.
    pub fn insert(&self, key: u64, value: f64) {
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entry capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.len()
            * self
                .shards
                .first()
                .map(|s| s.lock().expect("cache shard poisoned").capacity)
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_and_update() {
        let cache = ShardedLru::new(64, 4);
        assert!(cache.get(1).is_none());
        cache.insert(1, 0.5);
        cache.insert(2, 1.5);
        assert_eq!(cache.get(1), Some(0.5));
        assert_eq!(cache.get(2), Some(1.5));
        cache.insert(1, 2.5);
        assert_eq!(cache.get(1), Some(2.5));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_is_lru_within_a_shard() {
        // One shard with capacity 2 makes the eviction order observable.
        let cache = ShardedLru::new(2, 1);
        cache.insert(1, 1.0);
        cache.insert(2, 2.0);
        assert_eq!(cache.get(1), Some(1.0)); // 1 is now most recent
        cache.insert(3, 3.0); // evicts 2
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.get(1), Some(1.0));
        assert_eq!(cache.get(3), Some(3.0));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn heavy_churn_keeps_size_bounded() {
        let cache = ShardedLru::new(128, 8);
        for i in 0..10_000u64 {
            cache.insert(i, i as f64);
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.capacity() >= 128);
        // The most recent keys should still be present in their shards.
        let recent_hits = (9_900..10_000u64)
            .filter(|&i| cache.get(i).is_some())
            .count();
        assert!(recent_hits > 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(ShardedLru::new(1024, 16));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        let key = (i * 31 + t) % 2048;
                        if let Some(v) = cache.get(key) {
                            assert_eq!(v, key as f64);
                        } else {
                            cache.insert(key, key as f64);
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= cache.capacity());
    }
}
