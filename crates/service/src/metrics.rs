//! Streaming latency metrics for long-lived serving.
//!
//! A server answering millions of requests cannot keep per-request samples;
//! [`LatencyHistogram`] records each request into a fixed array of
//! log-spaced buckets instead — lock-free (one relaxed atomic increment per
//! record), constant memory, and accurate to one sub-bucket (≲ 3% relative
//! error) across the whole nanosecond-to-minutes range. Quantiles (p50,
//! p95, p99), the mean and the maximum are read back from a point-in-time
//! [`HistogramSnapshot`].
//!
//! The bucket layout is the classic log-linear one (HdrHistogram's idea,
//! sized down): values below [`SUBBUCKETS`] microseconds get exact
//! single-microsecond buckets; above that, each power-of-two octave splits
//! into [`SUBBUCKETS`] linear sub-buckets, so resolution stays proportional
//! to magnitude.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Smoothing factor of [`ServiceTimeEwma`]: each new batch contributes 20%
/// of the estimate, so the figure tracks regime changes (cold vs warm page
/// cache) within a handful of batches without whipsawing on one outlier.
const EWMA_ALPHA: f64 = 0.2;

/// An exponentially weighted moving average of per-pair service time, used
/// by admission control to reject *doomed* requests — ones whose deadline is
/// closer than the time they would take to serve — before they consume a
/// queue slot.
///
/// The state is a single `f64` (nanoseconds per pair) packed into an
/// `AtomicU64`, updated with a compare-exchange loop: recording is lock-free
/// and reading is one relaxed load, so both sit comfortably on the batch
/// hot path. Zero means "no completed batch yet", in which case
/// [`estimate`](Self::estimate) returns `None` and admission waves the
/// request through — the estimator only ever *sheds* on evidence.
#[derive(Debug, Default)]
pub struct ServiceTimeEwma {
    /// `f64` nanos-per-pair as bits; `0` (== `0.0f64.to_bits()`) is "empty".
    bits: AtomicU64,
}

impl ServiceTimeEwma {
    /// An estimator with no samples.
    pub fn new() -> ServiceTimeEwma {
        ServiceTimeEwma::default()
    }

    /// Folds one completed batch (`pairs` queries served in `elapsed`) into
    /// the average. Batches with zero pairs are ignored.
    pub fn record(&self, pairs: usize, elapsed: Duration) {
        if pairs == 0 {
            return;
        }
        let sample = elapsed.as_nanos() as f64 / pairs as f64;
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(current);
            let next = if old == 0.0 {
                sample
            } else {
                old + EWMA_ALPHA * (sample - old)
            };
            match self.bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Smoothed service time per pair; `None` until the first batch lands.
    pub fn nanos_per_pair(&self) -> Option<f64> {
        let nanos = f64::from_bits(self.bits.load(Ordering::Relaxed));
        (nanos > 0.0).then_some(nanos)
    }

    /// Estimated wall time to serve a batch of `pairs` queries; `None`
    /// until the first batch lands.
    pub fn estimate(&self, pairs: usize) -> Option<Duration> {
        self.nanos_per_pair()
            .map(|nanos| Duration::from_nanos((nanos * pairs as f64).ceil() as u64))
    }
}

/// Linear sub-buckets per octave (and the width of the exact low range).
pub const SUBBUCKETS: u64 = 32;
const K: u32 = SUBBUCKETS.trailing_zeros(); // log2(SUBBUCKETS)
/// Bucket count covering every `u64` microsecond value: the exact range
/// plus `SUBBUCKETS` per octave from `2^K` through `2^63`.
const BUCKETS: usize = ((64 - K as usize) + 1) * SUBBUCKETS as usize;

fn bucket_index(micros: u64) -> usize {
    if micros < SUBBUCKETS {
        return micros as usize;
    }
    let e = 63 - micros.leading_zeros(); // 2^e <= micros, e >= K
    let sub = ((micros >> (e - K)) - SUBBUCKETS) as usize; // 0..SUBBUCKETS
    ((e - K + 1) as usize) * SUBBUCKETS as usize + sub
}

/// Inclusive lower bound of a bucket (the inverse of [`bucket_index`]);
/// saturates at `u64::MAX` for the index one past the top bucket.
fn bucket_lower(index: usize) -> u64 {
    let m = SUBBUCKETS as usize;
    if index < m {
        return index as u64;
    }
    let e = (index / m - 1) as u32 + K;
    if e >= 64 {
        return u64::MAX;
    }
    (1u64 << e) + (((index % m) as u64) << (e - K))
}

/// A fixed-size, thread-safe, log-bucketed histogram of request latencies
/// in microseconds. Recording is one relaxed atomic increment; reading is a
/// [`LatencyHistogram::snapshot`].
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Records one request latency.
    pub fn record(&self, latency: Duration) {
        self.record_micros(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one request latency given in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Requests recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters, for quantile queries.
    /// (Concurrent recording keeps the copy approximate by at most the
    /// requests in flight during the read — fine for reporting.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Requests recorded.
    pub count: u64,
    /// Sum of all recorded latencies, in microseconds.
    pub sum_micros: u64,
    /// Largest recorded latency, in microseconds.
    pub max_micros: u64,
}

impl HistogramSnapshot {
    /// The latency (microseconds) at or below which at least `q` of the
    /// recorded requests fall (`q` in `[0, 1]`); reported as the upper
    /// bound of the bucket the quantile lands in, so the figure is
    /// conservative by at most one sub-bucket. Zero for an empty histogram.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                // Inclusive upper bound of this bucket, clamped to the
                // actual maximum so outliers don't inflate the top bucket.
                return (bucket_lower(index + 1) - 1).min(self.max_micros);
            }
        }
        self.max_micros
    }

    /// Mean recorded latency, in microseconds.
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_micros as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_lower_bound_are_inverse_and_monotone() {
        let mut last = 0usize;
        for micros in [
            0u64,
            1,
            5,
            31,
            32,
            33,
            63,
            64,
            100,
            1000,
            65_535,
            1 << 40,
            u64::MAX,
        ] {
            let index = bucket_index(micros);
            assert!(bucket_lower(index) <= micros, "{micros}");
            assert!(
                index + 1 >= BUCKETS || micros < bucket_lower(index + 1),
                "{micros} not below next bucket"
            );
            assert!(index >= last || micros < 32, "bucket order at {micros}");
            last = index;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn exact_below_subbuckets_and_within_3_percent_above() {
        let hist = LatencyHistogram::new();
        for micros in 0..SUBBUCKETS {
            assert_eq!(bucket_lower(bucket_index(micros)), micros);
        }
        for micros in [100u64, 1_000, 10_000, 123_456, 9_999_999] {
            hist.record_micros(micros);
            let snap = hist.snapshot();
            let p100 = snap.quantile_micros(1.0);
            assert!(p100 >= micros, "quantile below sample: {p100} < {micros}");
            assert!(
                (p100 - micros) as f64 <= micros as f64 / SUBBUCKETS as f64 + 1.0,
                "error too large: {p100} vs {micros}"
            );
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let hist = LatencyHistogram::new();
        // 90 fast requests at 10µs, 9 at 20µs, 1 slow outlier.
        for _ in 0..90 {
            hist.record_micros(10);
        }
        for _ in 0..9 {
            hist.record_micros(20);
        }
        hist.record_micros(5_000);
        let snap = hist.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.quantile_micros(0.5), 10);
        assert_eq!(snap.quantile_micros(0.9), 10);
        assert_eq!(snap.quantile_micros(0.95), 20);
        let p100 = snap.quantile_micros(1.0);
        assert!((5_000..=5_000 + 5_000 / SUBBUCKETS + 1).contains(&p100));
        assert_eq!(snap.max_micros, 5_000);
        assert!((snap.mean_micros() - 60.8).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile_micros(0.99), 0);
        assert_eq!(snap.mean_micros(), 0.0);
    }

    #[test]
    fn service_time_ewma_starts_empty_and_converges() {
        let ewma = ServiceTimeEwma::new();
        assert_eq!(ewma.estimate(100), None);
        ewma.record(0, Duration::from_secs(1)); // ignored: no pairs
        assert_eq!(ewma.estimate(100), None);
        // First sample seeds the average exactly: 1ms / 10 pairs = 100µs.
        ewma.record(10, Duration::from_millis(1));
        assert_eq!(ewma.estimate(10), Some(Duration::from_millis(1)));
        // Repeated identical samples keep it there.
        for _ in 0..20 {
            ewma.record(10, Duration::from_millis(1));
        }
        assert_eq!(ewma.estimate(10), Some(Duration::from_millis(1)));
        // A regime change (10× slower) pulls the estimate most of the way
        // there within a handful of batches.
        for _ in 0..20 {
            ewma.record(10, Duration::from_millis(10));
        }
        let est = ewma.estimate(10).expect("seeded").as_secs_f64();
        assert!(est > 0.009 && est < 0.0101, "estimate {est}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let hist = std::sync::Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        hist.record_micros(t * 1000 + i % 100);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("recorder");
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 40_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 40_000);
    }
}
