//! Chaos tests of the serving layer: scheduled paged batches over a store
//! with seeded injected faults, partial-results degradation under
//! persistent corruption, and bounded-admission load shedding.
//!
//! The acceptance bar: under a seeded [`FaultPlan`] with a ≥1% transient
//! fault rate, a 20k-query scheduled batch must be **100% bit-identical**
//! to its fault-free run (with the recovery observable in the retry
//! counters); permanent corruption must fail exactly the queries that
//! touch it; and an overloaded engine must answer [`EffresError::Busy`]
//! within the configured lease timeout instead of queueing forever.

use effres::{BusyReason, EffectiveResistanceEstimator, EffresConfig, EffresError};
use effres_graph::generators;
use effres_io::paged::{open_paged, open_paged_with_faults, PagedOptions, PagedSnapshot};
use effres_io::snapshot::save_snapshot;
use effres_io::{FaultPlan, RetryPolicy};
use effres_service::{EngineOptions, QueryBatch, QueryEngine};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One estimator for the whole suite, persisted once: a 16×16 grid (256
/// nodes) is big enough that a 20k-query batch sweeps many pages.
fn snapshot_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let graph = generators::grid_2d(16, 16, 0.5, 2.0, 11).expect("generator");
        let estimator =
            EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build");
        let dir = std::env::temp_dir().join("effres-chaos-service");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("chaos-{}.snap", std::process::id()));
        save_snapshot(&path, &estimator, None).expect("save");
        path
    })
}

/// Small pages, small cache: the batch cannot hide in residency, so the
/// fault plan sees thousands of read attempts.
fn churny_options() -> PagedOptions {
    PagedOptions {
        columns_per_page: 2,
        cache_pages: 12,
        cache_shards: 1,
        ..PagedOptions::default()
    }
}

fn engine_over(paged: PagedSnapshot, options: EngineOptions) -> QueryEngine<PagedSnapshot> {
    QueryEngine::new(Arc::new(paged), options)
}

fn plain_options() -> EngineOptions {
    EngineOptions {
        cache_capacity: 0,
        threads: 2,
        parallel_threshold: 8,
        ..EngineOptions::default()
    }
}

#[test]
fn scheduled_batch_is_bit_identical_under_transient_faults() {
    let path = snapshot_path();
    let batch = QueryBatch::random(20_000, 256, 0xC4A05);

    let clean = engine_over(
        open_paged(path, &churny_options()).expect("fault-free open"),
        plain_options(),
    );
    let reference = clean.execute_scheduled(&batch).expect("fault-free batch");

    // ~2% of read attempts fault (1.5% I/O errors + 0.5% short reads):
    // bounded retry must absorb every one without changing a single bit.
    let plan = FaultPlan::new(0xBADD15C)
        .with_transient_errors(15_000)
        .with_short_reads(5_000);
    let faulted = engine_over(
        open_paged_with_faults(
            path,
            &churny_options().with_retry(RetryPolicy {
                max_retries: 3,
                backoff: Duration::from_micros(1),
            }),
            plan,
        )
        .expect("faulted open"),
        plain_options(),
    );
    let survived = faulted.execute_scheduled(&batch).expect("faulted batch");

    assert_eq!(reference.values.len(), survived.values.len());
    let mismatches = reference
        .values
        .iter()
        .zip(&survived.values)
        .filter(|(a, b)| a.to_bits() != b.to_bits())
        .count();
    assert_eq!(mismatches, 0, "all 20k answers must be bit-identical");

    let stats = faulted.stats();
    assert!(
        stats.page_retries > 0,
        "the recovery must be observable in the engine's stats: {stats:?}"
    );
    assert!(stats.page_faulted_reads >= stats.page_retries);
    // And the fault-free run worked no harder than it had to.
    assert_eq!(clean.stats().page_retries, 0);
}

#[test]
fn partial_mode_fails_only_the_queries_touching_the_rotten_page() {
    let path = snapshot_path();
    let probe = open_paged(path, &churny_options()).expect("probe open");
    let victim = 101;
    let offset = probe.store.column_value_byte_offset(victim) + 6;
    let poisoned_page = probe.store.page_of_column(victim);
    let columns_per_page = probe.store.columns_per_page();
    // Node ids map onto columns through the fill-reducing permutation: a
    // query touches the rotten page iff a *permuted* endpoint lands on it.
    let permutation = probe.permutation.clone();
    let on_rotten_page =
        move |node: usize| permutation.new(node) / columns_per_page == poisoned_page;

    let clean = engine_over(probe, plain_options());
    let batch = QueryBatch::random(4_000, 256, 0x5EED);
    let reference = clean.execute_scheduled(&batch).expect("fault-free batch");

    let plan = FaultPlan::new(0).poison(offset, 2);
    let faulted = engine_over(
        open_paged_with_faults(
            path,
            &churny_options().with_retry(RetryPolicy {
                max_retries: 2,
                backoff: Duration::from_micros(1),
            }),
            plan,
        )
        .expect("faulted open"),
        plain_options(),
    );

    // The all-or-nothing path refuses the whole batch (it touches rot)...
    let all_or_nothing = faulted.execute_scheduled(&batch);
    assert!(
        matches!(all_or_nothing, Err(EffresError::StoreFailure { .. })),
        "a batch touching a rotten page must fail typed: {all_or_nothing:?}"
    );

    // ...while the partial path degrades exactly the touching queries.
    let partial = faulted
        .execute_scheduled_partial(&batch)
        .expect("partial mode never sheds without admission bounds");
    assert_eq!(partial.statuses.len(), batch.len());
    let mut failed = 0usize;
    for ((&(p, q), status), reference_value) in batch
        .pairs()
        .iter()
        .zip(&partial.statuses)
        .zip(&reference.values)
    {
        // A self-pair is answered 0.0 without touching the store, so rot
        // on its page cannot fail it.
        let touches = p != q && (on_rotten_page(p) || on_rotten_page(q));
        match status {
            Ok(value) => {
                assert!(
                    !touches,
                    "({p}, {q}) touches the rotten page and must not serve"
                );
                assert_eq!(
                    value.to_bits(),
                    reference_value.to_bits(),
                    "({p}, {q}) succeeded and must be bit-identical"
                );
            }
            Err(EffresError::StoreFailure { .. }) => {
                failed += 1;
                assert!(
                    touches,
                    "({p}, {q}) is off the rotten page and must not fail"
                );
            }
            Err(other) => panic!("unexpected failure for ({p}, {q}): {other}"),
        }
    }
    assert!(
        failed > 0,
        "a 4k random batch over 256 nodes hits every page"
    );
    assert_eq!(partial.failures(), failed);
    assert!(!partial.is_complete());
}

#[test]
fn overloaded_engine_sheds_busy_within_the_lease_timeout() {
    let path = snapshot_path();
    // Deep queue bound of zero: while one scheduled batch holds the pin
    // lease, any other batch is shed immediately instead of queueing.
    let timeout = Duration::from_millis(150);
    let options = EngineOptions {
        admission_queue_depth: Some(0),
        admission_timeout: timeout,
        ..plain_options()
    };
    // A tiny cache keeps the holder's lease at the full budget and its
    // drain slow enough (page churn on every window) to observe overlap.
    let store_options = PagedOptions {
        columns_per_page: 1,
        cache_pages: 6,
        cache_shards: 1,
        ..PagedOptions::default()
    };
    let engine = Arc::new(engine_over(
        open_paged(path, &store_options).expect("open"),
        options,
    ));
    let budget = engine
        .admission_stats()
        .expect("paged engines have a ledger")
        .budget;

    let holder = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let batch = QueryBatch::random(60_000, 256, 0xB16);
            engine.execute_scheduled(&batch).expect("holder batch")
        })
    };
    // Wait until the holder's lease is actually granted (its pins are
    // carved out of the budget), then race a second batch against it.
    let waited = Instant::now();
    while engine.admission_stats().expect("ledger").available >= budget {
        assert!(
            waited.elapsed() < Duration::from_secs(20),
            "holder never took its lease"
        );
        std::thread::yield_now();
    }

    let mut shed = 0usize;
    let mut slowest = Duration::ZERO;
    while !holder.is_finished() {
        std::thread::sleep(Duration::from_millis(2));
        let asked = Instant::now();
        match engine.execute_scheduled(&QueryBatch::random(2_000, 256, 0x5ED)) {
            Err(EffresError::Busy { reason }) => {
                shed += 1;
                slowest = slowest.max(asked.elapsed());
                assert_eq!(reason, BusyReason::QueueFull, "depth 0 sheds immediately");
            }
            Ok(_) => break, // the holder drained; contention is over
            Err(other) => panic!("overload must surface as Busy, got {other}"),
        }
    }
    holder.join().expect("holder thread");
    assert!(
        shed > 0,
        "at least one batch must be shed while the holder runs"
    );
    // "Within the lease timeout": immediate shedding does not even wait it.
    assert!(
        slowest < timeout + Duration::from_millis(100),
        "shedding took {slowest:?}, beyond the {timeout:?} lease timeout"
    );
}

#[test]
fn queued_batch_times_out_with_a_typed_busy() {
    let path = snapshot_path();
    let timeout = Duration::from_millis(100);
    let options = EngineOptions {
        admission_queue_depth: Some(4),
        admission_timeout: timeout,
        ..plain_options()
    };
    let store_options = PagedOptions {
        columns_per_page: 1,
        cache_pages: 6,
        cache_shards: 1,
        ..PagedOptions::default()
    };
    let engine = Arc::new(engine_over(
        open_paged(path, &store_options).expect("open"),
        options,
    ));
    let budget = engine.admission_stats().expect("ledger").budget;

    let holder = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let batch = QueryBatch::random(60_000, 256, 0xB17);
            engine.execute_scheduled(&batch).expect("holder batch")
        })
    };
    let waited = Instant::now();
    while engine.admission_stats().expect("ledger").available >= budget {
        assert!(
            waited.elapsed() < Duration::from_secs(20),
            "holder never took its lease"
        );
        std::thread::yield_now();
    }

    // With queue room, the second batch queues — and must give up with a
    // typed timeout rather than waiting for the holder indefinitely.
    let asked = Instant::now();
    match engine.execute_scheduled_partial(&QueryBatch::random(2_000, 256, 0x5ED)) {
        Err(EffresError::Busy { reason }) => {
            assert_eq!(reason, BusyReason::LeaseTimeout);
            let elapsed = asked.elapsed();
            assert!(
                elapsed >= timeout,
                "a lease timeout cannot fire early: {elapsed:?}"
            );
            assert!(
                elapsed < timeout + Duration::from_secs(2),
                "shed far too late: {elapsed:?}"
            );
            let admission = engine.admission_stats().expect("ledger");
            assert!(admission.shed_timeout > 0, "the shed is counted");
        }
        Ok(_) => {
            // The holder finished within the timeout window — possible on a
            // very fast machine; the deterministic coverage of the timeout
            // path lives in the admission unit tests.
        }
        Err(other) => panic!("expected Busy, got {other}"),
    }
    holder.join().expect("holder thread");
}
