//! Cross-batch admission control, end to end: concurrent scheduled batches
//! on one shared paged engine must never pin more pages than the cache
//! budget, and splitting their pin leases must not change a single bit of
//! the answers.

use effres::{EffectiveResistanceEstimator, EffresConfig};
use effres_graph::generators;
use effres_io::paged::{open_paged, PagedOptions, PagedSnapshot};
use effres_io::snapshot::save_snapshot;
use effres_service::{EngineOptions, QueryBatch, QueryEngine};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_snapshot(name: &str) -> PathBuf {
    let graph = generators::grid_2d(24, 24, 0.5, 2.0, 9).expect("generator");
    let estimator =
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build");
    let dir = std::env::temp_dir().join("effres-admission-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    save_snapshot(&path, &estimator, None).expect("save");
    path
}

fn engine_over(paged: &Arc<PagedSnapshot>, threads: usize) -> QueryEngine<PagedSnapshot> {
    // Pair cache off so every run takes the kernel path and the comparison
    // below is about scheduling, not caching.
    QueryEngine::new(
        Arc::clone(paged),
        EngineOptions {
            cache_capacity: 0,
            threads,
            parallel_threshold: 8,
            ..EngineOptions::default()
        },
    )
}

/// The acceptance test of the admission ledger: two large batches race on a
/// page cache far too small for either, and the pinned-page high-water mark
/// (tracked by the store itself, underneath the ledger) must stay within
/// the ledger's budget — concurrency is allowed to *split* the budget, not
/// to add a second one.
#[test]
fn concurrent_scheduled_batches_never_over_pin_the_page_cache() {
    let path = temp_snapshot("overpin.snap");
    let paged_options = PagedOptions {
        columns_per_page: 2,
        cache_pages: 6,
        cache_shards: 1,
        ..PagedOptions::default()
    };
    let batch_a = QueryBatch::random(3000, 24 * 24, 11);
    let batch_b = QueryBatch::random(3000, 24 * 24, 22);

    // Solo reference runs on a private engine each: the values any correct
    // concurrent execution must reproduce exactly.
    let solo = Arc::new(open_paged(&path, &paged_options).expect("open"));
    let reference_a = engine_over(&solo, 2)
        .execute_scheduled(&batch_a)
        .expect("solo a");
    let reference_b = engine_over(&solo, 2)
        .execute_scheduled(&batch_b)
        .expect("solo b");

    let paged = Arc::new(open_paged(&path, &paged_options).expect("open"));
    let budget = paged.store.cache_capacity_pages().max(2);
    let engine = engine_over(&paged, 2);
    let (result_a, result_b) = std::thread::scope(|scope| {
        let racer = scope.spawn(|| engine.execute_scheduled(&batch_a).expect("racing a"));
        let result_b = engine.execute_scheduled(&batch_b).expect("racing b");
        (racer.join().expect("join"), result_b)
    });

    assert!(
        paged.store.pinned_pages_high_water() <= budget,
        "pinned {} pages concurrently on a budget of {budget}",
        paged.store.pinned_pages_high_water()
    );
    assert_eq!(
        paged.store.pinned_pages_now(),
        0,
        "all pins released once the batches returned"
    );
    // The ledger really was exercised by both batches.
    let admission = engine
        .admission_stats()
        .expect("paged engines have a ledger");
    assert_eq!(admission.budget, budget);
    assert_eq!(admission.available, budget);
    assert!(admission.leases >= 2, "both batches leased capacity");
    assert_eq!(admission.waiting, 0);

    for (slot, (solo_value, raced_value)) in
        reference_a.values.iter().zip(&result_a.values).enumerate()
    {
        assert_eq!(
            solo_value.to_bits(),
            raced_value.to_bits(),
            "batch a slot {slot} {:?}",
            batch_a.pairs()[slot]
        );
    }
    for (slot, (solo_value, raced_value)) in
        reference_b.values.iter().zip(&result_b.values).enumerate()
    {
        assert_eq!(
            solo_value.to_bits(),
            raced_value.to_bits(),
            "batch b slot {slot} {:?}",
            batch_b.pairs()[slot]
        );
    }
}

/// Many small batches from many threads: the FIFO queue must neither
/// deadlock nor leak capacity, and the ledger must end fully replenished.
#[test]
fn admission_capacity_is_fully_returned_after_a_storm() {
    let path = temp_snapshot("storm.snap");
    let paged = Arc::new(
        open_paged(
            &path,
            &PagedOptions {
                columns_per_page: 4,
                cache_pages: 4,
                cache_shards: 1,
                ..PagedOptions::default()
            },
        )
        .expect("open"),
    );
    let engine = engine_over(&paged, 2);
    let budget = paged.store.cache_capacity_pages().max(2);
    std::thread::scope(|scope| {
        for seed in 0..6u64 {
            let engine = &engine;
            scope.spawn(move || {
                for round in 0..4 {
                    let batch = QueryBatch::random(240, 24 * 24, seed * 101 + round);
                    engine.execute_scheduled(&batch).expect("scheduled");
                }
            });
        }
    });
    assert!(paged.store.pinned_pages_high_water() <= budget);
    assert_eq!(paged.store.pinned_pages_now(), 0);
    let admission = engine.admission_stats().expect("ledger");
    assert_eq!(admission.available, admission.budget);
    assert_eq!(admission.waiting, 0);
}
