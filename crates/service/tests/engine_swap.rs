//! Engine-swap tests: the hot-reload pattern pins the serving engine behind
//! an epoch-versioned `Arc`, so batches in flight when the swap happens
//! finish on the old engine — its page cache and buffer pools included —
//! and the old engine (buffers and all) is released exactly when the last
//! in-flight batch lets go. Under concurrent churn there must be no failed
//! batch, no answer mixing epochs, and no leaked reference afterwards.

use effres::{EffectiveResistanceEstimator, EffresConfig};
use effres_graph::generators;
use effres_io::paged::{open_paged, PagedOptions, PagedSnapshot};
use effres_io::snapshot::save_snapshot;
use effres_service::{EngineOptions, QueryBatch, QueryEngine};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Builds a 10×10 grid estimator with seed-dependent weights and snapshots
/// it to a temp file, so the two swap sides hold genuinely different data.
fn snapshot_file(name: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("effres-engine-swap");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let graph = generators::grid_2d(10, 10, 0.5, 2.0, seed).expect("generator");
    let estimator =
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build");
    save_snapshot(&path, &estimator, None).expect("save");
    path
}

/// A deliberately tiny page cache: every batch churns pages through the
/// buffer pool instead of serving from a warm cache.
fn churny_engine(path: &PathBuf) -> Arc<QueryEngine<PagedSnapshot>> {
    let options = PagedOptions {
        columns_per_page: 4,
        cache_pages: 4,
        cache_shards: 1,
        ..PagedOptions::default()
    };
    let paged = open_paged(path, &options).expect("open paged");
    Arc::new(QueryEngine::new(
        Arc::new(paged),
        EngineOptions {
            cache_capacity: 0,
            ..EngineOptions::default()
        },
    ))
}

fn value_bits(engine: &QueryEngine<PagedSnapshot>, batch: &QueryBatch) -> Vec<u64> {
    engine
        .execute(batch)
        .expect("batch")
        .values
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn buffers_survive_an_engine_swap_under_concurrent_churn() {
    let engine_a = churny_engine(&snapshot_file("swap_a.snap", 5));
    let engine_b = churny_engine(&snapshot_file("swap_b.snap", 23));
    let node_count = engine_a.backend().node_count();
    assert_eq!(node_count, engine_b.backend().node_count());
    let batch = QueryBatch::random(192, node_count, 7);

    // Solo references: any churn batch must match one of these exactly —
    // an answer mixing the two engines would match neither.
    let reference_a = value_bits(&engine_a, &batch);
    let reference_b = value_bits(&engine_b, &batch);
    assert_ne!(reference_a, reference_b, "the swap sides must differ");

    let current: Arc<RwLock<Arc<QueryEngine<PagedSnapshot>>>> =
        Arc::new(RwLock::new(Arc::clone(&engine_a)));
    let stop = Arc::new(AtomicBool::new(false));
    let mut churners = Vec::new();
    for _ in 0..4 {
        let current = Arc::clone(&current);
        let stop = Arc::clone(&stop);
        let engine_a = Arc::clone(&engine_a);
        let batch = batch.clone();
        let reference_a = reference_a.clone();
        let reference_b = reference_b.clone();
        churners.push(std::thread::spawn(move || -> (u64, u64) {
            let (mut on_a, mut on_b) = (0u64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                // Pin once per batch, exactly as a server request handler
                // pins the epoch: the swap must not affect this batch.
                let pinned = Arc::clone(&current.read().expect("swap lock"));
                let bits = value_bits(&pinned, &batch);
                if Arc::ptr_eq(&pinned, &engine_a) {
                    assert_eq!(bits, reference_a, "old-epoch batch must stay old-epoch");
                    on_a += 1;
                } else {
                    assert_eq!(bits, reference_b, "new-epoch batch answers new data");
                    on_b += 1;
                }
            }
            (on_a, on_b)
        }));
    }

    // Let churn establish on A, swap to B mid-flight, let churn continue.
    std::thread::sleep(Duration::from_millis(100));
    *current.write().expect("swap lock") = Arc::clone(&engine_b);
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);

    let (mut total_a, mut total_b) = (0u64, 0u64);
    for churner in churners {
        let (on_a, on_b) = churner.join().expect("no churner may panic");
        total_a += on_a;
        total_b += on_b;
    }
    assert!(total_a > 0, "some batches must have run before the swap");
    assert!(total_b > 0, "some batches must have run after the swap");

    // Leak check: once the churners and this test drop their handles, no
    // hidden reference (leaked page lease, parked buffer, stale cache
    // entry) may keep the old engine alive.
    let weak_a = Arc::downgrade(&engine_a);
    drop(engine_a);
    assert!(
        weak_a.upgrade().is_none(),
        "the swapped-out engine must drop with its last user"
    );
}
