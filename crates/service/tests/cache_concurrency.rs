//! The sharded LRU result cache under concurrent mixed traffic: updates are
//! never lost or torn, eviction never corrupts surviving entries, and the
//! engine's hit/miss accounting stays consistent while many threads share
//! one cache.

use effres::{EffectiveResistanceEstimator, EffresConfig};
use effres_graph::generators;
use effres_service::{EngineOptions, QueryBatch, QueryEngine, ShardedLru};
use std::sync::Arc;

/// The canonical value for a key — any other observed value is a lost or
/// torn update.
fn value_of(key: u64) -> f64 {
    key as f64 * 1.5 + 0.25
}

#[test]
fn mixed_readers_and_writers_never_observe_a_foreign_value() {
    let cache = Arc::new(ShardedLru::new(256, 8));
    std::thread::scope(|scope| {
        // Writers insert the canonical value of each key, re-inserting on a
        // rotating schedule so refresh and eviction both happen constantly.
        for writer in 0..4u64 {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for i in 0..20_000u64 {
                    let key = (i * 13 + writer * 7) % 1024;
                    cache.insert(key, value_of(key));
                }
            });
        }
        // Readers race the writers; a key is allowed to be absent (evicted)
        // but never wrong.
        for reader in 0..4u64 {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for i in 0..20_000u64 {
                    let key = (i * 29 + reader * 3) % 1024;
                    if let Some(found) = cache.get(key) {
                        assert_eq!(
                            found.to_bits(),
                            value_of(key).to_bits(),
                            "key {key} returned a foreign value"
                        );
                    }
                }
            });
        }
    });
    assert!(cache.len() <= cache.capacity());
}

#[test]
fn eviction_under_concurrency_leaves_only_correct_entries() {
    // Tiny capacity, huge key space: almost every insert evicts. Whatever
    // survives must still map to its own value, and the cache must stay
    // within capacity.
    let cache = Arc::new(ShardedLru::new(16, 2));
    std::thread::scope(|scope| {
        for thread in 0..6u64 {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for i in 0..30_000u64 {
                    let key = i * 6 + thread; // disjoint per-thread key streams
                    cache.insert(key, value_of(key));
                    if let Some(found) = cache.get(key) {
                        assert_eq!(found.to_bits(), value_of(key).to_bits());
                    }
                }
            });
        }
    });
    assert!(cache.len() <= cache.capacity());
    for key in 0..200_000u64 {
        if let Some(found) = cache.get(key) {
            assert_eq!(
                found.to_bits(),
                value_of(key).to_bits(),
                "surviving key {key} was corrupted by eviction churn"
            );
        }
    }
}

/// Engine-level accounting: with the pair cache on and many concurrent
/// batches full of repeated pairs, every query must be counted exactly once
/// as a hit or a miss, and cached answers must be bit-identical to the
/// kernel's (a stale or torn cache entry would break the comparison).
#[test]
fn concurrent_batches_keep_hit_miss_accounting_and_values_exact() {
    let graph = generators::grid_2d(12, 12, 0.5, 2.0, 3).expect("generator");
    let estimator = Arc::new(
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build"),
    );
    let cached = QueryEngine::new(
        Arc::clone(&estimator),
        EngineOptions {
            cache_capacity: 64, // far fewer than the distinct pairs: eviction is constant
            cache_shards: 4,
            threads: 4,
            parallel_threshold: 8,
            ..EngineOptions::default()
        },
    );
    let uncached = QueryEngine::new(
        Arc::clone(&estimator),
        EngineOptions {
            cache_capacity: 0,
            ..EngineOptions::default()
        },
    );

    let batches: Vec<QueryBatch> = (0..8)
        .map(|seed| QueryBatch::random(1500, 144, seed / 2)) // paired seeds: heavy repeats
        .collect();
    let expected_queries: u64 = batches.iter().map(|b| b.len() as u64).sum();
    // R(p, p) = 0 short-circuits before the cache, so self-pairs are counted
    // as queries but as neither hits nor misses.
    let self_pairs: u64 = batches
        .iter()
        .flat_map(|b| b.pairs())
        .filter(|(p, q)| p == q)
        .count() as u64;

    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .iter()
            .map(|batch| scope.spawn(|| cached.execute(batch).expect("batch")))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("join"))
            .collect::<Vec<_>>()
    });

    for (batch, result) in batches.iter().zip(&results) {
        let reference = uncached.execute(batch).expect("reference");
        for (slot, (cached_value, reference_value)) in
            result.values.iter().zip(&reference.values).enumerate()
        {
            assert_eq!(
                cached_value.to_bits(),
                reference_value.to_bits(),
                "slot {slot} {:?} served a stale or torn cache entry",
                batch.pairs()[slot]
            );
        }
    }

    let stats = cached.stats();
    assert_eq!(stats.queries, expected_queries);
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        expected_queries - self_pairs,
        "every distinct-endpoint query is exactly one hit or one miss"
    );
    assert!(stats.cache_hits > 0, "repeated pairs must hit");
    assert!(stats.cache_entries <= stats.cache_capacity);

    // The snapshot/reset path must hand the whole interval out exactly once.
    let drained = cached.take_service_stats();
    assert_eq!(drained.queries, expected_queries);
    assert_eq!(
        drained.cache_hits + drained.cache_misses,
        expected_queries - self_pairs
    );
    let after = cached.take_service_stats();
    assert_eq!(after.queries, 0, "second drain sees an empty interval");
    assert_eq!(
        cached.stats().queries,
        expected_queries,
        "cumulative stats keep the drained history"
    );
}
