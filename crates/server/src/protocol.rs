//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — is one **frame**: a little-endian
//! `u32` payload length followed by the payload, whose first byte is the
//! opcode. Requests and their responses pair up one-to-one on a connection
//! (the protocol is strictly request/response; pipelining works because the
//! server answers in order, but nothing requires it). All integers are
//! little-endian; node ids are the engine's **dense** ids in
//! `0..node_count` (the `HELLO` response carries `node_count`, so a client
//! can generate valid ids without knowing the dataset's label space).
//!
//! | request | body | response | body |
//! |---|---|---|---|
//! | [`OP_HELLO`] | — | [`OP_HELLO_OK`] | `u64 node_count, u8 backend (0 resident / 1 paged), u32 snapshot_version (0 = built in memory)` |
//! | [`OP_QUERY`] | `u64 p, u64 q` | [`OP_QUERY_OK`] | `f64 resistance` |
//! | [`OP_BATCH`] | `u32 count, count × (u64 p, u64 q)` | [`OP_BATCH_OK`] | `u32 count, count × f64` |
//! | [`OP_BATCH_PARTIAL`] | `u32 count, count × (u64 p, u64 q)` | [`OP_BATCH_PARTIAL_OK`] | `u32 count, u32 failed, count × u8 status, count × f64, UTF-8 first-failure message` |
//! | [`OP_BATCH_DEADLINE`] | `u32 deadline_ms, u32 count, count × (u64 p, u64 q)` | [`OP_BATCH_OK`] | as `OP_BATCH` (may instead draw [`OP_BATCH_PARTIAL_OK`] under brownout, or [`OP_DEADLINE`]) |
//! | [`OP_BATCH_PARTIAL_DEADLINE`] | `u32 deadline_ms, u32 count, count × (u64 p, u64 q)` | [`OP_BATCH_PARTIAL_OK`] | as `OP_BATCH_PARTIAL` (may instead draw [`OP_DEADLINE`]) |
//! | [`OP_PING`] | — | [`OP_PING_OK`] | `u8 backend (0 resident / 1 paged), u64 node_count, f64 uptime_secs, u64 epoch, u8 health (0 ok / 1 degraded / 2 draining), u8 brownout (0 off / 1 on), UTF-8 snapshot path (may be empty)` |
//! | [`OP_STATS`] | — | [`OP_STATS_OK`] | UTF-8 JSON (see [`crate::server`]) |
//! | [`OP_SHUTDOWN`] | — | [`OP_SHUTDOWN_OK`] | — (the server then stops accepting and drains) |
//! | [`OP_RELOAD`] | UTF-8 snapshot path | [`OP_RELOAD_OK`] | `u64 epoch, u64 node_count, u32 snapshot_version` (the swapped-in engine) |
//!
//! Any request can instead draw [`OP_ERROR`] with a UTF-8 message (bad
//! node id, malformed body, unknown opcode) — the connection stays usable —
//! or [`OP_BUSY`] when the server sheds the request under overload: the
//! request was well-formed, the client should back off and retry.
//! A deadline-carrying batch whose deadline expired — or that the server
//! judged unmeetable up front — draws [`OP_DEADLINE`] instead: unlike
//! `OP_BUSY`, retrying the same request with the same deadline is
//! pointless; the client should relax the deadline or shrink the batch.
//! `deadline_ms` is the client's end-to-end budget in milliseconds from the
//! moment the server parses the request; `0` means no deadline (the request
//! is still cancelled if the client disconnects mid-computation).
//! Frames over [`MAX_FRAME_BYTES`] are rejected without allocation — that
//! caps a batch at about four million pairs, far above anything the engine
//! wants in one piece anyway.
//!
//! A partial-batch response carries one status byte per query
//! ([`STATUS_OK`], [`STATUS_STORE_FAILURE`], [`STATUS_OUT_OF_BOUNDS`],
//! [`STATUS_BUSY`]) followed by one `f64` per query (0.0 where the status
//! is a failure), so a poisoned page degrades the queries that touch it
//! instead of failing the whole batch.

use std::io::{self, Read, Write};

/// Handshake: ask who is serving.
pub const OP_HELLO: u8 = 0x01;
/// One pair query (dense ids).
pub const OP_QUERY: u8 = 0x02;
/// A batch of pair queries (dense ids).
pub const OP_BATCH: u8 = 0x03;
/// Server statistics as JSON.
pub const OP_STATS: u8 = 0x04;
/// Stop accepting, drain connections, exit the serve loop.
pub const OP_SHUTDOWN: u8 = 0x05;
/// Health check: round-trips engine liveness without touching columns.
pub const OP_PING: u8 = 0x06;
/// A batch of pair queries answered in partial-results mode: per-query
/// statuses instead of all-or-nothing.
pub const OP_BATCH_PARTIAL: u8 = 0x07;
/// Hot reload: atomically swap the served engine to the snapshot named in
/// the body (a UTF-8 path the *server* process can read). In-flight requests
/// finish on the old epoch; every request accepted after the swap serves the
/// new one.
pub const OP_RELOAD: u8 = 0x08;
/// [`OP_BATCH`] with a deadline: the body carries a `u32 deadline_ms`
/// budget before the count. The server sheds the batch up front when its
/// service-time estimate says the deadline cannot be met, and abandons the
/// remaining work — at the next chunk boundary, never mid-kernel — when the
/// deadline expires or the client disconnects mid-computation.
pub const OP_BATCH_DEADLINE: u8 = 0x09;
/// [`OP_BATCH_PARTIAL`] with a deadline (same body prefix as
/// [`OP_BATCH_DEADLINE`]): queries answered before the deadline tripped
/// keep their bit-identical values; the abandoned tail carries
/// [`STATUS_DEADLINE`].
pub const OP_BATCH_PARTIAL_DEADLINE: u8 = 0x0A;

/// Response to [`OP_HELLO`].
pub const OP_HELLO_OK: u8 = 0x81;
/// Response to [`OP_QUERY`].
pub const OP_QUERY_OK: u8 = 0x82;
/// Response to [`OP_BATCH`].
pub const OP_BATCH_OK: u8 = 0x83;
/// Response to [`OP_STATS`].
pub const OP_STATS_OK: u8 = 0x84;
/// Response to [`OP_SHUTDOWN`] (acknowledged before the listener stops).
pub const OP_SHUTDOWN_OK: u8 = 0x85;
/// Response to [`OP_PING`].
pub const OP_PING_OK: u8 = 0x86;
/// Response to [`OP_BATCH_PARTIAL`].
pub const OP_BATCH_PARTIAL_OK: u8 = 0x87;
/// Response to [`OP_RELOAD`]: the new engine is live.
pub const OP_RELOAD_OK: u8 = 0x88;
/// Deadline response to a deadline-carrying batch: the deadline expired
/// mid-computation (or was judged unmeetable up front) and the whole batch
/// was abandoned; body is a UTF-8 message. Unlike [`OP_BUSY`] this is not
/// an invitation to retry as-is — relax the deadline or shrink the batch.
pub const OP_DEADLINE: u8 = 0xFD;
/// Overload response to any request: the server shed it (admission queue
/// full or lease timeout); body is a UTF-8 message. Back off and retry.
pub const OP_BUSY: u8 = 0xFE;
/// Error response to any request; body is a UTF-8 message.
pub const OP_ERROR: u8 = 0xFF;

/// Partial-batch per-query status: answered, value is valid.
pub const STATUS_OK: u8 = 0;
/// Partial-batch per-query status: the store could not produce a column
/// this pair touches (exhausted retries, persistent corruption).
pub const STATUS_STORE_FAILURE: u8 = 1;
/// Partial-batch per-query status: a node id was out of bounds.
pub const STATUS_OUT_OF_BOUNDS: u8 = 2;
/// Partial-batch per-query status: admission shed this query mid-batch.
pub const STATUS_BUSY: u8 = 3;
/// Partial-batch per-query status: any other typed engine failure.
pub const STATUS_OTHER: u8 = 4;
/// Partial-batch per-query status: the deadline expired (or the client
/// disconnected) before this query ran; its work was abandoned at a chunk
/// boundary. Queries with [`STATUS_OK`] in the same response completed
/// before the trip and their values are bit-identical to an undisturbed
/// run.
pub const STATUS_DEADLINE: u8 = 5;

/// Largest accepted frame payload (64 MiB).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Server health as carried in [`OP_PING_OK`] (one byte on the wire) and in
/// the stats document (its [`Health::as_str`] form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Serving normally, no integrity failures observed.
    Ok,
    /// Still serving, but typed store failures or scrubber findings have
    /// been recorded — the snapshot (or the disk under it) deserves a look.
    Degraded,
    /// Shutdown in progress: the listener is closed and in-flight requests
    /// are draining.
    Draining,
}

impl Health {
    /// Wire encoding (`0` ok, `1` degraded, `2` draining).
    pub fn as_u8(self) -> u8 {
        match self {
            Health::Ok => 0,
            Health::Degraded => 1,
            Health::Draining => 2,
        }
    }

    /// Decodes the wire byte; `None` for anything unassigned.
    pub fn from_u8(value: u8) -> Option<Health> {
        match value {
            0 => Some(Health::Ok),
            1 => Some(Health::Degraded),
            2 => Some(Health::Draining),
            _ => None,
        }
    }

    /// The stats-document spelling: `"ok"`, `"degraded"` or `"draining"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
            Health::Draining => "draining",
        }
    }
}

/// Writes one frame (length prefix + payload). The caller flushes.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)
}

/// Reads one frame's payload. `Ok(None)` on clean EOF at a frame boundary
/// (the peer closed the connection); errors on EOF mid-frame, or on a
/// length prefix beyond [`MAX_FRAME_BYTES`].
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match reader.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A cursor over a received payload with checked little-endian reads.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> PayloadReader<'a> {
    /// A reader over `bytes` (typically a frame payload past the opcode).
    pub fn new(bytes: &'a [u8]) -> Self {
        PayloadReader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len());
        let Some(end) = end else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated payload",
            ));
        };
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Next little-endian `f64`.
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// All remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let rest = &self.bytes[self.at..];
        self.at = self.bytes.len();
        rest
    }

    /// Errors unless the payload was consumed exactly.
    pub fn finish(self) -> io::Result<()> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in payload",
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[OP_QUERY, 1, 2, 3]).expect("write");
        write_frame(&mut wire, &[]).expect("write empty");
        let mut reader = wire.as_slice();
        assert_eq!(
            read_frame(&mut reader).expect("read").as_deref(),
            Some(&[OP_QUERY, 1, 2, 3][..])
        );
        assert_eq!(
            read_frame(&mut reader).expect("read").as_deref(),
            Some(&[][..])
        );
        assert_eq!(read_frame(&mut reader).expect("eof"), None);
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        let huge = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());
        let mut truncated = Vec::new();
        write_frame(&mut truncated, &[0u8; 16]).expect("write");
        truncated.truncate(10);
        assert!(read_frame(&mut truncated.as_slice()).is_err());
    }

    #[test]
    fn payload_reader_checks_bounds_and_trailing_bytes() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&1.5f64.to_le_bytes());
        let mut reader = PayloadReader::new(&bytes);
        assert_eq!(reader.u64().expect("u64"), 7);
        assert_eq!(reader.f64().expect("f64"), 1.5);
        assert!(reader.u8().is_err(), "reading past the end fails");
        let mut reader = PayloadReader::new(&bytes);
        assert_eq!(reader.u64().expect("u64"), 7);
        assert!(reader.finish().is_err(), "unconsumed bytes are an error");
    }
}
