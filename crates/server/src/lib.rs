//! A long-lived network front-end for the effres query service.
//!
//! The pipeline crates answer "what is the effective resistance of these
//! pairs" for one process that loaded the snapshot itself. This crate turns
//! that into a service: [`Server`] binds a TCP listener over one shared
//! [`effres_service::QueryEngine`] (resident or paged) and speaks a small
//! length-prefixed binary protocol — query one pair, query a batch, fetch
//! stats, shut down. Concurrency comes from the engine, not the transport:
//! handlers are plain blocking threads, and on the paged backend concurrent
//! batches lease page-cache pin capacity from the engine's admission
//! ledger, so one client's giant batch cannot over-pin the cache that every
//! other client is working from.
//!
//! The crate is std-only (no async runtime, no serde): frames are
//! hand-framed, the stats document is hand-rendered JSON, and the blocking
//! [`Client`] is a thin wrapper over one socket. The `effres-cli` binary
//! lives here too — its `serve` and `bench-client` subcommands are the
//! operational entry points, and the pipeline subcommands (build / query /
//! stats / …) ride along unchanged.
//!
//! ```no_run
//! use effres_server::{Client, ServedEngine, Server};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let engine: ServedEngine = unimplemented!();
//! let server = Server::bind("127.0.0.1:0", engine, Some(3))?;
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let resistance = client.query(0, 41)?;
//! println!("R(0, 41) = {resistance}");
//! client.shutdown_server()?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{
    Client, ClientError, PartialBatch, PingReport, ReconnectPolicy, ReloadReport, ServerInfo,
};
pub use protocol::Health;
pub use server::{EngineEpoch, Reloader, ServedEngine, Server, ServerHandle, ServerOptions};
