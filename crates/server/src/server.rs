//! The serving loop: a TCP listener multiplexing every connection onto one
//! shared [`QueryEngine`].
//!
//! Each accepted connection gets a handler thread that parses frames (see
//! [`crate::protocol`]), answers them against the shared engine, and
//! records per-request latency into a process-wide
//! [`LatencyHistogram`]. The engine is the concurrency story: it is
//! `Sync`, batches fan out on its worker pool, the pair cache is sharded,
//! and — on the paged backend — concurrent batches lease pin capacity from
//! the engine's admission ledger, so many clients can run large batches
//! without over-pinning the page cache.
//!
//! Shutdown is cooperative and **graceful**: an [`OP_SHUTDOWN`]
//! request (or [`ServerHandle::shutdown`], which the CLI's SIGINT/SIGTERM
//! handler also calls) sets a flag and wakes the listener with a loopback
//! connection. [`Server::run`] then drains: it closes the listener, lets
//! every in-flight request finish (handlers notice the flag within their
//! poll interval once their buffered requests are answered), and waits up
//! to [`ServerOptions::drain_deadline`] before giving up on stragglers —
//! so a normal shutdown drops no request mid-frame.
//!
//! The engine rides behind an **epoch-versioned handle**
//! ([`EngineEpoch`]): every request pins the current epoch's `Arc` before
//! touching the engine, so [`OP_RELOAD`] can
//! atomically swap in a freshly opened snapshot with zero downtime —
//! in-flight batches finish on the epoch they started with, requests
//! accepted after the swap serve the new one, and the old engine (its page
//! cache and buffer pools included) drops when its last pinned request
//! completes.
//!
//! When serving a paged snapshot with a scrub rate configured
//! ([`ServerOptions::scrub_bytes_per_sec`]), a low-priority **integrity
//! scrubber** thread walks the snapshot's pages in the background,
//! revalidating each with the same checks the fetch path applies; rotten
//! pages are quarantined out of the cache. Its findings ride in the stats
//! document and in the `health` byte of [`OP_PING`].
//!
//! The [`OP_STATS`] response is a JSON object
//! (stable keys, no external dependencies) carrying the backend identity
//! (including the snapshot format version, path, epoch and reload count),
//! cumulative service counters, admission-ledger state, scrubber counters,
//! the health state, the latency quantiles (p50/p95/p99 in microseconds)
//! and overall queries-per-second throughput.

use crate::protocol::{
    write_frame, Health, PayloadReader, MAX_FRAME_BYTES, OP_BATCH, OP_BATCH_DEADLINE, OP_BATCH_OK,
    OP_BATCH_PARTIAL, OP_BATCH_PARTIAL_DEADLINE, OP_BATCH_PARTIAL_OK, OP_BUSY, OP_DEADLINE,
    OP_ERROR, OP_HELLO, OP_HELLO_OK, OP_PING, OP_PING_OK, OP_QUERY, OP_QUERY_OK, OP_RELOAD,
    OP_RELOAD_OK, OP_SHUTDOWN, OP_SHUTDOWN_OK, OP_STATS, OP_STATS_OK, STATUS_BUSY, STATUS_DEADLINE,
    STATUS_OK, STATUS_OTHER, STATUS_OUT_OF_BOUNDS, STATUS_STORE_FAILURE,
};
use effres::{CancelReason, EffectiveResistanceEstimator, EffresError};
use effres_io::{PagedSnapshot, ScrubStats};
use effres_service::{
    AdmissionStats, BatchAbort, BatchResult, CancelToken, LatencyHistogram, PartialBatchResult,
    QueryBatch, QueryEngine, ServiceStats,
};
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// How often an idle connection handler re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Batches below this size skip the disconnect-monitor thread: they finish
/// in well under one monitor poll interval, so the thread could never trip
/// the token before the answer ships.
const MONITOR_MIN_PAIRS: usize = 512;

/// How often the disconnect monitor peeks at the socket while a batch
/// computes — the bound on how long an abandoned connection keeps its
/// admission lease and pinned pages past the next chunk boundary.
const MONITOR_POLL: Duration = Duration::from_millis(50);

/// Smoothing factor of the brownout pressure EWMA: one shed/ok sample per
/// batch outcome, so ~10 consecutive sheds saturate it and ~20 consecutive
/// successes drain it back below the default exit threshold.
const BROWNOUT_ALPHA: f64 = 0.1;

/// Connection-level tuning of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerOptions {
    /// How long a connection may sit **mid-frame** (a length prefix
    /// arrived, the payload did not finish) before the server closes it. A
    /// client that stalls mid-payload used to park its handler thread
    /// forever; now it is cut loose and counted
    /// (`deadline_closes` in the stats document).
    pub frame_deadline: Duration,
    /// How long a connection may sit **idle** (no request in flight, empty
    /// receive buffer) before the server closes it to reclaim the handler
    /// thread (`idle_closes` in the stats document). Healthy clients
    /// reconnect transparently ([`crate::Client::connect_with`]).
    pub idle_deadline: Duration,
    /// How long [`Server::run`] waits for in-flight requests after shutdown
    /// is requested. Handlers that finish within the deadline are joined
    /// (the normal case: a handler needs one poll interval plus whatever
    /// its current batch takes); stragglers past it are abandoned so the
    /// process can exit.
    pub drain_deadline: Duration,
    /// Target byte rate of the background integrity scrubber on paged
    /// backends; `0` disables it. The scrubber fetches and revalidates one
    /// page at a time, sleeping between pages so its disk traffic averages
    /// this rate — size it well below the disk's bandwidth so serving
    /// traffic keeps priority.
    pub scrub_bytes_per_sec: u64,
    /// Brownout entry threshold: when the EWMA of batch outcomes (1.0 for a
    /// shed or deadline miss, 0.0 for a success) reaches this value the
    /// server enters **brownout** — `health` flips to degraded, paged
    /// readahead windows shrink to one page (less speculative I/O per
    /// lease), and `OP_BATCH` is served in partial mode so answers computed
    /// before pressure cuts a batch short still ship. Set above `1.0` to
    /// disable brownout entirely.
    pub brownout_enter: f64,
    /// Brownout exit threshold: the pressure EWMA must decay to this value
    /// (successes drain it) before the server leaves brownout. Keep it well
    /// below `brownout_enter` so the controller has hysteresis instead of
    /// flapping at the boundary.
    pub brownout_exit: f64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            frame_deadline: Duration::from_secs(10),
            idle_deadline: Duration::from_secs(300),
            drain_deadline: Duration::from_secs(30),
            scrub_bytes_per_sec: 0,
            brownout_enter: 0.5,
            brownout_exit: 0.1,
        }
    }
}

/// The engine behind a server: resident or paged, one shared instance.
///
/// Batches on the paged variant run through the locality scheduler
/// (`execute_scheduled`), which is both the fast path and the one that
/// leases pin capacity from the admission ledger; the resident variant has
/// no pages to schedule and uses plain parallel execution.
#[derive(Debug)]
pub enum ServedEngine {
    /// In-memory arena backend.
    Resident(QueryEngine<EffectiveResistanceEstimator>),
    /// Out-of-core paged-snapshot backend.
    Paged(QueryEngine<PagedSnapshot>),
}

impl ServedEngine {
    /// Number of nodes served (dense ids are `0..node_count`).
    pub fn node_count(&self) -> usize {
        match self {
            ServedEngine::Resident(engine) => engine.node_count(),
            ServedEngine::Paged(engine) => engine.node_count(),
        }
    }

    /// `"resident"` or `"paged"`.
    pub fn backend_kind(&self) -> &'static str {
        match self {
            ServedEngine::Resident(_) => "resident",
            ServedEngine::Paged(_) => "paged",
        }
    }

    /// Answers one pair query (dense ids).
    pub fn query(&self, p: usize, q: usize) -> Result<f64, EffresError> {
        match self {
            ServedEngine::Resident(engine) => engine.query(p, q),
            ServedEngine::Paged(engine) => engine.query(p, q),
        }
    }

    /// Executes a batch — scheduled on the paged backend, plain on the
    /// resident one.
    pub fn execute(&self, batch: &QueryBatch) -> Result<BatchResult, EffresError> {
        match self {
            ServedEngine::Resident(engine) => engine.execute(batch),
            ServedEngine::Paged(engine) => engine.execute_scheduled(batch),
        }
    }

    /// [`ServedEngine::execute`] under a cancellation token: the batch is
    /// shed up front when its deadline is unmeetable, and abandoned at the
    /// next chunk boundary when the token trips mid-computation.
    pub fn execute_with_cancel(
        &self,
        batch: &QueryBatch,
        cancel: &Arc<CancelToken>,
    ) -> Result<BatchResult, BatchAbort> {
        match self {
            ServedEngine::Resident(engine) => engine.execute_with_cancel(batch, cancel),
            ServedEngine::Paged(engine) => engine.execute_scheduled_with_cancel(batch, cancel),
        }
    }

    /// [`ServedEngine::execute_partial`] under a cancellation token: a trip
    /// mid-batch keeps everything already answered (bit-identical) and marks
    /// the abandoned tail [`EffresError::DeadlineExceeded`].
    pub fn execute_partial_with_cancel(
        &self,
        batch: &QueryBatch,
        cancel: &Arc<CancelToken>,
    ) -> Result<PartialBatchResult, EffresError> {
        match self {
            ServedEngine::Resident(engine) => engine.execute_partial_with_cancel(batch, cancel),
            ServedEngine::Paged(engine) => {
                engine.execute_scheduled_partial_with_cancel(batch, cancel)
            }
        }
    }

    /// Flips the engine's brownout flag (trimmed readahead windows on the
    /// paged backend; see `QueryEngine::set_brownout`).
    pub fn set_brownout(&self, on: bool) {
        match self {
            ServedEngine::Resident(engine) => engine.set_brownout(on),
            ServedEngine::Paged(engine) => engine.set_brownout(on),
        }
    }

    /// Executes a batch in partial-results mode: per-query statuses instead
    /// of all-or-nothing (see
    /// [`QueryEngine::execute_partial`] and
    /// `QueryEngine::<PagedSnapshot>::execute_scheduled_partial`).
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::Busy`] when bounded admission shed the whole
    /// batch before any work.
    pub fn execute_partial(&self, batch: &QueryBatch) -> Result<PartialBatchResult, EffresError> {
        match self {
            ServedEngine::Resident(engine) => Ok(engine.execute_partial(batch)),
            ServedEngine::Paged(engine) => engine.execute_scheduled_partial(batch),
        }
    }

    /// Cumulative service counters.
    pub fn stats(&self) -> ServiceStats {
        match self {
            ServedEngine::Resident(engine) => engine.stats(),
            ServedEngine::Paged(engine) => engine.stats(),
        }
    }

    /// Per-interval service counters (see
    /// [`QueryEngine::take_service_stats`]).
    pub fn take_service_stats(&self) -> ServiceStats {
        match self {
            ServedEngine::Resident(engine) => engine.take_service_stats(),
            ServedEngine::Paged(engine) => engine.take_service_stats(),
        }
    }

    /// Admission-ledger counters (paged backends only).
    pub fn admission_stats(&self) -> Option<AdmissionStats> {
        match self {
            ServedEngine::Resident(engine) => engine.admission_stats(),
            ServedEngine::Paged(engine) => engine.admission_stats(),
        }
    }

    /// Cumulative integrity-scrubber counters (paged backends only).
    pub fn scrub_stats(&self) -> Option<ScrubStats> {
        match self {
            ServedEngine::Resident(_) => None,
            ServedEngine::Paged(engine) => Some(engine.backend().store.scrub_stats()),
        }
    }
}

/// One epoch of serving: an engine plus the identity of the snapshot it was
/// opened from. Requests pin the current epoch's `Arc` before touching the
/// engine, so a hot reload ([`crate::protocol::OP_RELOAD`]) swaps the handle
/// atomically while in-flight work finishes on the epoch it started with;
/// the old engine — page cache and buffer pools included — drops with the
/// last pinned request.
#[derive(Debug)]
pub struct EngineEpoch {
    /// The engine serving this epoch.
    pub engine: ServedEngine,
    /// Monotonic epoch number, starting at 1 for the engine the server was
    /// bound with and incremented by every successful reload.
    pub epoch: u64,
    /// The snapshot file this epoch serves, when it came from one.
    pub snapshot_path: Option<PathBuf>,
    /// Snapshot format version of that file (v1/v2/v3); `None` for
    /// estimators built in memory.
    pub snapshot_version: Option<u32>,
}

/// The closure hot reload uses to open a snapshot into a fresh engine. The
/// host installs it ([`Server::set_reloader`]) so the server crate stays
/// agnostic of how engines are configured — the CLI's reloader reapplies the
/// same backend, cache and worker-pool choices `serve` started with.
pub type Reloader = Box<dyn Fn(&Path) -> Result<(ServedEngine, Option<u32>), String> + Send + Sync>;

/// State shared by the accept loop and every connection handler.
struct Shared {
    /// The current serving epoch, swapped whole on reload. Readers take the
    /// lock only long enough to clone the `Arc`.
    engine: RwLock<Arc<EngineEpoch>>,
    /// Opens snapshots for [`crate::protocol::OP_RELOAD`]; reloads are
    /// refused until the host installs one.
    reloader: OnceLock<Reloader>,
    /// Successful hot reloads since the server was bound.
    reloads: AtomicU64,
    /// Handler threads currently serving a connection — the drain loop
    /// waits for this to reach zero.
    active_handlers: AtomicUsize,
    options: ServerOptions,
    latency: LatencyHistogram,
    started: Instant,
    shutdown: AtomicBool,
    addr: SocketAddr,
    connections: AtomicU64,
    requests: AtomicU64,
    /// Malformed requests: empty frames, bad bodies, unknown opcodes.
    protocol_errors: AtomicU64,
    /// Connections dropped at the framing layer: oversized length prefix,
    /// or a hard stream error mid-read.
    frame_errors: AtomicU64,
    /// Connections closed because a frame stalled mid-payload past
    /// [`ServerOptions::frame_deadline`].
    deadline_closes: AtomicU64,
    /// Connections closed after sitting idle past
    /// [`ServerOptions::idle_deadline`].
    idle_closes: AtomicU64,
    /// Requests answered with [`OP_BUSY`] (admission shed).
    busy_rejections: AtomicU64,
    /// Queries that failed with a typed store failure (exhausted retries,
    /// persistent corruption) — whole-request for `OP_QUERY`/`OP_BATCH`,
    /// per-query for `OP_BATCH_PARTIAL`.
    store_failures: AtomicU64,
    /// Partial batches that carried at least one failed query.
    partial_batches: AtomicU64,
    /// Batches cut short by a tripped cancellation token — deadline expiry,
    /// disconnect, or an unmeetable deadline shed up front.
    cancelled_batches: AtomicU64,
    /// Batch requests whose deadline expired mid-computation or was judged
    /// unmeetable at admission (answered [`OP_DEADLINE`] or with
    /// [`STATUS_DEADLINE`] tails).
    deadline_exceeded: AtomicU64,
    /// Cancellations tripped by the disconnect monitor: the client hung up
    /// while its batch was computing, and the remaining work was reclaimed.
    disconnect_cancels: AtomicU64,
    /// Pairs whose computation was abandoned by cancellation — work the
    /// engine never spent because the answer had no recipient.
    abandoned_pairs: AtomicU64,
    /// Whether the brownout controller currently holds the server in
    /// degraded overload mode.
    brownout_active: AtomicBool,
    /// Times the pressure EWMA crossed [`ServerOptions::brownout_enter`].
    brownout_entries: AtomicU64,
    /// Times the pressure EWMA decayed past [`ServerOptions::brownout_exit`].
    brownout_exits: AtomicU64,
    /// Bit pattern of the `f64` pressure EWMA over batch outcomes (1.0 =
    /// shed or deadline miss, 0.0 = success).
    pressure_bits: AtomicU64,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("addr", &self.addr)
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl Shared {
    /// Pins the current serving epoch: one lock acquisition, one `Arc`
    /// clone. Every request (and the scrubber) goes through this, so a
    /// reload mid-request never swaps an engine out from under anyone.
    fn current_epoch(&self) -> Arc<EngineEpoch> {
        Arc::clone(&self.engine.read().expect("engine lock poisoned"))
    }

    /// Opens `path` through the installed reloader and atomically swaps the
    /// serving epoch. Returns the new epoch's identity.
    fn reload(&self, path: &Path) -> Result<(u64, u64, u32), String> {
        let reloader = self
            .reloader
            .get()
            .ok_or_else(|| "this server has no reloader installed".to_string())?;
        let (engine, snapshot_version) = reloader(path)?;
        // The swapped-in engine inherits the controller's brownout state:
        // pressure is a property of the traffic, not of the epoch.
        engine.set_brownout(self.brownout_active.load(Ordering::Relaxed));
        let node_count = engine.node_count() as u64;
        let version = snapshot_version.unwrap_or(0);
        let mut guard = self.engine.write().expect("engine lock poisoned");
        let epoch = guard.epoch + 1;
        *guard = Arc::new(EngineEpoch {
            engine,
            epoch,
            snapshot_path: Some(path.to_path_buf()),
            snapshot_version,
        });
        drop(guard);
        self.reloads.fetch_add(1, Ordering::Relaxed);
        Ok((epoch, node_count, version))
    }

    /// The server's health state: draining once shutdown is requested,
    /// degraded while brownout holds or typed store failures or scrubber
    /// findings are on the books, ok otherwise.
    fn health(&self) -> Health {
        if self.shutdown.load(Ordering::SeqCst) {
            return Health::Draining;
        }
        let degraded = self.brownout_active.load(Ordering::Relaxed)
            || self.store_failures.load(Ordering::Relaxed) > 0
            || self
                .current_epoch()
                .engine
                .scrub_stats()
                .is_some_and(|s| s.scrub_failures > 0);
        if degraded {
            Health::Degraded
        } else {
            Health::Ok
        }
    }

    /// Feeds one batch outcome into the brownout controller: updates the
    /// pressure EWMA (1.0 for a shed or deadline miss, 0.0 for a success)
    /// and flips brownout on crossing [`ServerOptions::brownout_enter`] /
    /// off on decaying past [`ServerOptions::brownout_exit`]. The engine's
    /// own brownout flag follows every transition.
    fn note_batch_outcome(&self, shed: bool) {
        let sample = if shed { 1.0 } else { 0.0 };
        let mut old_bits = self.pressure_bits.load(Ordering::Relaxed);
        let pressure = loop {
            let old = f64::from_bits(old_bits);
            let new = old + BROWNOUT_ALPHA * (sample - old);
            match self.pressure_bits.compare_exchange_weak(
                old_bits,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break new,
                Err(current) => old_bits = current,
            }
        };
        if !self.brownout_active.load(Ordering::Relaxed) {
            if pressure >= self.options.brownout_enter
                && !self.brownout_active.swap(true, Ordering::SeqCst)
            {
                self.brownout_entries.fetch_add(1, Ordering::Relaxed);
                self.current_epoch().engine.set_brownout(true);
            }
        } else if pressure <= self.options.brownout_exit
            && self.brownout_active.swap(false, Ordering::SeqCst)
        {
            self.brownout_exits.fetch_add(1, Ordering::Relaxed);
            self.current_epoch().engine.set_brownout(false);
        }
    }

    /// Books a cancellation: one cancelled batch, its abandoned pairs, and
    /// the per-cause counter (`disconnect_cancels` or `deadline_exceeded`).
    fn note_cancellation(&self, reason: CancelReason, abandoned: u64) {
        self.cancelled_batches.fetch_add(1, Ordering::Relaxed);
        self.abandoned_pairs.fetch_add(abandoned, Ordering::Relaxed);
        match reason {
            CancelReason::Disconnected => {
                self.disconnect_cancels.fetch_add(1, Ordering::Relaxed);
            }
            CancelReason::DeadlineExpired | CancelReason::Unmeetable => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks until shutdown.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cheap handle onto a running (or about-to-run) server: lets another
/// thread observe the bound address, read stats, or trigger shutdown.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over a
    /// shared engine with default [`ServerOptions`]. `snapshot_version`
    /// names the on-disk format being served, when the engine came from a
    /// snapshot file.
    pub fn bind(
        addr: &str,
        engine: ServedEngine,
        snapshot_version: Option<u32>,
    ) -> io::Result<Server> {
        Server::bind_with(
            addr,
            engine,
            snapshot_version,
            None,
            ServerOptions::default(),
        )
    }

    /// [`Server::bind`] with explicit connection deadlines, and optionally
    /// the snapshot file the engine was opened from (reported by `OP_PING`
    /// and the stats document, and updated by every reload).
    pub fn bind_with(
        addr: &str,
        engine: ServedEngine,
        snapshot_version: Option<u32>,
        snapshot_path: Option<PathBuf>,
        options: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                engine: RwLock::new(Arc::new(EngineEpoch {
                    engine,
                    epoch: 1,
                    snapshot_path,
                    snapshot_version,
                })),
                reloader: OnceLock::new(),
                reloads: AtomicU64::new(0),
                active_handlers: AtomicUsize::new(0),
                options,
                latency: LatencyHistogram::new(),
                started: Instant::now(),
                shutdown: AtomicBool::new(false),
                addr,
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                protocol_errors: AtomicU64::new(0),
                frame_errors: AtomicU64::new(0),
                deadline_closes: AtomicU64::new(0),
                idle_closes: AtomicU64::new(0),
                busy_rejections: AtomicU64::new(0),
                store_failures: AtomicU64::new(0),
                partial_batches: AtomicU64::new(0),
                cancelled_batches: AtomicU64::new(0),
                deadline_exceeded: AtomicU64::new(0),
                disconnect_cancels: AtomicU64::new(0),
                abandoned_pairs: AtomicU64::new(0),
                brownout_active: AtomicBool::new(false),
                brownout_entries: AtomicU64::new(0),
                brownout_exits: AtomicU64::new(0),
                pressure_bits: AtomicU64::new(0.0f64.to_bits()),
            }),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The current serving epoch (engine plus snapshot identity).
    pub fn engine(&self) -> Arc<EngineEpoch> {
        self.shared.current_epoch()
    }

    /// Installs the closure [`crate::protocol::OP_RELOAD`] uses to open a
    /// snapshot into a fresh engine. Without one, reload requests are
    /// refused with a typed error. Returns `false` if a reloader was
    /// already installed (the first one wins).
    pub fn set_reloader(
        &self,
        reloader: impl Fn(&Path) -> Result<(ServedEngine, Option<u32>), String> + Send + Sync + 'static,
    ) -> bool {
        self.shared.reloader.set(Box::new(reloader)).is_ok()
    }

    /// A handle for observing or shutting down the server from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until shutdown: accepts connections, one handler thread each.
    /// On shutdown the listener closes immediately (no new connections) and
    /// the in-flight handlers are drained — joined as they finish, up to
    /// [`ServerOptions::drain_deadline`], after which stragglers are
    /// abandoned. Returns the final stats JSON (the same document
    /// [`OP_STATS`] serves).
    pub fn run(self) -> io::Result<String> {
        let scrubber = spawn_scrubber(&self.shared);
        let mut handlers = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection; stop accepting
            }
            self.shared.connections.fetch_add(1, Ordering::Relaxed);
            self.shared.active_handlers.fetch_add(1, Ordering::SeqCst);
            let shared = Arc::clone(&self.shared);
            handlers.push(std::thread::spawn(move || {
                // Connection failures (peer reset, malformed framing) end
                // that connection only; the server keeps serving.
                let _ = serve_connection(stream, &shared);
                shared.active_handlers.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        // Close the listener now: drain means no new work, only finishing
        // what is already in flight.
        drop(self.listener);
        let deadline = Instant::now() + self.shared.options.drain_deadline;
        while self.shared.active_handlers.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        if self.shared.active_handlers.load(Ordering::SeqCst) == 0 {
            // Everything finished within the deadline: join so no handler
            // outlives `run` (the no-dropped-batches case).
            for handler in handlers {
                let _ = handler.join();
            }
        }
        // Handlers still running past the deadline are abandoned: their
        // threads keep draining but `run` stops waiting on them.
        if let Some(scrubber) = scrubber {
            let _ = scrubber.join();
        }
        Ok(stats_json(&self.shared))
    }
}

/// Starts the background integrity scrubber when the options ask for one:
/// a low-priority thread walking the paged snapshot's pages at roughly
/// [`ServerOptions::scrub_bytes_per_sec`], revalidating each with the serve
/// path's own checks (see
/// [`PagedColumnStore::scrub_page`](effres_io::PagedColumnStore::scrub_page))
/// and quarantining rot. It follows epoch swaps (a reload restarts the walk
/// on the new snapshot) and exits at shutdown.
fn spawn_scrubber(shared: &Arc<Shared>) -> Option<std::thread::JoinHandle<()>> {
    let rate = shared.options.scrub_bytes_per_sec;
    if rate == 0 {
        return None;
    }
    let shared = Arc::clone(shared);
    Some(
        std::thread::Builder::new()
            .name("effres-scrubber".to_string())
            .spawn(move || scrub_loop(&shared, rate))
            .expect("spawn scrubber thread"),
    )
}

fn scrub_loop(shared: &Shared, bytes_per_sec: u64) {
    let mut walk_epoch = 0u64;
    let mut next_page = 0usize;
    while !shared.shutdown.load(Ordering::SeqCst) {
        let current = shared.current_epoch();
        if current.epoch != walk_epoch {
            // A reload swapped the snapshot: restart the walk from page 0.
            walk_epoch = current.epoch;
            next_page = 0;
        }
        let pause = match &current.engine {
            ServedEngine::Paged(engine) => {
                let store = &engine.backend().store;
                let pages = store.page_count();
                if pages == 0 {
                    POLL_INTERVAL
                } else {
                    if next_page >= pages {
                        next_page = 0;
                    }
                    // The verdict already landed in the store's scrub
                    // stats; rotten pages were quarantined there too.
                    let _ = store.scrub_page(next_page);
                    next_page += 1;
                    // Pace to the byte budget using the mean page size.
                    let footprint = store.footprint();
                    let page_bytes =
                        ((footprint.rows_bytes + footprint.vals_bytes) / pages).max(1) as u64;
                    Duration::from_secs_f64(page_bytes as f64 / bytes_per_sec as f64)
                }
            }
            // Nothing to scrub on a resident engine; idle until a reload
            // possibly swaps a paged one in.
            ServedEngine::Resident(_) => Duration::from_secs(1),
        };
        // Sleep in poll-interval slices so shutdown is noticed promptly.
        let mut remaining = pause;
        while !remaining.is_zero() && !shared.shutdown.load(Ordering::SeqCst) {
            let slice = remaining.min(POLL_INTERVAL);
            std::thread::sleep(slice);
            remaining -= slice;
        }
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The current stats JSON (same document [`OP_STATS`] serves).
    pub fn stats_json(&self) -> String {
        stats_json(&self.shared)
    }

    /// Requests shutdown and wakes the accept loop. Idempotent.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }
}

fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // Wake the blocking accept with a throwaway loopback connection; if it
    // fails (listener already gone), shutdown is underway anyway.
    let _ = TcpStream::connect(shared.addr);
}

/// Serves one connection until the peer closes, the stream fails, a
/// deadline expires, or the server shuts down. Reads are chunked with a
/// poll timeout so the handler notices the shutdown flag while idle; the
/// frame buffer survives partial reads, so a slow sender cannot
/// desynchronize the framing.
///
/// Two deadlines bound how long a handler thread can be held hostage
/// (before PR 7, a client that sent a length prefix and then stalled parked
/// its handler forever): a connection **mid-frame** for longer than
/// [`ServerOptions::frame_deadline`] is cut loose and counted in
/// `deadline_closes`; a connection **idle** past
/// [`ServerOptions::idle_deadline`] is closed and counted in `idle_closes`.
/// Both clocks reset on every received byte.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut writer = io::BufWriter::new(stream.try_clone()?);
    let mut stream = stream;
    let mut buffer: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; 64 << 10];
    let mut last_activity = Instant::now();
    loop {
        loop {
            let consumed = match frame_length(&buffer) {
                Ok(Some(consumed)) => consumed,
                Ok(None) => break,
                Err(e) => {
                    // Oversized length prefix (or hostile garbage decoding
                    // as one): tell the peer, count it, drop the link —
                    // the framing cannot resynchronize past it.
                    shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = write_error(&mut writer, &e.to_string());
                    let _ = writer.flush();
                    return Err(e);
                }
            };
            let payload: Vec<u8> = buffer.drain(..consumed).skip(4).collect();
            shared.requests.fetch_add(1, Ordering::Relaxed);
            let proceed = handle_request(&payload, shared, &stream, &mut writer)?;
            writer.flush()?;
            last_activity = Instant::now();
            if !proceed {
                return Ok(());
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let deadline = if buffer.is_empty() {
            shared.options.idle_deadline
        } else {
            shared.options.frame_deadline
        };
        if last_activity.elapsed() >= deadline {
            if buffer.is_empty() {
                shared.idle_closes.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.deadline_closes.fetch_add(1, Ordering::Relaxed);
                let _ = write_error(&mut writer, "frame deadline exceeded mid-payload");
                let _ = writer.flush();
            }
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                buffer.extend_from_slice(&chunk[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => {
                shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        }
    }
}

/// Keeps a disconnect-monitor thread alive for the duration of one batch
/// computation. Dropping the guard tells the monitor to stand down and
/// restores the connection's normal poll-interval read timeout (the monitor
/// shortens it — the two handles share one socket, so socket options are
/// shared too).
struct MonitorGuard<'a> {
    stream: &'a TcpStream,
    done: Arc<AtomicBool>,
}

impl Drop for MonitorGuard<'_> {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
        let _ = self.stream.set_read_timeout(Some(POLL_INTERVAL));
    }
}

/// Watches `stream` while a batch computes and trips `cancel` with
/// [`CancelReason::Disconnected`] the moment the peer hangs up — so an
/// abandoned request releases its admission lease, pinned pages and scratch
/// at the next chunk boundary instead of computing answers nobody will
/// read. The watcher `peek`s (never consumes — a pipelined follow-up
/// request stays intact) on a cloned handle with a short timeout; `Ok(0)`
/// is the peer's FIN, a hard error is a reset. Returns `None` when the
/// socket cannot be cloned or configured — the batch then simply runs
/// unmonitored, as before.
fn watch_for_disconnect<'a>(
    stream: &'a TcpStream,
    cancel: &Arc<CancelToken>,
) -> Option<MonitorGuard<'a>> {
    let probe = stream.try_clone().ok()?;
    probe.set_read_timeout(Some(MONITOR_POLL)).ok()?;
    let done = Arc::new(AtomicBool::new(false));
    let monitor_done = Arc::clone(&done);
    let cancel = Arc::clone(cancel);
    let spawned = std::thread::Builder::new()
        .name("effres-disconnect".to_string())
        .spawn(move || {
            let mut byte = [0u8; 1];
            while !monitor_done.load(Ordering::Relaxed) {
                match probe.peek(&mut byte) {
                    // FIN: the peer is gone; reclaim the in-flight work.
                    Ok(0) => {
                        cancel.cancel(CancelReason::Disconnected);
                        return;
                    }
                    // Bytes waiting (a pipelined request): alive — idle a
                    // beat, since peek would return instantly again.
                    Ok(_) => std::thread::sleep(MONITOR_POLL),
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock
                                | io::ErrorKind::TimedOut
                                | io::ErrorKind::Interrupted
                        ) => {}
                    // Reset or any other hard failure: also gone.
                    Err(_) => {
                        cancel.cancel(CancelReason::Disconnected);
                        return;
                    }
                }
            }
        });
    if spawned.is_err() {
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        return None;
    }
    Some(MonitorGuard { stream, done })
}

/// Length of the first complete frame in `buffer` (prefix + payload), or
/// `None` if more bytes are needed; errors on an oversized length prefix.
fn frame_length(buffer: &[u8]) -> io::Result<Option<usize>> {
    if buffer.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buffer[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    Ok(if buffer.len() >= 4 + len {
        Some(4 + len)
    } else {
        None
    })
}

/// Answers one request; returns `false` when the connection should close
/// (after a shutdown ack).
///
/// Every engine-touching opcode pins the current [`EngineEpoch`] **once, up
/// front** — a reload arriving mid-request swaps the shared handle but this
/// request keeps the epoch it pinned, so a batch never mixes columns from
/// two snapshots.
fn handle_request(
    payload: &[u8],
    shared: &Shared,
    stream: &TcpStream,
    writer: &mut impl Write,
) -> io::Result<bool> {
    let Some((&opcode, body)) = payload.split_first() else {
        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return write_error(writer, "empty frame").map(|()| true);
    };
    match opcode {
        OP_HELLO => {
            let epoch = shared.current_epoch();
            let mut out = Vec::with_capacity(1 + 8 + 1 + 4);
            out.push(OP_HELLO_OK);
            out.extend_from_slice(&(epoch.engine.node_count() as u64).to_le_bytes());
            out.push(u8::from(epoch.engine.backend_kind() == "paged"));
            out.extend_from_slice(&epoch.snapshot_version.unwrap_or(0).to_le_bytes());
            write_frame(writer, &out)?;
        }
        OP_QUERY => {
            let started = Instant::now();
            let mut reader = PayloadReader::new(body);
            let parsed = (|| -> io::Result<(u64, u64)> {
                let p = reader.u64()?;
                let q = reader.u64()?;
                reader.finish()?;
                Ok((p, q))
            })();
            match parsed {
                Err(e) => {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    write_error(writer, &format!("malformed query: {e}"))?;
                }
                Ok((p, q)) => match shared.current_epoch().engine.query(p as usize, q as usize) {
                    Ok(value) => {
                        let mut out = Vec::with_capacity(9);
                        out.push(OP_QUERY_OK);
                        out.extend_from_slice(&value.to_le_bytes());
                        write_frame(writer, &out)?;
                        shared.latency.record(started.elapsed());
                    }
                    Err(e) => write_engine_error(writer, shared, &e)?,
                },
            }
        }
        OP_BATCH | OP_BATCH_PARTIAL | OP_BATCH_DEADLINE | OP_BATCH_PARTIAL_DEADLINE => {
            let started = Instant::now();
            let with_deadline = matches!(opcode, OP_BATCH_DEADLINE | OP_BATCH_PARTIAL_DEADLINE);
            match parse_batch_body(body, with_deadline) {
                Err(e) => {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    write_error(writer, &format!("malformed batch: {e}"))?;
                }
                Ok((deadline, pairs)) => {
                    let batch = QueryBatch::from_pairs(pairs);
                    let cancel = Arc::new(match deadline {
                        Some(budget) => CancelToken::after(budget),
                        None => CancelToken::unbounded(),
                    });
                    // A batch big enough to outlive a monitor poll gets a
                    // watcher: if the client hangs up mid-computation the
                    // token trips and the remaining work is reclaimed at
                    // the next chunk boundary.
                    let _guard = (batch.len() >= MONITOR_MIN_PAIRS)
                        .then(|| watch_for_disconnect(stream, &cancel))
                        .flatten();
                    if matches!(opcode, OP_BATCH_PARTIAL | OP_BATCH_PARTIAL_DEADLINE) {
                        answer_batch_partial(writer, shared, started, &batch, &cancel)?;
                    } else {
                        answer_batch(writer, shared, started, &batch, &cancel)?;
                    }
                }
            }
        }
        OP_PING => {
            let epoch = shared.current_epoch();
            let path = epoch
                .snapshot_path
                .as_ref()
                .map(|p| p.to_string_lossy().into_owned())
                .unwrap_or_default();
            let mut out = Vec::with_capacity(1 + 1 + 8 + 8 + 8 + 1 + 1 + path.len());
            out.push(OP_PING_OK);
            out.push(u8::from(epoch.engine.backend_kind() == "paged"));
            out.extend_from_slice(&(epoch.engine.node_count() as u64).to_le_bytes());
            out.extend_from_slice(&shared.started.elapsed().as_secs_f64().to_le_bytes());
            out.extend_from_slice(&epoch.epoch.to_le_bytes());
            out.push(shared.health().as_u8());
            out.push(u8::from(shared.brownout_active.load(Ordering::Relaxed)));
            out.extend_from_slice(path.as_bytes());
            write_frame(writer, &out)?;
        }
        OP_RELOAD => match std::str::from_utf8(body) {
            Err(_) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                write_error(writer, "reload path is not valid UTF-8")?;
            }
            Ok("") => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                write_error(writer, "reload needs a snapshot path")?;
            }
            Ok(path) => match shared.reload(Path::new(path)) {
                Ok((epoch, node_count, version)) => {
                    let mut out = Vec::with_capacity(1 + 8 + 8 + 4);
                    out.push(OP_RELOAD_OK);
                    out.extend_from_slice(&epoch.to_le_bytes());
                    out.extend_from_slice(&node_count.to_le_bytes());
                    out.extend_from_slice(&version.to_le_bytes());
                    write_frame(writer, &out)?;
                }
                Err(message) => write_error(writer, &format!("reload failed: {message}"))?,
            },
        },
        OP_STATS => {
            let json = stats_json(shared);
            let mut out = Vec::with_capacity(1 + json.len());
            out.push(OP_STATS_OK);
            out.extend_from_slice(json.as_bytes());
            write_frame(writer, &out)?;
        }
        OP_SHUTDOWN => {
            write_frame(writer, &[OP_SHUTDOWN_OK])?;
            writer.flush()?;
            trigger_shutdown(shared);
            return Ok(false);
        }
        other => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            write_error(writer, &format!("unknown opcode {other:#04x}"))?;
        }
    }
    Ok(true)
}

/// A parsed batch body: the request's deadline budget (`None` when absent
/// or zero) and its pairs.
type ParsedBatch = (Option<Duration>, Vec<(usize, usize)>);

/// Parses an `OP_BATCH`-shaped body — optionally prefixed by the
/// `u32 deadline_ms` of the deadline opcodes.
fn parse_batch_body(body: &[u8], with_deadline: bool) -> io::Result<ParsedBatch> {
    let mut reader = PayloadReader::new(body);
    let deadline_ms = if with_deadline { reader.u32()? } else { 0 };
    let count = reader.u32()? as usize;
    let header = if with_deadline { 8 } else { 4 };
    if body.len() < header || count * 16 != body.len() - header {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "batch count disagrees with payload size",
        ));
    }
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        pairs.push((reader.u64()? as usize, reader.u64()? as usize));
    }
    reader.finish()?;
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(u64::from(deadline_ms)));
    Ok((deadline, pairs))
}

/// Answers an all-or-nothing batch under a cancellation token. Outside
/// brownout this is the plain `OP_BATCH_OK`-or-abort path; under brownout
/// the batch runs in partial mode instead, so answers computed before
/// pressure (or the deadline) cut it short still ship — a complete run
/// still encodes as `OP_BATCH_OK`, bit-identical to the normal path.
fn answer_batch(
    writer: &mut impl Write,
    shared: &Shared,
    started: Instant,
    batch: &QueryBatch,
    cancel: &Arc<CancelToken>,
) -> io::Result<()> {
    let epoch = shared.current_epoch();
    if shared.brownout_active.load(Ordering::Relaxed) {
        return match epoch.engine.execute_partial_with_cancel(batch, cancel) {
            Ok(result) => {
                note_partial_outcome(shared, &result);
                if result.is_complete() {
                    let mut out = Vec::with_capacity(5 + result.statuses.len() * 8);
                    out.push(OP_BATCH_OK);
                    out.extend_from_slice(&(result.statuses.len() as u32).to_le_bytes());
                    for status in &result.statuses {
                        let value = status.as_ref().copied().unwrap_or(0.0);
                        out.extend_from_slice(&value.to_le_bytes());
                    }
                    write_frame(writer, &out)?;
                } else {
                    write_partial_batch(writer, shared, &result)?;
                }
                shared.latency.record(started.elapsed());
                Ok(())
            }
            Err(e) => {
                note_batch_error(shared, &e, batch.len() as u64);
                write_engine_error(writer, shared, &e)
            }
        };
    }
    match epoch.engine.execute_with_cancel(batch, cancel) {
        Ok(result) => {
            shared.note_batch_outcome(false);
            let mut out = Vec::with_capacity(5 + result.values.len() * 8);
            out.push(OP_BATCH_OK);
            out.extend_from_slice(&(result.values.len() as u32).to_le_bytes());
            for value in &result.values {
                out.extend_from_slice(&value.to_le_bytes());
            }
            write_frame(writer, &out)?;
            shared.latency.record(started.elapsed());
            Ok(())
        }
        Err(abort) => {
            note_batch_error(shared, &abort.error, abort.abandoned_pairs);
            write_engine_error(writer, shared, &abort.error)
        }
    }
}

/// Answers a partial-mode batch under a cancellation token.
fn answer_batch_partial(
    writer: &mut impl Write,
    shared: &Shared,
    started: Instant,
    batch: &QueryBatch,
    cancel: &Arc<CancelToken>,
) -> io::Result<()> {
    match shared
        .current_epoch()
        .engine
        .execute_partial_with_cancel(batch, cancel)
    {
        Ok(result) => {
            note_partial_outcome(shared, &result);
            write_partial_batch(writer, shared, &result)?;
            shared.latency.record(started.elapsed());
            Ok(())
        }
        Err(e) => {
            note_batch_error(shared, &e, batch.len() as u64);
            write_engine_error(writer, shared, &e)
        }
    }
}

/// Books a whole-batch failure: cancellations land in the lifecycle
/// counters, and sheds or deadline misses feed the brownout pressure EWMA
/// (a disconnect says nothing about server pressure, so it does not).
fn note_batch_error(shared: &Shared, error: &EffresError, abandoned: u64) {
    match error {
        EffresError::DeadlineExceeded { reason } => {
            shared.note_cancellation(*reason, abandoned);
            if !matches!(reason, CancelReason::Disconnected) {
                shared.note_batch_outcome(true);
            }
        }
        EffresError::Busy { .. } => shared.note_batch_outcome(true),
        _ => {}
    }
}

/// Books a partial batch's outcome: an abandoned tail counts as one
/// cancellation (with its cause and pair count), and the brownout EWMA
/// samples shed/miss pressure exactly as the all-or-nothing path does.
fn note_partial_outcome(shared: &Shared, result: &PartialBatchResult) {
    let abandoned = result.abandoned_pairs();
    if abandoned > 0 {
        let reason = result
            .statuses
            .iter()
            .find_map(|status| match status {
                Err(EffresError::DeadlineExceeded { reason }) => Some(*reason),
                _ => None,
            })
            .expect("abandoned pairs carry DeadlineExceeded statuses");
        shared.note_cancellation(reason, abandoned);
        shared.note_batch_outcome(!matches!(reason, CancelReason::Disconnected));
    } else {
        let shed = result
            .statuses
            .iter()
            .any(|status| matches!(status, Err(EffresError::Busy { .. })));
        shared.note_batch_outcome(shed);
    }
}

fn write_error(writer: &mut impl Write, message: &str) -> io::Result<()> {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(OP_ERROR);
    out.extend_from_slice(message.as_bytes());
    write_frame(writer, &out)
}

fn write_busy(writer: &mut impl Write, message: &str) -> io::Result<()> {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(OP_BUSY);
    out.extend_from_slice(message.as_bytes());
    write_frame(writer, &out)
}

fn write_deadline(writer: &mut impl Write, message: &str) -> io::Result<()> {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(OP_DEADLINE);
    out.extend_from_slice(message.as_bytes());
    write_frame(writer, &out)
}

/// Maps a typed engine failure onto the wire: overload draws [`OP_BUSY`]
/// (the request was fine; back off), a cancelled request [`OP_DEADLINE`]
/// (retrying as-is is pointless), everything else [`OP_ERROR`]. Counts the
/// per-cause statistic either way (cancellation counters are booked by the
/// batch paths, which know the abandoned-pair count).
fn write_engine_error(
    writer: &mut impl Write,
    shared: &Shared,
    error: &EffresError,
) -> io::Result<()> {
    match error {
        EffresError::Busy { .. } => {
            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            write_busy(writer, &error.to_string())
        }
        EffresError::DeadlineExceeded { .. } => write_deadline(writer, &error.to_string()),
        EffresError::StoreFailure { .. } => {
            shared.store_failures.fetch_add(1, Ordering::Relaxed);
            write_error(writer, &error.to_string())
        }
        other => write_error(writer, &other.to_string()),
    }
}

/// Status byte for one partial-batch query outcome.
fn partial_status(status: &Result<f64, EffresError>) -> u8 {
    match status {
        Ok(_) => STATUS_OK,
        Err(EffresError::StoreFailure { .. }) => STATUS_STORE_FAILURE,
        Err(EffresError::NodeOutOfBounds { .. }) => STATUS_OUT_OF_BOUNDS,
        Err(EffresError::Busy { .. }) => STATUS_BUSY,
        Err(EffresError::DeadlineExceeded { .. }) => STATUS_DEADLINE,
        Err(_) => STATUS_OTHER,
    }
}

/// Encodes an [`OP_BATCH_PARTIAL_OK`] response: per-query status bytes,
/// values (0.0 where failed), and the first failure's message. Bumps the
/// per-cause counters for every failed query.
fn write_partial_batch(
    writer: &mut impl Write,
    shared: &Shared,
    result: &PartialBatchResult,
) -> io::Result<()> {
    let count = result.statuses.len();
    let mut failed: u32 = 0;
    let mut first_failure = String::new();
    let mut out = Vec::with_capacity(1 + 8 + count * 9);
    out.push(OP_BATCH_PARTIAL_OK);
    out.extend_from_slice(&(count as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // patched below
    for status in &result.statuses {
        out.push(partial_status(status));
        if let Err(e) = status {
            failed += 1;
            if first_failure.is_empty() {
                first_failure = e.to_string();
            }
            match e {
                EffresError::StoreFailure { .. } => {
                    shared.store_failures.fetch_add(1, Ordering::Relaxed);
                }
                EffresError::Busy { .. } => {
                    shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
    }
    out[5..9].copy_from_slice(&failed.to_le_bytes());
    for status in &result.statuses {
        out.extend_from_slice(&status.as_ref().copied().unwrap_or(0.0).to_le_bytes());
    }
    out.extend_from_slice(first_failure.as_bytes());
    if failed > 0 {
        shared.partial_batches.fetch_add(1, Ordering::Relaxed);
    }
    write_frame(writer, &out)
}

/// Encodes `s` as a JSON string literal (quotes, backslashes and control
/// characters escaped — enough for arbitrary snapshot paths).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to string");
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the stats document: plain JSON with stable keys, no external
/// dependencies (numbers and a fixed vocabulary of strings only).
fn stats_json(shared: &Shared) -> String {
    let epoch = shared.current_epoch();
    let service = epoch.engine.stats();
    let latency = shared.latency.snapshot();
    let uptime = shared.started.elapsed().as_secs_f64();
    let mut out = String::with_capacity(1024);
    out.push('{');
    write!(
        out,
        "\"backend\":\"{}\",\"nodes\":{},\"snapshot_version\":{},\"snapshot_path\":{},",
        epoch.engine.backend_kind(),
        epoch.engine.node_count(),
        epoch
            .snapshot_version
            .map_or("null".to_string(), |v| v.to_string()),
        epoch
            .snapshot_path
            .as_ref()
            .map_or("null".to_string(), |p| json_string(&p.to_string_lossy())),
    )
    .expect("write to string");
    write!(
        out,
        "\"epoch\":{},\"reloads\":{},\"health\":\"{}\",",
        epoch.epoch,
        shared.reloads.load(Ordering::Relaxed),
        shared.health().as_str(),
    )
    .expect("write to string");
    match epoch.engine.scrub_stats() {
        Some(s) => write!(
            out,
            "\"scrubber\":{{\"pages_scrubbed\":{},\"scrub_failures\":{},\"quarantined\":{}}},",
            s.pages_scrubbed, s.scrub_failures, s.quarantined,
        )
        .expect("write to string"),
        None => out.push_str("\"scrubber\":null,"),
    }
    write!(
        out,
        "\"uptime_secs\":{uptime:.3},\"connections\":{},\"requests\":{},",
        shared.connections.load(Ordering::Relaxed),
        shared.requests.load(Ordering::Relaxed),
    )
    .expect("write to string");
    write!(
        out,
        "\"errors\":{{\"protocol\":{},\"frame\":{},\"deadline_closes\":{},\"idle_closes\":{},\
         \"busy_rejections\":{},\"store_failures\":{},\"partial_batches\":{}}},",
        shared.protocol_errors.load(Ordering::Relaxed),
        shared.frame_errors.load(Ordering::Relaxed),
        shared.deadline_closes.load(Ordering::Relaxed),
        shared.idle_closes.load(Ordering::Relaxed),
        shared.busy_rejections.load(Ordering::Relaxed),
        shared.store_failures.load(Ordering::Relaxed),
        shared.partial_batches.load(Ordering::Relaxed),
    )
    .expect("write to string");
    write!(
        out,
        "\"lifecycle\":{{\"cancelled_batches\":{},\"deadline_exceeded\":{},\
         \"disconnect_cancels\":{},\"abandoned_pairs\":{},\"brownout_entries\":{},\
         \"brownout_exits\":{},\"brownout_active\":{}}},",
        shared.cancelled_batches.load(Ordering::Relaxed),
        shared.deadline_exceeded.load(Ordering::Relaxed),
        shared.disconnect_cancels.load(Ordering::Relaxed),
        shared.abandoned_pairs.load(Ordering::Relaxed),
        shared.brownout_entries.load(Ordering::Relaxed),
        shared.brownout_exits.load(Ordering::Relaxed),
        shared.brownout_active.load(Ordering::Relaxed),
    )
    .expect("write to string");
    write!(
        out,
        "\"service\":{{\"queries\":{},\"batches\":{},\"pair_cache_hits\":{},\
         \"pair_cache_misses\":{},\"pair_cache_entries\":{},\"pair_cache_capacity\":{},\
         \"page_cache_hits\":{},\"page_cache_misses\":{},\"page_bytes_read\":{},\
         \"page_readahead_reads\":{},\"page_retries\":{},\"page_faulted_reads\":{}}},",
        service.queries,
        service.batches,
        service.cache_hits,
        service.cache_misses,
        service.cache_entries,
        service.cache_capacity,
        service.page_cache_hits,
        service.page_cache_misses,
        service.page_bytes_read,
        service.page_readahead_reads,
        service.page_retries,
        service.page_faulted_reads,
    )
    .expect("write to string");
    match epoch.engine.admission_stats() {
        Some(a) => write!(
            out,
            "\"admission\":{{\"budget\":{},\"available\":{},\"waiting\":{},\"leases\":{},\
             \"queued\":{},\"shed_queue_full\":{},\"shed_timeout\":{},\"shed_doomed\":{}}},",
            a.budget,
            a.available,
            a.waiting,
            a.leases,
            a.queued,
            a.shed_queue_full,
            a.shed_timeout,
            a.shed_doomed
        )
        .expect("write to string"),
        None => out.push_str("\"admission\":null,"),
    }
    write!(
        out,
        "\"latency_us\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{},\
         \"max\":{}}},",
        latency.count,
        latency.mean_micros(),
        latency.quantile_micros(0.50),
        latency.quantile_micros(0.95),
        latency.quantile_micros(0.99),
        latency.max_micros,
    )
    .expect("write to string");
    let qps = if uptime > 0.0 {
        service.queries as f64 / uptime
    } else {
        0.0
    };
    write!(out, "\"throughput_qps\":{qps:.1}}}").expect("write to string");
    out
}
