//! The serving loop: a TCP listener multiplexing every connection onto one
//! shared [`QueryEngine`].
//!
//! Each accepted connection gets a handler thread that parses frames (see
//! [`crate::protocol`]), answers them against the shared engine, and
//! records per-request latency into a process-wide
//! [`LatencyHistogram`]. The engine is the concurrency story: it is
//! `Sync`, batches fan out on its worker pool, the pair cache is sharded,
//! and — on the paged backend — concurrent batches lease pin capacity from
//! the engine's admission ledger, so many clients can run large batches
//! without over-pinning the page cache.
//!
//! Shutdown is cooperative: an [`OP_SHUTDOWN`]
//! request (or [`ServerHandle::shutdown`]) sets a flag, the listener is
//! woken with a loopback connection, and [`Server::run`] drains: it stops
//! accepting, every handler notices the flag within its poll interval
//! (200 ms) once its requests are answered, and `run` joins them all before
//! returning — so when the process exits, no request was dropped mid-frame.
//!
//! The [`OP_STATS`] response is a JSON object
//! (stable keys, no external dependencies) carrying the backend identity
//! (including the snapshot format version), cumulative service counters,
//! admission-ledger state, the latency quantiles (p50/p95/p99 in
//! microseconds) and overall queries-per-second throughput.

use crate::protocol::{
    write_frame, PayloadReader, MAX_FRAME_BYTES, OP_BATCH, OP_BATCH_OK, OP_ERROR, OP_HELLO,
    OP_HELLO_OK, OP_QUERY, OP_QUERY_OK, OP_SHUTDOWN, OP_SHUTDOWN_OK, OP_STATS, OP_STATS_OK,
};
use effres::{EffectiveResistanceEstimator, EffresError};
use effres_io::PagedSnapshot;
use effres_service::{
    AdmissionStats, BatchResult, LatencyHistogram, QueryBatch, QueryEngine, ServiceStats,
};
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often an idle connection handler re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// The engine behind a server: resident or paged, one shared instance.
///
/// Batches on the paged variant run through the locality scheduler
/// (`execute_scheduled`), which is both the fast path and the one that
/// leases pin capacity from the admission ledger; the resident variant has
/// no pages to schedule and uses plain parallel execution.
#[derive(Debug)]
pub enum ServedEngine {
    /// In-memory arena backend.
    Resident(QueryEngine<EffectiveResistanceEstimator>),
    /// Out-of-core paged-snapshot backend.
    Paged(QueryEngine<PagedSnapshot>),
}

impl ServedEngine {
    /// Number of nodes served (dense ids are `0..node_count`).
    pub fn node_count(&self) -> usize {
        match self {
            ServedEngine::Resident(engine) => engine.node_count(),
            ServedEngine::Paged(engine) => engine.node_count(),
        }
    }

    /// `"resident"` or `"paged"`.
    pub fn backend_kind(&self) -> &'static str {
        match self {
            ServedEngine::Resident(_) => "resident",
            ServedEngine::Paged(_) => "paged",
        }
    }

    /// Answers one pair query (dense ids).
    pub fn query(&self, p: usize, q: usize) -> Result<f64, EffresError> {
        match self {
            ServedEngine::Resident(engine) => engine.query(p, q),
            ServedEngine::Paged(engine) => engine.query(p, q),
        }
    }

    /// Executes a batch — scheduled on the paged backend, plain on the
    /// resident one.
    pub fn execute(&self, batch: &QueryBatch) -> Result<BatchResult, EffresError> {
        match self {
            ServedEngine::Resident(engine) => engine.execute(batch),
            ServedEngine::Paged(engine) => engine.execute_scheduled(batch),
        }
    }

    /// Cumulative service counters.
    pub fn stats(&self) -> ServiceStats {
        match self {
            ServedEngine::Resident(engine) => engine.stats(),
            ServedEngine::Paged(engine) => engine.stats(),
        }
    }

    /// Per-interval service counters (see
    /// [`QueryEngine::take_service_stats`]).
    pub fn take_service_stats(&self) -> ServiceStats {
        match self {
            ServedEngine::Resident(engine) => engine.take_service_stats(),
            ServedEngine::Paged(engine) => engine.take_service_stats(),
        }
    }

    /// Admission-ledger counters (paged backends only).
    pub fn admission_stats(&self) -> Option<AdmissionStats> {
        match self {
            ServedEngine::Resident(engine) => engine.admission_stats(),
            ServedEngine::Paged(engine) => engine.admission_stats(),
        }
    }
}

/// State shared by the accept loop and every connection handler.
#[derive(Debug)]
struct Shared {
    engine: ServedEngine,
    /// Snapshot format version of the file being served (v1/v2/v3); `None`
    /// for estimators built in memory.
    snapshot_version: Option<u32>,
    latency: LatencyHistogram,
    started: Instant,
    shutdown: AtomicBool,
    addr: SocketAddr,
    connections: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A bound, not-yet-running server. [`Server::run`] blocks until shutdown.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cheap handle onto a running (or about-to-run) server: lets another
/// thread observe the bound address, read stats, or trigger shutdown.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over a
    /// shared engine. `snapshot_version` names the on-disk format being
    /// served, when the engine came from a snapshot file.
    pub fn bind(
        addr: &str,
        engine: ServedEngine,
        snapshot_version: Option<u32>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                engine,
                snapshot_version,
                latency: LatencyHistogram::new(),
                started: Instant::now(),
                shutdown: AtomicBool::new(false),
                addr,
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                protocol_errors: AtomicU64::new(0),
            }),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The engine being served.
    pub fn engine(&self) -> &ServedEngine {
        &self.shared.engine
    }

    /// A handle for observing or shutting down the server from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until shutdown: accepts connections, one handler thread each,
    /// then joins every handler so no request is dropped mid-frame. Returns
    /// the final stats JSON (the same document [`OP_STATS`] serves).
    pub fn run(self) -> io::Result<String> {
        let mut handlers = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection; stop accepting
            }
            self.shared.connections.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            handlers.push(std::thread::spawn(move || {
                // Connection failures (peer reset, malformed framing) end
                // that connection only; the server keeps serving.
                let _ = serve_connection(stream, &shared);
            }));
        }
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(stats_json(&self.shared))
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The current stats JSON (same document [`OP_STATS`] serves).
    pub fn stats_json(&self) -> String {
        stats_json(&self.shared)
    }

    /// Requests shutdown and wakes the accept loop. Idempotent.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }
}

fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // Wake the blocking accept with a throwaway loopback connection; if it
    // fails (listener already gone), shutdown is underway anyway.
    let _ = TcpStream::connect(shared.addr);
}

/// Serves one connection until the peer closes, the stream fails, or the
/// server shuts down. Reads are chunked with a poll timeout so the handler
/// notices the shutdown flag while idle; the frame buffer survives partial
/// reads, so a slow sender cannot desynchronize the framing.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut writer = io::BufWriter::new(stream.try_clone()?);
    let mut stream = stream;
    let mut buffer: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; 64 << 10];
    loop {
        while let Some(consumed) = frame_length(&buffer)? {
            let payload: Vec<u8> = buffer.drain(..consumed).skip(4).collect();
            shared.requests.fetch_add(1, Ordering::Relaxed);
            let proceed = handle_request(&payload, shared, &mut writer)?;
            writer.flush()?;
            if !proceed {
                return Ok(());
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
}

/// Length of the first complete frame in `buffer` (prefix + payload), or
/// `None` if more bytes are needed; errors on an oversized length prefix.
fn frame_length(buffer: &[u8]) -> io::Result<Option<usize>> {
    if buffer.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buffer[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    Ok(if buffer.len() >= 4 + len {
        Some(4 + len)
    } else {
        None
    })
}

/// Answers one request; returns `false` when the connection should close
/// (after a shutdown ack).
fn handle_request(payload: &[u8], shared: &Shared, writer: &mut impl Write) -> io::Result<bool> {
    let Some((&opcode, body)) = payload.split_first() else {
        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return write_error(writer, "empty frame").map(|()| true);
    };
    match opcode {
        OP_HELLO => {
            let mut out = Vec::with_capacity(1 + 8 + 1 + 4);
            out.push(OP_HELLO_OK);
            out.extend_from_slice(&(shared.engine.node_count() as u64).to_le_bytes());
            out.push(u8::from(shared.engine.backend_kind() == "paged"));
            out.extend_from_slice(&shared.snapshot_version.unwrap_or(0).to_le_bytes());
            write_frame(writer, &out)?;
        }
        OP_QUERY => {
            let started = Instant::now();
            let mut reader = PayloadReader::new(body);
            let parsed = (|| -> io::Result<(u64, u64)> {
                let p = reader.u64()?;
                let q = reader.u64()?;
                reader.finish()?;
                Ok((p, q))
            })();
            match parsed {
                Err(e) => {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    write_error(writer, &format!("malformed query: {e}"))?;
                }
                Ok((p, q)) => match shared.engine.query(p as usize, q as usize) {
                    Ok(value) => {
                        let mut out = Vec::with_capacity(9);
                        out.push(OP_QUERY_OK);
                        out.extend_from_slice(&value.to_le_bytes());
                        write_frame(writer, &out)?;
                        shared.latency.record(started.elapsed());
                    }
                    Err(e) => write_error(writer, &e.to_string())?,
                },
            }
        }
        OP_BATCH => {
            let started = Instant::now();
            let mut reader = PayloadReader::new(body);
            let parsed = (|| -> io::Result<Vec<(usize, usize)>> {
                let count = reader.u32()? as usize;
                if count * 16 != body.len() - 4 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "batch count disagrees with payload size",
                    ));
                }
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    pairs.push((reader.u64()? as usize, reader.u64()? as usize));
                }
                reader.finish()?;
                Ok(pairs)
            })();
            match parsed {
                Err(e) => {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    write_error(writer, &format!("malformed batch: {e}"))?;
                }
                Ok(pairs) => {
                    let batch = QueryBatch::from_pairs(pairs);
                    match shared.engine.execute(&batch) {
                        Ok(result) => {
                            let mut out = Vec::with_capacity(5 + result.values.len() * 8);
                            out.push(OP_BATCH_OK);
                            out.extend_from_slice(&(result.values.len() as u32).to_le_bytes());
                            for value in &result.values {
                                out.extend_from_slice(&value.to_le_bytes());
                            }
                            write_frame(writer, &out)?;
                            shared.latency.record(started.elapsed());
                        }
                        Err(e) => write_error(writer, &e.to_string())?,
                    }
                }
            }
        }
        OP_STATS => {
            let json = stats_json(shared);
            let mut out = Vec::with_capacity(1 + json.len());
            out.push(OP_STATS_OK);
            out.extend_from_slice(json.as_bytes());
            write_frame(writer, &out)?;
        }
        OP_SHUTDOWN => {
            write_frame(writer, &[OP_SHUTDOWN_OK])?;
            writer.flush()?;
            trigger_shutdown(shared);
            return Ok(false);
        }
        other => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            write_error(writer, &format!("unknown opcode {other:#04x}"))?;
        }
    }
    Ok(true)
}

fn write_error(writer: &mut impl Write, message: &str) -> io::Result<()> {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(OP_ERROR);
    out.extend_from_slice(message.as_bytes());
    write_frame(writer, &out)
}

/// Renders the stats document: plain JSON with stable keys, no external
/// dependencies (numbers and a fixed vocabulary of strings only).
fn stats_json(shared: &Shared) -> String {
    let service = shared.engine.stats();
    let latency = shared.latency.snapshot();
    let uptime = shared.started.elapsed().as_secs_f64();
    let mut out = String::with_capacity(1024);
    out.push('{');
    write!(
        out,
        "\"backend\":\"{}\",\"nodes\":{},\"snapshot_version\":{},",
        shared.engine.backend_kind(),
        shared.engine.node_count(),
        shared
            .snapshot_version
            .map_or("null".to_string(), |v| v.to_string()),
    )
    .expect("write to string");
    write!(
        out,
        "\"uptime_secs\":{uptime:.3},\"connections\":{},\"requests\":{},\"protocol_errors\":{},",
        shared.connections.load(Ordering::Relaxed),
        shared.requests.load(Ordering::Relaxed),
        shared.protocol_errors.load(Ordering::Relaxed),
    )
    .expect("write to string");
    write!(
        out,
        "\"service\":{{\"queries\":{},\"batches\":{},\"pair_cache_hits\":{},\
         \"pair_cache_misses\":{},\"pair_cache_entries\":{},\"pair_cache_capacity\":{},\
         \"page_cache_hits\":{},\"page_cache_misses\":{},\"page_bytes_read\":{},\
         \"page_readahead_reads\":{}}},",
        service.queries,
        service.batches,
        service.cache_hits,
        service.cache_misses,
        service.cache_entries,
        service.cache_capacity,
        service.page_cache_hits,
        service.page_cache_misses,
        service.page_bytes_read,
        service.page_readahead_reads,
    )
    .expect("write to string");
    match shared.engine.admission_stats() {
        Some(a) => write!(
            out,
            "\"admission\":{{\"budget\":{},\"available\":{},\"waiting\":{},\"leases\":{},\
             \"queued\":{}}},",
            a.budget, a.available, a.waiting, a.leases, a.queued
        )
        .expect("write to string"),
        None => out.push_str("\"admission\":null,"),
    }
    write!(
        out,
        "\"latency_us\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{},\
         \"max\":{}}},",
        latency.count,
        latency.mean_micros(),
        latency.quantile_micros(0.50),
        latency.quantile_micros(0.95),
        latency.quantile_micros(0.99),
        latency.max_micros,
    )
    .expect("write to string");
    let qps = if uptime > 0.0 {
        service.queries as f64 / uptime
    } else {
        0.0
    };
    write!(out, "\"throughput_qps\":{qps:.1}}}").expect("write to string");
    out
}
