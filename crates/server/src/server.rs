//! The serving loop: a TCP listener multiplexing every connection onto one
//! shared [`QueryEngine`].
//!
//! Each accepted connection gets a handler thread that parses frames (see
//! [`crate::protocol`]), answers them against the shared engine, and
//! records per-request latency into a process-wide
//! [`LatencyHistogram`]. The engine is the concurrency story: it is
//! `Sync`, batches fan out on its worker pool, the pair cache is sharded,
//! and — on the paged backend — concurrent batches lease pin capacity from
//! the engine's admission ledger, so many clients can run large batches
//! without over-pinning the page cache.
//!
//! Shutdown is cooperative: an [`OP_SHUTDOWN`]
//! request (or [`ServerHandle::shutdown`]) sets a flag, the listener is
//! woken with a loopback connection, and [`Server::run`] drains: it stops
//! accepting, every handler notices the flag within its poll interval
//! (200 ms) once its requests are answered, and `run` joins them all before
//! returning — so when the process exits, no request was dropped mid-frame.
//!
//! The [`OP_STATS`] response is a JSON object
//! (stable keys, no external dependencies) carrying the backend identity
//! (including the snapshot format version), cumulative service counters,
//! admission-ledger state, the latency quantiles (p50/p95/p99 in
//! microseconds) and overall queries-per-second throughput.

use crate::protocol::{
    write_frame, PayloadReader, MAX_FRAME_BYTES, OP_BATCH, OP_BATCH_OK, OP_BATCH_PARTIAL,
    OP_BATCH_PARTIAL_OK, OP_BUSY, OP_ERROR, OP_HELLO, OP_HELLO_OK, OP_PING, OP_PING_OK, OP_QUERY,
    OP_QUERY_OK, OP_SHUTDOWN, OP_SHUTDOWN_OK, OP_STATS, OP_STATS_OK, STATUS_BUSY, STATUS_OK,
    STATUS_OTHER, STATUS_OUT_OF_BOUNDS, STATUS_STORE_FAILURE,
};
use effres::{EffectiveResistanceEstimator, EffresError};
use effres_io::PagedSnapshot;
use effres_service::{
    AdmissionStats, BatchResult, LatencyHistogram, PartialBatchResult, QueryBatch, QueryEngine,
    ServiceStats,
};
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often an idle connection handler re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Connection-level tuning of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// How long a connection may sit **mid-frame** (a length prefix
    /// arrived, the payload did not finish) before the server closes it. A
    /// client that stalls mid-payload used to park its handler thread
    /// forever; now it is cut loose and counted
    /// (`deadline_closes` in the stats document).
    pub frame_deadline: Duration,
    /// How long a connection may sit **idle** (no request in flight, empty
    /// receive buffer) before the server closes it to reclaim the handler
    /// thread (`idle_closes` in the stats document). Healthy clients
    /// reconnect transparently ([`crate::Client::connect_with`]).
    pub idle_deadline: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            frame_deadline: Duration::from_secs(10),
            idle_deadline: Duration::from_secs(300),
        }
    }
}

/// The engine behind a server: resident or paged, one shared instance.
///
/// Batches on the paged variant run through the locality scheduler
/// (`execute_scheduled`), which is both the fast path and the one that
/// leases pin capacity from the admission ledger; the resident variant has
/// no pages to schedule and uses plain parallel execution.
#[derive(Debug)]
pub enum ServedEngine {
    /// In-memory arena backend.
    Resident(QueryEngine<EffectiveResistanceEstimator>),
    /// Out-of-core paged-snapshot backend.
    Paged(QueryEngine<PagedSnapshot>),
}

impl ServedEngine {
    /// Number of nodes served (dense ids are `0..node_count`).
    pub fn node_count(&self) -> usize {
        match self {
            ServedEngine::Resident(engine) => engine.node_count(),
            ServedEngine::Paged(engine) => engine.node_count(),
        }
    }

    /// `"resident"` or `"paged"`.
    pub fn backend_kind(&self) -> &'static str {
        match self {
            ServedEngine::Resident(_) => "resident",
            ServedEngine::Paged(_) => "paged",
        }
    }

    /// Answers one pair query (dense ids).
    pub fn query(&self, p: usize, q: usize) -> Result<f64, EffresError> {
        match self {
            ServedEngine::Resident(engine) => engine.query(p, q),
            ServedEngine::Paged(engine) => engine.query(p, q),
        }
    }

    /// Executes a batch — scheduled on the paged backend, plain on the
    /// resident one.
    pub fn execute(&self, batch: &QueryBatch) -> Result<BatchResult, EffresError> {
        match self {
            ServedEngine::Resident(engine) => engine.execute(batch),
            ServedEngine::Paged(engine) => engine.execute_scheduled(batch),
        }
    }

    /// Executes a batch in partial-results mode: per-query statuses instead
    /// of all-or-nothing (see
    /// [`QueryEngine::execute_partial`] and
    /// `QueryEngine::<PagedSnapshot>::execute_scheduled_partial`).
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::Busy`] when bounded admission shed the whole
    /// batch before any work.
    pub fn execute_partial(&self, batch: &QueryBatch) -> Result<PartialBatchResult, EffresError> {
        match self {
            ServedEngine::Resident(engine) => Ok(engine.execute_partial(batch)),
            ServedEngine::Paged(engine) => engine.execute_scheduled_partial(batch),
        }
    }

    /// Cumulative service counters.
    pub fn stats(&self) -> ServiceStats {
        match self {
            ServedEngine::Resident(engine) => engine.stats(),
            ServedEngine::Paged(engine) => engine.stats(),
        }
    }

    /// Per-interval service counters (see
    /// [`QueryEngine::take_service_stats`]).
    pub fn take_service_stats(&self) -> ServiceStats {
        match self {
            ServedEngine::Resident(engine) => engine.take_service_stats(),
            ServedEngine::Paged(engine) => engine.take_service_stats(),
        }
    }

    /// Admission-ledger counters (paged backends only).
    pub fn admission_stats(&self) -> Option<AdmissionStats> {
        match self {
            ServedEngine::Resident(engine) => engine.admission_stats(),
            ServedEngine::Paged(engine) => engine.admission_stats(),
        }
    }
}

/// State shared by the accept loop and every connection handler.
#[derive(Debug)]
struct Shared {
    engine: ServedEngine,
    /// Snapshot format version of the file being served (v1/v2/v3); `None`
    /// for estimators built in memory.
    snapshot_version: Option<u32>,
    options: ServerOptions,
    latency: LatencyHistogram,
    started: Instant,
    shutdown: AtomicBool,
    addr: SocketAddr,
    connections: AtomicU64,
    requests: AtomicU64,
    /// Malformed requests: empty frames, bad bodies, unknown opcodes.
    protocol_errors: AtomicU64,
    /// Connections dropped at the framing layer: oversized length prefix,
    /// or a hard stream error mid-read.
    frame_errors: AtomicU64,
    /// Connections closed because a frame stalled mid-payload past
    /// [`ServerOptions::frame_deadline`].
    deadline_closes: AtomicU64,
    /// Connections closed after sitting idle past
    /// [`ServerOptions::idle_deadline`].
    idle_closes: AtomicU64,
    /// Requests answered with [`OP_BUSY`] (admission shed).
    busy_rejections: AtomicU64,
    /// Queries that failed with a typed store failure (exhausted retries,
    /// persistent corruption) — whole-request for `OP_QUERY`/`OP_BATCH`,
    /// per-query for `OP_BATCH_PARTIAL`.
    store_failures: AtomicU64,
    /// Partial batches that carried at least one failed query.
    partial_batches: AtomicU64,
}

/// A bound, not-yet-running server. [`Server::run`] blocks until shutdown.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cheap handle onto a running (or about-to-run) server: lets another
/// thread observe the bound address, read stats, or trigger shutdown.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over a
    /// shared engine with default [`ServerOptions`]. `snapshot_version`
    /// names the on-disk format being served, when the engine came from a
    /// snapshot file.
    pub fn bind(
        addr: &str,
        engine: ServedEngine,
        snapshot_version: Option<u32>,
    ) -> io::Result<Server> {
        Server::bind_with(addr, engine, snapshot_version, ServerOptions::default())
    }

    /// [`Server::bind`] with explicit connection deadlines.
    pub fn bind_with(
        addr: &str,
        engine: ServedEngine,
        snapshot_version: Option<u32>,
        options: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                engine,
                snapshot_version,
                options,
                latency: LatencyHistogram::new(),
                started: Instant::now(),
                shutdown: AtomicBool::new(false),
                addr,
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                protocol_errors: AtomicU64::new(0),
                frame_errors: AtomicU64::new(0),
                deadline_closes: AtomicU64::new(0),
                idle_closes: AtomicU64::new(0),
                busy_rejections: AtomicU64::new(0),
                store_failures: AtomicU64::new(0),
                partial_batches: AtomicU64::new(0),
            }),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The engine being served.
    pub fn engine(&self) -> &ServedEngine {
        &self.shared.engine
    }

    /// A handle for observing or shutting down the server from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until shutdown: accepts connections, one handler thread each,
    /// then joins every handler so no request is dropped mid-frame. Returns
    /// the final stats JSON (the same document [`OP_STATS`] serves).
    pub fn run(self) -> io::Result<String> {
        let mut handlers = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection; stop accepting
            }
            self.shared.connections.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            handlers.push(std::thread::spawn(move || {
                // Connection failures (peer reset, malformed framing) end
                // that connection only; the server keeps serving.
                let _ = serve_connection(stream, &shared);
            }));
        }
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(stats_json(&self.shared))
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The current stats JSON (same document [`OP_STATS`] serves).
    pub fn stats_json(&self) -> String {
        stats_json(&self.shared)
    }

    /// Requests shutdown and wakes the accept loop. Idempotent.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }
}

fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // Wake the blocking accept with a throwaway loopback connection; if it
    // fails (listener already gone), shutdown is underway anyway.
    let _ = TcpStream::connect(shared.addr);
}

/// Serves one connection until the peer closes, the stream fails, a
/// deadline expires, or the server shuts down. Reads are chunked with a
/// poll timeout so the handler notices the shutdown flag while idle; the
/// frame buffer survives partial reads, so a slow sender cannot
/// desynchronize the framing.
///
/// Two deadlines bound how long a handler thread can be held hostage
/// (before PR 7, a client that sent a length prefix and then stalled parked
/// its handler forever): a connection **mid-frame** for longer than
/// [`ServerOptions::frame_deadline`] is cut loose and counted in
/// `deadline_closes`; a connection **idle** past
/// [`ServerOptions::idle_deadline`] is closed and counted in `idle_closes`.
/// Both clocks reset on every received byte.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut writer = io::BufWriter::new(stream.try_clone()?);
    let mut stream = stream;
    let mut buffer: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; 64 << 10];
    let mut last_activity = Instant::now();
    loop {
        loop {
            let consumed = match frame_length(&buffer) {
                Ok(Some(consumed)) => consumed,
                Ok(None) => break,
                Err(e) => {
                    // Oversized length prefix (or hostile garbage decoding
                    // as one): tell the peer, count it, drop the link —
                    // the framing cannot resynchronize past it.
                    shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = write_error(&mut writer, &e.to_string());
                    let _ = writer.flush();
                    return Err(e);
                }
            };
            let payload: Vec<u8> = buffer.drain(..consumed).skip(4).collect();
            shared.requests.fetch_add(1, Ordering::Relaxed);
            let proceed = handle_request(&payload, shared, &mut writer)?;
            writer.flush()?;
            last_activity = Instant::now();
            if !proceed {
                return Ok(());
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let deadline = if buffer.is_empty() {
            shared.options.idle_deadline
        } else {
            shared.options.frame_deadline
        };
        if last_activity.elapsed() >= deadline {
            if buffer.is_empty() {
                shared.idle_closes.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.deadline_closes.fetch_add(1, Ordering::Relaxed);
                let _ = write_error(&mut writer, "frame deadline exceeded mid-payload");
                let _ = writer.flush();
            }
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                buffer.extend_from_slice(&chunk[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => {
                shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        }
    }
}

/// Length of the first complete frame in `buffer` (prefix + payload), or
/// `None` if more bytes are needed; errors on an oversized length prefix.
fn frame_length(buffer: &[u8]) -> io::Result<Option<usize>> {
    if buffer.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buffer[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    Ok(if buffer.len() >= 4 + len {
        Some(4 + len)
    } else {
        None
    })
}

/// Answers one request; returns `false` when the connection should close
/// (after a shutdown ack).
fn handle_request(payload: &[u8], shared: &Shared, writer: &mut impl Write) -> io::Result<bool> {
    let Some((&opcode, body)) = payload.split_first() else {
        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return write_error(writer, "empty frame").map(|()| true);
    };
    match opcode {
        OP_HELLO => {
            let mut out = Vec::with_capacity(1 + 8 + 1 + 4);
            out.push(OP_HELLO_OK);
            out.extend_from_slice(&(shared.engine.node_count() as u64).to_le_bytes());
            out.push(u8::from(shared.engine.backend_kind() == "paged"));
            out.extend_from_slice(&shared.snapshot_version.unwrap_or(0).to_le_bytes());
            write_frame(writer, &out)?;
        }
        OP_QUERY => {
            let started = Instant::now();
            let mut reader = PayloadReader::new(body);
            let parsed = (|| -> io::Result<(u64, u64)> {
                let p = reader.u64()?;
                let q = reader.u64()?;
                reader.finish()?;
                Ok((p, q))
            })();
            match parsed {
                Err(e) => {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    write_error(writer, &format!("malformed query: {e}"))?;
                }
                Ok((p, q)) => match shared.engine.query(p as usize, q as usize) {
                    Ok(value) => {
                        let mut out = Vec::with_capacity(9);
                        out.push(OP_QUERY_OK);
                        out.extend_from_slice(&value.to_le_bytes());
                        write_frame(writer, &out)?;
                        shared.latency.record(started.elapsed());
                    }
                    Err(e) => write_engine_error(writer, shared, &e)?,
                },
            }
        }
        OP_BATCH => {
            let started = Instant::now();
            let mut reader = PayloadReader::new(body);
            let parsed = (|| -> io::Result<Vec<(usize, usize)>> {
                let count = reader.u32()? as usize;
                if count * 16 != body.len() - 4 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "batch count disagrees with payload size",
                    ));
                }
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    pairs.push((reader.u64()? as usize, reader.u64()? as usize));
                }
                reader.finish()?;
                Ok(pairs)
            })();
            match parsed {
                Err(e) => {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    write_error(writer, &format!("malformed batch: {e}"))?;
                }
                Ok(pairs) => {
                    let batch = QueryBatch::from_pairs(pairs);
                    match shared.engine.execute(&batch) {
                        Ok(result) => {
                            let mut out = Vec::with_capacity(5 + result.values.len() * 8);
                            out.push(OP_BATCH_OK);
                            out.extend_from_slice(&(result.values.len() as u32).to_le_bytes());
                            for value in &result.values {
                                out.extend_from_slice(&value.to_le_bytes());
                            }
                            write_frame(writer, &out)?;
                            shared.latency.record(started.elapsed());
                        }
                        Err(e) => write_engine_error(writer, shared, &e)?,
                    }
                }
            }
        }
        OP_BATCH_PARTIAL => {
            let started = Instant::now();
            let mut reader = PayloadReader::new(body);
            let parsed = (|| -> io::Result<Vec<(usize, usize)>> {
                let count = reader.u32()? as usize;
                if count * 16 != body.len() - 4 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "batch count disagrees with payload size",
                    ));
                }
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    pairs.push((reader.u64()? as usize, reader.u64()? as usize));
                }
                reader.finish()?;
                Ok(pairs)
            })();
            match parsed {
                Err(e) => {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    write_error(writer, &format!("malformed batch: {e}"))?;
                }
                Ok(pairs) => {
                    let batch = QueryBatch::from_pairs(pairs);
                    match shared.engine.execute_partial(&batch) {
                        Ok(result) => {
                            write_partial_batch(writer, shared, &result)?;
                            shared.latency.record(started.elapsed());
                        }
                        Err(e) => write_engine_error(writer, shared, &e)?,
                    }
                }
            }
        }
        OP_PING => {
            let mut out = Vec::with_capacity(1 + 1 + 8 + 8);
            out.push(OP_PING_OK);
            out.push(u8::from(shared.engine.backend_kind() == "paged"));
            out.extend_from_slice(&(shared.engine.node_count() as u64).to_le_bytes());
            out.extend_from_slice(&shared.started.elapsed().as_secs_f64().to_le_bytes());
            write_frame(writer, &out)?;
        }
        OP_STATS => {
            let json = stats_json(shared);
            let mut out = Vec::with_capacity(1 + json.len());
            out.push(OP_STATS_OK);
            out.extend_from_slice(json.as_bytes());
            write_frame(writer, &out)?;
        }
        OP_SHUTDOWN => {
            write_frame(writer, &[OP_SHUTDOWN_OK])?;
            writer.flush()?;
            trigger_shutdown(shared);
            return Ok(false);
        }
        other => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            write_error(writer, &format!("unknown opcode {other:#04x}"))?;
        }
    }
    Ok(true)
}

fn write_error(writer: &mut impl Write, message: &str) -> io::Result<()> {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(OP_ERROR);
    out.extend_from_slice(message.as_bytes());
    write_frame(writer, &out)
}

fn write_busy(writer: &mut impl Write, message: &str) -> io::Result<()> {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(OP_BUSY);
    out.extend_from_slice(message.as_bytes());
    write_frame(writer, &out)
}

/// Maps a typed engine failure onto the wire: overload draws [`OP_BUSY`]
/// (the request was fine; back off), everything else [`OP_ERROR`]. Counts
/// the per-cause statistic either way.
fn write_engine_error(
    writer: &mut impl Write,
    shared: &Shared,
    error: &EffresError,
) -> io::Result<()> {
    match error {
        EffresError::Busy { .. } => {
            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            write_busy(writer, &error.to_string())
        }
        EffresError::StoreFailure { .. } => {
            shared.store_failures.fetch_add(1, Ordering::Relaxed);
            write_error(writer, &error.to_string())
        }
        other => write_error(writer, &other.to_string()),
    }
}

/// Status byte for one partial-batch query outcome.
fn partial_status(status: &Result<f64, EffresError>) -> u8 {
    match status {
        Ok(_) => STATUS_OK,
        Err(EffresError::StoreFailure { .. }) => STATUS_STORE_FAILURE,
        Err(EffresError::NodeOutOfBounds { .. }) => STATUS_OUT_OF_BOUNDS,
        Err(EffresError::Busy { .. }) => STATUS_BUSY,
        Err(_) => STATUS_OTHER,
    }
}

/// Encodes an [`OP_BATCH_PARTIAL_OK`] response: per-query status bytes,
/// values (0.0 where failed), and the first failure's message. Bumps the
/// per-cause counters for every failed query.
fn write_partial_batch(
    writer: &mut impl Write,
    shared: &Shared,
    result: &PartialBatchResult,
) -> io::Result<()> {
    let count = result.statuses.len();
    let mut failed: u32 = 0;
    let mut first_failure = String::new();
    let mut out = Vec::with_capacity(1 + 8 + count * 9);
    out.push(OP_BATCH_PARTIAL_OK);
    out.extend_from_slice(&(count as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // patched below
    for status in &result.statuses {
        out.push(partial_status(status));
        if let Err(e) = status {
            failed += 1;
            if first_failure.is_empty() {
                first_failure = e.to_string();
            }
            match e {
                EffresError::StoreFailure { .. } => {
                    shared.store_failures.fetch_add(1, Ordering::Relaxed);
                }
                EffresError::Busy { .. } => {
                    shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
    }
    out[5..9].copy_from_slice(&failed.to_le_bytes());
    for status in &result.statuses {
        out.extend_from_slice(&status.as_ref().copied().unwrap_or(0.0).to_le_bytes());
    }
    out.extend_from_slice(first_failure.as_bytes());
    if failed > 0 {
        shared.partial_batches.fetch_add(1, Ordering::Relaxed);
    }
    write_frame(writer, &out)
}

/// Renders the stats document: plain JSON with stable keys, no external
/// dependencies (numbers and a fixed vocabulary of strings only).
fn stats_json(shared: &Shared) -> String {
    let service = shared.engine.stats();
    let latency = shared.latency.snapshot();
    let uptime = shared.started.elapsed().as_secs_f64();
    let mut out = String::with_capacity(1024);
    out.push('{');
    write!(
        out,
        "\"backend\":\"{}\",\"nodes\":{},\"snapshot_version\":{},",
        shared.engine.backend_kind(),
        shared.engine.node_count(),
        shared
            .snapshot_version
            .map_or("null".to_string(), |v| v.to_string()),
    )
    .expect("write to string");
    write!(
        out,
        "\"uptime_secs\":{uptime:.3},\"connections\":{},\"requests\":{},",
        shared.connections.load(Ordering::Relaxed),
        shared.requests.load(Ordering::Relaxed),
    )
    .expect("write to string");
    write!(
        out,
        "\"errors\":{{\"protocol\":{},\"frame\":{},\"deadline_closes\":{},\"idle_closes\":{},\
         \"busy_rejections\":{},\"store_failures\":{},\"partial_batches\":{}}},",
        shared.protocol_errors.load(Ordering::Relaxed),
        shared.frame_errors.load(Ordering::Relaxed),
        shared.deadline_closes.load(Ordering::Relaxed),
        shared.idle_closes.load(Ordering::Relaxed),
        shared.busy_rejections.load(Ordering::Relaxed),
        shared.store_failures.load(Ordering::Relaxed),
        shared.partial_batches.load(Ordering::Relaxed),
    )
    .expect("write to string");
    write!(
        out,
        "\"service\":{{\"queries\":{},\"batches\":{},\"pair_cache_hits\":{},\
         \"pair_cache_misses\":{},\"pair_cache_entries\":{},\"pair_cache_capacity\":{},\
         \"page_cache_hits\":{},\"page_cache_misses\":{},\"page_bytes_read\":{},\
         \"page_readahead_reads\":{},\"page_retries\":{},\"page_faulted_reads\":{}}},",
        service.queries,
        service.batches,
        service.cache_hits,
        service.cache_misses,
        service.cache_entries,
        service.cache_capacity,
        service.page_cache_hits,
        service.page_cache_misses,
        service.page_bytes_read,
        service.page_readahead_reads,
        service.page_retries,
        service.page_faulted_reads,
    )
    .expect("write to string");
    match shared.engine.admission_stats() {
        Some(a) => write!(
            out,
            "\"admission\":{{\"budget\":{},\"available\":{},\"waiting\":{},\"leases\":{},\
             \"queued\":{},\"shed_queue_full\":{},\"shed_timeout\":{}}},",
            a.budget, a.available, a.waiting, a.leases, a.queued, a.shed_queue_full, a.shed_timeout
        )
        .expect("write to string"),
        None => out.push_str("\"admission\":null,"),
    }
    write!(
        out,
        "\"latency_us\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{},\
         \"max\":{}}},",
        latency.count,
        latency.mean_micros(),
        latency.quantile_micros(0.50),
        latency.quantile_micros(0.95),
        latency.quantile_micros(0.99),
        latency.max_micros,
    )
    .expect("write to string");
    let qps = if uptime > 0.0 {
        service.queries as f64 / uptime
    } else {
        0.0
    };
    write!(out, "\"throughput_qps\":{qps:.1}}}").expect("write to string");
    out
}
