//! A blocking client for the effres wire protocol.
//!
//! [`Client::connect`] dials, performs the `HELLO` handshake, and exposes
//! one method per request type. Each method writes one frame, flushes, and
//! blocks for the matching response — the protocol is strictly
//! request/response, so a client needs no background machinery. A `Client`
//! owns its connection and is cheap enough to open per thread; the load
//! generator in `effres-cli bench-client` does exactly that.
//!
//! For operating against a server that sheds load or closes idle
//! connections, [`Client::connect_with`] takes a [`ReconnectPolicy`]
//! (bounded attempts with exponential backoff) and [`Client::reconnect`]
//! re-dials the same peer under that policy — the server's idle-deadline
//! close then costs one handshake, not a failed request. An
//! [`OP_BUSY`] response surfaces as
//! [`ClientError::Busy`], distinct from real errors, so callers know to
//! back off and retry rather than give up.

use crate::protocol::{
    read_frame, write_frame, Health, PayloadReader, OP_BATCH, OP_BATCH_DEADLINE, OP_BATCH_OK,
    OP_BATCH_PARTIAL, OP_BATCH_PARTIAL_DEADLINE, OP_BATCH_PARTIAL_OK, OP_BUSY, OP_DEADLINE,
    OP_ERROR, OP_HELLO, OP_HELLO_OK, OP_PING, OP_PING_OK, OP_QUERY, OP_QUERY_OK, OP_RELOAD,
    OP_RELOAD_OK, OP_SHUTDOWN, OP_SHUTDOWN_OK, OP_STATS, OP_STATS_OK, STATUS_BUSY, STATUS_DEADLINE,
    STATUS_OK,
};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What the server announced in its `HELLO` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Number of nodes served; valid dense ids are `0..node_count`.
    pub node_count: u64,
    /// Whether the backend is paged (out-of-core) rather than resident.
    pub paged: bool,
    /// Snapshot format version of the served file (v1/v2/v3), or `None`
    /// when the server built its estimator in memory.
    pub snapshot_version: Option<u32>,
}

/// What the server answered to a `PING` health check.
#[derive(Debug, Clone, PartialEq)]
pub struct PingReport {
    /// Whether the backend is paged (out-of-core) rather than resident.
    pub paged: bool,
    /// Number of nodes served.
    pub node_count: u64,
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Serving epoch: 1 for the engine the server started with, +1 per hot
    /// reload since.
    pub epoch: u64,
    /// Server health: ok, degraded (integrity failures on the books, or
    /// brownout) or draining (shutdown in progress).
    pub health: Health,
    /// Whether the brownout overload controller currently holds the server
    /// in degraded mode (trimmed readahead, `OP_BATCH` served in partial
    /// mode).
    pub brownout: bool,
    /// The snapshot file the current epoch serves, when it came from one.
    pub snapshot_path: Option<String>,
}

/// What the server answered to a successful `RELOAD`: the identity of the
/// engine it atomically swapped in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReloadReport {
    /// The new serving epoch.
    pub epoch: u64,
    /// Node count of the swapped-in engine.
    pub node_count: u64,
    /// Snapshot format version of the reloaded file, or `None` if the
    /// server did not report one.
    pub snapshot_version: Option<u32>,
}

/// A batch answered in partial-results mode: per-query status bytes (the
/// `STATUS_*` constants in [`crate::protocol`]) next to per-query values
/// (0.0 where the status is a failure).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialBatch {
    /// Per-query status byte, in request order.
    pub statuses: Vec<u8>,
    /// Per-query value, in request order; only meaningful where the status
    /// is [`STATUS_OK`].
    pub values: Vec<f64>,
    /// How many queries failed.
    pub failed: u32,
    /// The first failed query's error message, if any failed.
    pub first_failure: Option<String>,
}

impl PartialBatch {
    /// `true` when every query succeeded (the values match what a plain
    /// batch would have returned, bit for bit).
    pub fn is_complete(&self) -> bool {
        self.failed == 0
    }
}

/// How [`Client::connect_with`] and [`Client::reconnect`] retry dialing:
/// up to `attempts` tries, sleeping `initial_backoff` before the second and
/// doubling up to `max_backoff` between subsequent tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Total connection attempts (at least 1).
    pub attempts: u32,
    /// Sleep before the second attempt.
    pub initial_backoff: Duration,
    /// Ceiling for the doubled backoff.
    pub max_backoff: Duration,
}

impl ReconnectPolicy {
    /// One attempt, no retry — the behavior of [`Client::connect`].
    pub fn none() -> Self {
        ReconnectPolicy {
            attempts: 1,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }
}

impl Default for ReconnectPolicy {
    /// Five attempts backing off 50 ms → 100 → 200 → 400 (capped at 2 s):
    /// rides out a server restart without hammering it.
    fn default() -> Self {
        ReconnectPolicy {
            attempts: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// Why a request failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection itself failed (refused, reset, timed out).
    Io(io::Error),
    /// The server answered with an error frame (bad node id, malformed
    /// request); the connection stays usable.
    Remote(String),
    /// The server shed the request under overload; it was well-formed and
    /// the connection stays usable — back off and retry.
    Busy(String),
    /// The request's deadline expired before the server finished (or the
    /// server judged it unmeetable up front and shed it whole). Unlike
    /// [`ClientError::Busy`], retrying the same request with the same
    /// deadline is pointless — relax the deadline or shrink the batch.
    DeadlineExceeded(String),
    /// The server answered with bytes this client cannot interpret.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Remote(message) => write!(f, "server error: {message}"),
            ClientError::Busy(message) => write!(f, "server busy: {message}"),
            ClientError::DeadlineExceeded(message) => {
                write!(f, "deadline exceeded: {message}")
            }
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to an effres server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    info: ServerInfo,
    peer: SocketAddr,
    policy: ReconnectPolicy,
}

impl Client {
    /// Connects (one attempt) and performs the `HELLO` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, ReconnectPolicy::none())
    }

    /// Connects under `policy` — retrying refused/reset dials with
    /// exponential backoff — then performs the `HELLO` handshake. The
    /// resolved peer address and the policy are kept, so
    /// [`Client::reconnect`] can re-dial later.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        policy: ReconnectPolicy,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = dial(&addrs, policy)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            info: ServerInfo {
                node_count: 0,
                paged: false,
                snapshot_version: None,
            },
            peer,
            policy,
        };
        client.handshake()?;
        Ok(client)
    }

    /// Drops the current connection and dials the same peer again under
    /// the connect-time [`ReconnectPolicy`], re-running the handshake.
    /// Use after an [`ClientError::Io`] failure (server restarted, idle
    /// deadline closed the connection).
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = dial(&[self.peer], self.policy)?;
        stream.set_nodelay(true)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = BufWriter::new(stream);
        self.handshake()
    }

    fn handshake(&mut self) -> Result<(), ClientError> {
        let payload = self.round_trip(&[OP_HELLO], OP_HELLO_OK)?;
        let mut reader = PayloadReader::new(&payload);
        let node_count = reader.u64().map_err(bad_reply)?;
        let paged = reader.u8().map_err(bad_reply)? != 0;
        let version = reader.u32().map_err(bad_reply)?;
        reader.finish().map_err(bad_reply)?;
        self.info = ServerInfo {
            node_count,
            paged,
            snapshot_version: (version != 0).then_some(version),
        };
        Ok(())
    }

    /// What the server announced at connect time.
    pub fn info(&self) -> ServerInfo {
        self.info
    }

    /// Health check: round-trips the server without touching columns.
    pub fn ping(&mut self) -> Result<PingReport, ClientError> {
        let payload = self.round_trip(&[OP_PING], OP_PING_OK)?;
        let mut reader = PayloadReader::new(&payload);
        let paged = reader.u8().map_err(bad_reply)? != 0;
        let node_count = reader.u64().map_err(bad_reply)?;
        let uptime_secs = reader.f64().map_err(bad_reply)?;
        let epoch = reader.u64().map_err(bad_reply)?;
        let health_byte = reader.u8().map_err(bad_reply)?;
        let health = Health::from_u8(health_byte)
            .ok_or_else(|| ClientError::Protocol(format!("unknown health state {health_byte}")))?;
        let brownout = reader.u8().map_err(bad_reply)? != 0;
        let path = String::from_utf8_lossy(reader.rest()).into_owned();
        Ok(PingReport {
            paged,
            node_count,
            uptime_secs,
            epoch,
            health,
            brownout,
            snapshot_path: (!path.is_empty()).then_some(path),
        })
    }

    /// Asks the server to hot-reload: open the snapshot at `path` (a path
    /// **the server process** can read), swap it in atomically, and report
    /// the new epoch. In-flight requests finish on the old engine; requests
    /// accepted after the ack serve the new one.
    pub fn reload(&mut self, path: &str) -> Result<ReloadReport, ClientError> {
        let mut request = Vec::with_capacity(1 + path.len());
        request.push(OP_RELOAD);
        request.extend_from_slice(path.as_bytes());
        let payload = self.round_trip(&request, OP_RELOAD_OK)?;
        let mut reader = PayloadReader::new(&payload);
        let epoch = reader.u64().map_err(bad_reply)?;
        let node_count = reader.u64().map_err(bad_reply)?;
        let version = reader.u32().map_err(bad_reply)?;
        reader.finish().map_err(bad_reply)?;
        Ok(ReloadReport {
            epoch,
            node_count,
            snapshot_version: (version != 0).then_some(version),
        })
    }

    /// Effective resistance between dense node ids `p` and `q`.
    pub fn query(&mut self, p: u64, q: u64) -> Result<f64, ClientError> {
        let mut request = Vec::with_capacity(17);
        request.push(OP_QUERY);
        request.extend_from_slice(&p.to_le_bytes());
        request.extend_from_slice(&q.to_le_bytes());
        let payload = self.round_trip(&request, OP_QUERY_OK)?;
        let mut reader = PayloadReader::new(&payload);
        let value = reader.f64().map_err(bad_reply)?;
        reader.finish().map_err(bad_reply)?;
        Ok(value)
    }

    /// Effective resistances for a batch of dense node-id pairs, in the
    /// order given. A server in brownout answers in partial mode; a fully
    /// answered batch still returns its (bit-identical) values, a cut-short
    /// one surfaces as the typed error of its dominant failure.
    pub fn query_batch(&mut self, pairs: &[(u64, u64)]) -> Result<Vec<f64>, ClientError> {
        self.batch_values(&batch_request(OP_BATCH, pairs), pairs.len())
    }

    /// [`Client::query_batch`] with a deadline: the server sheds the batch
    /// up front when the deadline cannot be met, abandons remaining work
    /// the moment it expires mid-computation, and answers
    /// [`ClientError::DeadlineExceeded`] either way. The deadline is also
    /// the disconnect budget — hanging up cancels the server-side work.
    pub fn query_batch_deadline(
        &mut self,
        pairs: &[(u64, u64)],
        deadline: Duration,
    ) -> Result<Vec<f64>, ClientError> {
        let request = batch_request_deadline(OP_BATCH_DEADLINE, deadline, pairs);
        self.batch_values(&request, pairs.len())
    }

    fn batch_values(&mut self, request: &[u8], expected: usize) -> Result<Vec<f64>, ClientError> {
        let (opcode, payload) =
            self.round_trip_any(request, &[OP_BATCH_OK, OP_BATCH_PARTIAL_OK])?;
        if opcode == OP_BATCH_OK {
            let mut reader = PayloadReader::new(&payload);
            let count = reader.u32().map_err(bad_reply)? as usize;
            if count != expected {
                return Err(ClientError::Protocol(format!(
                    "batch answered {count} values for {expected} pairs"
                )));
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(reader.f64().map_err(bad_reply)?);
            }
            reader.finish().map_err(bad_reply)?;
            return Ok(values);
        }
        // Brownout alternate: the server answered in partial mode. Complete
        // answers are as good as OP_BATCH_OK; otherwise surface the typed
        // error of the dominant failure.
        let partial = parse_partial(&payload, expected)?;
        if partial.failed == 0 {
            return Ok(partial.values);
        }
        let message = partial.first_failure.clone().unwrap_or_default();
        if partial.statuses.contains(&STATUS_DEADLINE) {
            Err(ClientError::DeadlineExceeded(message))
        } else if partial.statuses.contains(&STATUS_BUSY) {
            Err(ClientError::Busy(message))
        } else {
            Err(ClientError::Remote(message))
        }
    }

    /// Like [`Client::query_batch`], but in partial-results mode: queries
    /// that hit a failed page (or an out-of-bounds id, or a mid-batch shed)
    /// come back with a failure status instead of failing the whole batch.
    /// Successful values are bit-identical to the plain batch path.
    pub fn query_batch_partial(
        &mut self,
        pairs: &[(u64, u64)],
    ) -> Result<PartialBatch, ClientError> {
        let payload =
            self.round_trip(&batch_request(OP_BATCH_PARTIAL, pairs), OP_BATCH_PARTIAL_OK)?;
        parse_partial(&payload, pairs.len())
    }

    /// [`Client::query_batch_partial`] with a deadline: queries answered
    /// before the deadline tripped keep their bit-identical values; the
    /// abandoned tail carries
    /// [`STATUS_DEADLINE`](crate::protocol::STATUS_DEADLINE) statuses. A
    /// batch shed whole (deadline unmeetable up front) answers
    /// [`ClientError::DeadlineExceeded`].
    pub fn query_batch_partial_deadline(
        &mut self,
        pairs: &[(u64, u64)],
        deadline: Duration,
    ) -> Result<PartialBatch, ClientError> {
        let request = batch_request_deadline(OP_BATCH_PARTIAL_DEADLINE, deadline, pairs);
        let payload = self.round_trip(&request, OP_BATCH_PARTIAL_OK)?;
        parse_partial(&payload, pairs.len())
    }

    /// The server's stats document (JSON).
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        let payload = self.round_trip(&[OP_STATS], OP_STATS_OK)?;
        String::from_utf8(payload)
            .map_err(|_| ClientError::Protocol("stats reply is not UTF-8".to_string()))
    }

    /// Asks the server to shut down. The server acknowledges, then stops
    /// accepting and drains the other connections; this connection is done.
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        let payload = self.round_trip(&[OP_SHUTDOWN], OP_SHUTDOWN_OK)?;
        if payload.is_empty() {
            Ok(())
        } else {
            Err(ClientError::Protocol(
                "unexpected body in shutdown ack".to_string(),
            ))
        }
    }

    /// Writes one request frame and reads the matching response, returning
    /// the response body past the opcode after checking it is `expected`.
    fn round_trip(&mut self, request: &[u8], expected: u8) -> Result<Vec<u8>, ClientError> {
        self.round_trip_any(request, &[expected])
            .map(|(_, payload)| payload)
    }

    /// [`Client::round_trip`] for requests with more than one acceptable
    /// response opcode (a brownout server answers `OP_BATCH` in partial
    /// mode); returns which one arrived alongside the body.
    fn round_trip_any(
        &mut self,
        request: &[u8],
        expected: &[u8],
    ) -> Result<(u8, Vec<u8>), ClientError> {
        write_frame(&mut self.writer, request)?;
        self.writer.flush()?;
        let Some(mut payload) = read_frame(&mut self.reader)? else {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        };
        let Some(&opcode) = payload.first() else {
            return Err(ClientError::Protocol("empty response frame".to_string()));
        };
        payload.remove(0);
        if opcode == OP_ERROR {
            return Err(ClientError::Remote(
                String::from_utf8_lossy(&payload).into_owned(),
            ));
        }
        if opcode == OP_BUSY {
            return Err(ClientError::Busy(
                String::from_utf8_lossy(&payload).into_owned(),
            ));
        }
        if opcode == OP_DEADLINE {
            return Err(ClientError::DeadlineExceeded(
                String::from_utf8_lossy(&payload).into_owned(),
            ));
        }
        if !expected.contains(&opcode) {
            return Err(ClientError::Protocol(format!(
                "expected opcode {:#04x}, got {opcode:#04x}",
                expected.first().copied().unwrap_or(0)
            )));
        }
        Ok((opcode, payload))
    }
}

fn bad_reply(e: io::Error) -> ClientError {
    ClientError::Protocol(format!("malformed response body: {e}"))
}

/// Encodes an `OP_BATCH`-shaped request body under `opcode`.
fn batch_request(opcode: u8, pairs: &[(u64, u64)]) -> Vec<u8> {
    let mut request = Vec::with_capacity(5 + pairs.len() * 16);
    request.push(opcode);
    request.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(p, q) in pairs {
        request.extend_from_slice(&p.to_le_bytes());
        request.extend_from_slice(&q.to_le_bytes());
    }
    request
}

/// Encodes a deadline-carrying batch request: `u32 deadline_ms` before the
/// count. Sub-millisecond deadlines round up to 1 ms (0 means "no deadline"
/// on the wire).
fn batch_request_deadline(opcode: u8, deadline: Duration, pairs: &[(u64, u64)]) -> Vec<u8> {
    let deadline_ms = u32::try_from(deadline.as_millis())
        .unwrap_or(u32::MAX)
        .max(1);
    let mut request = Vec::with_capacity(9 + pairs.len() * 16);
    request.push(opcode);
    request.extend_from_slice(&deadline_ms.to_le_bytes());
    request.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(p, q) in pairs {
        request.extend_from_slice(&p.to_le_bytes());
        request.extend_from_slice(&q.to_le_bytes());
    }
    request
}

/// Decodes an [`OP_BATCH_PARTIAL_OK`] body into a [`PartialBatch`],
/// checking the counts against the request.
fn parse_partial(payload: &[u8], expected: usize) -> Result<PartialBatch, ClientError> {
    let mut reader = PayloadReader::new(payload);
    let count = reader.u32().map_err(bad_reply)? as usize;
    if count != expected {
        return Err(ClientError::Protocol(format!(
            "partial batch answered {count} statuses for {expected} pairs"
        )));
    }
    let failed = reader.u32().map_err(bad_reply)?;
    let mut statuses = Vec::with_capacity(count);
    for _ in 0..count {
        statuses.push(reader.u8().map_err(bad_reply)?);
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(reader.f64().map_err(bad_reply)?);
    }
    let message = String::from_utf8_lossy(reader.rest()).into_owned();
    let observed = statuses.iter().filter(|&&s| s != STATUS_OK).count();
    if observed != failed as usize {
        return Err(ClientError::Protocol(format!(
            "partial batch declared {failed} failures but carried {observed}"
        )));
    }
    Ok(PartialBatch {
        statuses,
        values,
        failed,
        first_failure: (failed > 0).then_some(message),
    })
}

/// Dials the first reachable address under `policy`.
fn dial(addrs: &[SocketAddr], policy: ReconnectPolicy) -> Result<TcpStream, ClientError> {
    if addrs.is_empty() {
        return Err(ClientError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )));
    }
    let mut backoff = policy.initial_backoff;
    let mut last = None;
    for attempt in 0..policy.attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(policy.max_backoff);
        }
        for addr in addrs {
            match TcpStream::connect(addr) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e),
            }
        }
    }
    Err(ClientError::Io(last.expect("at least one attempt failed")))
}
