//! A blocking client for the effres wire protocol.
//!
//! [`Client::connect`] dials, performs the `HELLO` handshake, and exposes
//! one method per request type. Each method writes one frame, flushes, and
//! blocks for the matching response — the protocol is strictly
//! request/response, so a client needs no background machinery. A `Client`
//! owns its connection and is cheap enough to open per thread; the load
//! generator in `effres-cli bench-client` does exactly that.

use crate::protocol::{
    read_frame, write_frame, PayloadReader, OP_BATCH, OP_BATCH_OK, OP_ERROR, OP_HELLO, OP_HELLO_OK,
    OP_QUERY, OP_QUERY_OK, OP_SHUTDOWN, OP_SHUTDOWN_OK, OP_STATS, OP_STATS_OK,
};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What the server announced in its `HELLO` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Number of nodes served; valid dense ids are `0..node_count`.
    pub node_count: u64,
    /// Whether the backend is paged (out-of-core) rather than resident.
    pub paged: bool,
    /// Snapshot format version of the served file (v1/v2/v3), or `None`
    /// when the server built its estimator in memory.
    pub snapshot_version: Option<u32>,
}

/// Why a request failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection itself failed (refused, reset, timed out).
    Io(io::Error),
    /// The server answered with an error frame (bad node id, malformed
    /// request); the connection stays usable.
    Remote(String),
    /// The server answered with bytes this client cannot interpret.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Remote(message) => write!(f, "server error: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to an effres server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    info: ServerInfo,
}

impl Client {
    /// Connects and performs the `HELLO` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            info: ServerInfo {
                node_count: 0,
                paged: false,
                snapshot_version: None,
            },
        };
        let payload = client.round_trip(&[OP_HELLO], OP_HELLO_OK)?;
        let mut reader = PayloadReader::new(&payload);
        let node_count = reader.u64().map_err(bad_reply)?;
        let paged = reader.u8().map_err(bad_reply)? != 0;
        let version = reader.u32().map_err(bad_reply)?;
        reader.finish().map_err(bad_reply)?;
        client.info = ServerInfo {
            node_count,
            paged,
            snapshot_version: (version != 0).then_some(version),
        };
        Ok(client)
    }

    /// What the server announced at connect time.
    pub fn info(&self) -> ServerInfo {
        self.info
    }

    /// Effective resistance between dense node ids `p` and `q`.
    pub fn query(&mut self, p: u64, q: u64) -> Result<f64, ClientError> {
        let mut request = Vec::with_capacity(17);
        request.push(OP_QUERY);
        request.extend_from_slice(&p.to_le_bytes());
        request.extend_from_slice(&q.to_le_bytes());
        let payload = self.round_trip(&request, OP_QUERY_OK)?;
        let mut reader = PayloadReader::new(&payload);
        let value = reader.f64().map_err(bad_reply)?;
        reader.finish().map_err(bad_reply)?;
        Ok(value)
    }

    /// Effective resistances for a batch of dense node-id pairs, in the
    /// order given.
    pub fn query_batch(&mut self, pairs: &[(u64, u64)]) -> Result<Vec<f64>, ClientError> {
        let mut request = Vec::with_capacity(5 + pairs.len() * 16);
        request.push(OP_BATCH);
        request.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for &(p, q) in pairs {
            request.extend_from_slice(&p.to_le_bytes());
            request.extend_from_slice(&q.to_le_bytes());
        }
        let payload = self.round_trip(&request, OP_BATCH_OK)?;
        let mut reader = PayloadReader::new(&payload);
        let count = reader.u32().map_err(bad_reply)? as usize;
        if count != pairs.len() {
            return Err(ClientError::Protocol(format!(
                "batch answered {count} values for {} pairs",
                pairs.len()
            )));
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(reader.f64().map_err(bad_reply)?);
        }
        reader.finish().map_err(bad_reply)?;
        Ok(values)
    }

    /// The server's stats document (JSON).
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        let payload = self.round_trip(&[OP_STATS], OP_STATS_OK)?;
        String::from_utf8(payload)
            .map_err(|_| ClientError::Protocol("stats reply is not UTF-8".to_string()))
    }

    /// Asks the server to shut down. The server acknowledges, then stops
    /// accepting and drains the other connections; this connection is done.
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        let payload = self.round_trip(&[OP_SHUTDOWN], OP_SHUTDOWN_OK)?;
        if payload.is_empty() {
            Ok(())
        } else {
            Err(ClientError::Protocol(
                "unexpected body in shutdown ack".to_string(),
            ))
        }
    }

    /// Writes one request frame and reads the matching response, returning
    /// the response body past the opcode after checking it is `expected`.
    fn round_trip(&mut self, request: &[u8], expected: u8) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.writer, request)?;
        self.writer.flush()?;
        let Some(mut payload) = read_frame(&mut self.reader)? else {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        };
        let Some(&opcode) = payload.first() else {
            return Err(ClientError::Protocol("empty response frame".to_string()));
        };
        payload.remove(0);
        if opcode == OP_ERROR {
            return Err(ClientError::Remote(
                String::from_utf8_lossy(&payload).into_owned(),
            ));
        }
        if opcode != expected {
            return Err(ClientError::Protocol(format!(
                "expected opcode {expected:#04x}, got {opcode:#04x}"
            )));
        }
        Ok(payload)
    }
}

fn bad_reply(e: io::Error) -> ClientError {
    ClientError::Protocol(format!("malformed response body: {e}"))
}
