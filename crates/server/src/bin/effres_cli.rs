//! `effres-cli` — the full pipeline from the shell.
//!
//! ```text
//! effres-cli load  <dataset>                      ingest + report
//! effres-cli build <dataset> [-o out.snap]        ingest + factor + snapshot
//! effres-cli query <dataset|snapshot> <p> <q>     one resistance
//! effres-cli batch <dataset|snapshot> --random N  thousands of queries
//! effres-cli batch <dataset|snapshot> --pairs f   ... from a pair file
//! effres-cli centrality <dataset>                 all-edges centralities
//! effres-cli stats <dataset|snapshot>             what's inside
//! effres-cli stats <host:port>                    live server stats JSON
//! effres-cli serve <dataset|snapshot> --port N    long-lived TCP front-end
//! effres-cli ping  <host:port>                    health check
//! effres-cli reload <host:port> <snapshot>        hot-swap the served data
//! effres-cli bench-client <host:port>             load generator
//! ```
//!
//! `<dataset>` is a SNAP-style edge list or a Matrix Market `.mtx` file,
//! optionally gzipped; a snapshot is the binary format written by `build
//! --output`. Node ids on the command line and in pair files are the
//! *original dataset ids*; the CLI maps them onto the dense node space the
//! estimator uses internally (`--dense` skips the mapping — that is the id
//! space the network protocol speaks).
//!
//! With `--paged`, `query`/`batch`/`stats` serve a **v2 snapshot straight
//! from disk**: only the header, permutation and column pointers are loaded
//! (milliseconds even for huge graphs) and column data pages in on demand
//! through an LRU cache sized by `--page-cache`. Answers are bit-identical
//! to resident serving.

use effres::centrality::centralities_from_resistances;
use effres::{EffectiveResistanceEstimator, EffresConfig, Ordering, ValueMode, WorkerPool};
use effres_graph::builder::MergePolicy;
use effres_io::dataset::{load_graph, IngestOptions};
use effres_io::paged::{open_paged, PagedOptions, PagedSnapshot};
use effres_io::snapshot::{load_snapshot, save_snapshot, Snapshot};
use effres_io::{pairs, IoError};
use effres_server::{Client, ClientError, ServedEngine, Server, ServerOptions};
use effres_service::{EngineOptions, LatencyHistogram, QueryBatch, QueryEngine};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering as MemOrder};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "effres-cli — effective-resistance queries on graph datasets

USAGE:
    effres-cli load  <dataset> [ingest options]
    effres-cli build <dataset> [ingest|build options] [--output <snapshot>]
    effres-cli query <dataset|snapshot> <p> <q> [ingest|build options]
                     [--paged [--page-cache N]]
    effres-cli batch <dataset|snapshot> (--pairs <file> | --random <count>)
                     [--threads N] [--cache N] [--seed S] [--output <file>]
                     [--paged [--page-cache N]] [ingest|build options]
    effres-cli centrality <dataset> [--snapshot <file> [--paged]]
                     [--value-mode f64|f32] [--threads N] [--output <file>]
                     [ingest|build options]
    effres-cli stats <dataset|snapshot> [--paged [--page-cache N]]
    effres-cli stats <host:port>
    effres-cli serve <dataset|snapshot> [--host H] [--port N] [--threads N]
                     [--cache N] [--paged [--page-cache N]]
                     [--frame-deadline S] [--idle-deadline S]
                     [--drain-deadline S] [--scrub-rate M]
                     [--admission-depth N [--admission-timeout-ms T]]
                     [--brownout-enter X] [--brownout-exit Y]
    effres-cli ping  <host:port>
    effres-cli reload <host:port> <snapshot>
    effres-cli bench-client <host:port> [--connections N] [--requests N]
                     [--batch K [--batch-every J]] [--rate R] [--seed S]
                     [--deadline-ms T] [--check K] [--shutdown]

INGEST OPTIONS (dataset inputs):
    --keep-all-components   keep every component (default: largest only)
    --merge <first|sum|max> duplicate-edge policy        [default: first]
    --default-weight <w>    weight of unweighted records [default: 1]

BUILD OPTIONS (dataset inputs):
    --epsilon <e>           pruning threshold of Alg. 2  [default: 1e-3]
    --drop-tolerance <t>    incomplete Cholesky drop tol [default: 1e-3]
    --ordering <o>          natural | rcm | amd          [default: amd]
    --ground <g>            ground conductance           [default: 1e-6]
    --build-threads <n>     approximate-inverse build workers
                            (0 = all cores, 1 = sequential; results are
                            bit-identical either way)     [default: 0]
    --value-mode <m>        f64 | f32 — width of the served arena values.
                            f32 halves the value stream the query kernels
                            read, at a bounded relative rounding error per
                            value (~6e-8); snapshots stay f64-canonical
                            either way                    [default: f64]

CENTRALITY OPTIONS (spanning-edge centrality of every edge):
    --snapshot <file>       serve queries from this prebuilt snapshot
                            instead of building from the dataset (the
                            dataset still supplies the edges)
    --paged                 with --snapshot: serve it out-of-core
    --output <file>         write `u v centrality` lines here

BATCH OPTIONS:
    --pairs <file>          pair file: one `p q` per line, # comments
    --random <count>        generate <count> random pairs instead
    --seed <s>              seed for --random            [default: 42]
    --threads <n>           worker-pool threads (0 = all cores); one
                            persistent pool is shared between the estimator
                            build and the batch engine
    --cache <n>             result-cache entries (0 disables)
    --output <file>         write `p q resistance` lines here

PAGED OPTIONS (snapshot inputs; out-of-core serving):
    --paged                 serve columns directly from the v2/v3 snapshot
                            file (positioned reads + LRU page cache) instead
                            of loading the arena into memory; answers are
                            bit-identical to resident serving
    --page-cache <n>        decoded pages kept resident   [default: 1024]
    --columns-per-page <n>  columns decoded per page      [default: 64]
    --readahead <n>         scheduled-batch readahead window, in pages
                            (0 = auto-size from the cache budget)
    --no-schedule           batch only: answer in arrival order instead of
                            through the locality scheduler (slow; the
                            bit-identical reference path)

SERVE OPTIONS:
    --host <h>              listen address               [default: 127.0.0.1]
    --port <n>              listen port (0 = ephemeral)  [default: 7878]
    --frame-deadline <s>    close a connection stalled mid-frame after this
                            many seconds                 [default: 10]
    --idle-deadline <s>     close a connection idle this many seconds
                            (clients reconnect)          [default: 300]
    --drain-deadline <s>    on shutdown, wait up to this many seconds for
                            in-flight requests to finish [default: 30]
    --scrub-rate <m>        background integrity scrubber budget, in MiB/s
                            of snapshot pages re-validated (0 = off; paged
                            backend only)                [default: 0]
    --admission-depth <n>   paged only: bound the admission queue at n
                            waiting batches; beyond that the server answers
                            BUSY instead of queueing (0 = unbounded, the
                            default)
    --admission-timeout-ms <t>
                            paged only: shed a queued batch that has not
                            been granted pin capacity after t milliseconds
                            [default: 2000]
    --brownout-enter <x>    enter brownout (degraded, partial-mode batches)
                            when the shed-rate EWMA crosses x; set above 1.0
                            to disable                   [default: 0.5]
    --brownout-exit <y>     leave brownout once the shed-rate EWMA decays
                            below y                      [default: 0.1]

BENCH-CLIENT OPTIONS:
    --connections <n>       concurrent client connections [default: 4]
    --requests <n>          requests per connection       [default: 1000]
    --batch <k>             mixed traffic: batches of k pairs between the
                            single queries (0 = singles only)
    --batch-every <j>       every j-th request is a batch [default: 8]
    --rate <r>              open-loop target rate per connection, in
                            requests/s (0 = closed loop)  [default: 0]
    --deadline-ms <t>       attach a t-millisecond deadline to every batch
                            request; missed deadlines and busy sheds are
                            counted, not fatal (0 = off)  [default: 0]
    --check <k>             after the run, print k deterministic `p q R`
                            lines (cross-check against `query --dense`)
    --shutdown              ask the server to shut down once done

Node ids are the dataset's original ids (SNAP ids, 1-based .mtx indices);
`--dense` on query/batch switches to the dense ids `0..nodes` — the id
space the network protocol speaks.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}\n");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Run(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

enum CliError {
    /// Bad command line: print usage.
    Usage(String),
    /// Valid command line, failed while running.
    Run(String),
}

impl From<IoError> for CliError {
    fn from(e: IoError) -> Self {
        CliError::Run(e.to_string())
    }
}

impl From<effres::EffresError> for CliError {
    fn from(e: effres::EffresError) -> Self {
        CliError::Run(e.to_string())
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing subcommand".into()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "load" => cmd_load(rest),
        "build" => cmd_build(rest),
        "query" => cmd_query(rest),
        "batch" => cmd_batch(rest),
        "centrality" => cmd_centrality(rest),
        "stats" => cmd_stats(rest),
        "serve" => cmd_serve(rest),
        "ping" => cmd_ping(rest),
        "reload" => cmd_reload(rest),
        "bench-client" => cmd_bench_client(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

/// Everything the flag parser can produce.
struct Options {
    input: Option<PathBuf>,
    positional: Vec<String>,
    ingest: IngestOptions,
    config: EffresConfig,
    output: Option<PathBuf>,
    snapshot: Option<PathBuf>,
    pairs_file: Option<PathBuf>,
    random: Option<usize>,
    seed: u64,
    threads: usize,
    cache: usize,
    paged: bool,
    columns_per_page: Option<usize>,
    readahead: usize,
    no_schedule: bool,
    dense: bool,
    host: String,
    port: u16,
    frame_deadline_secs: u64,
    idle_deadline_secs: u64,
    drain_deadline_secs: u64,
    scrub_mibps: f64,
    admission_depth: usize,
    admission_timeout_ms: u64,
    brownout_enter: f64,
    brownout_exit: f64,
    connections: usize,
    requests: usize,
    batch: usize,
    batch_every: usize,
    rate: f64,
    deadline_ms: u64,
    check: usize,
    shutdown: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            input: None,
            positional: Vec::new(),
            ingest: IngestOptions::default(),
            config: EffresConfig::default().with_ordering(Ordering::MinimumDegree),
            output: None,
            snapshot: None,
            pairs_file: None,
            random: None,
            seed: 42,
            threads: 0,
            cache: EngineOptions::default().cache_capacity,
            paged: false,
            columns_per_page: None,
            readahead: 0,
            no_schedule: false,
            dense: false,
            host: "127.0.0.1".to_string(),
            port: 7878,
            frame_deadline_secs: 10,
            idle_deadline_secs: 300,
            drain_deadline_secs: 30,
            scrub_mibps: 0.0,
            admission_depth: 0,
            admission_timeout_ms: 2000,
            brownout_enter: 0.5,
            brownout_exit: 0.1,
            connections: 4,
            requests: 1000,
            batch: 0,
            batch_every: 8,
            rate: 0.0,
            deadline_ms: 0,
            check: 0,
            shutdown: false,
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut options = Options::default();
    let mut iter = args.iter();
    let value_of = |flag: &str, iter: &mut std::slice::Iter<'_, String>| {
        iter.next()
            .cloned()
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--keep-all-components" => options.ingest.keep_largest_component = false,
            "--merge" => {
                options.ingest.merge = match value_of("--merge", &mut iter)?.as_str() {
                    "first" => MergePolicy::KeepFirst,
                    "sum" => MergePolicy::Sum,
                    "max" => MergePolicy::Max,
                    other => {
                        return Err(CliError::Usage(format!("unknown merge policy `{other}`")))
                    }
                }
            }
            "--default-weight" => {
                options.ingest.default_weight = parse_number(
                    &value_of("--default-weight", &mut iter)?,
                    "--default-weight",
                )?
            }
            "--epsilon" => {
                let e: f64 = parse_number(&value_of("--epsilon", &mut iter)?, "--epsilon")?;
                options.config = options.config.with_epsilon(e);
            }
            "--drop-tolerance" => {
                let t: f64 = parse_number(
                    &value_of("--drop-tolerance", &mut iter)?,
                    "--drop-tolerance",
                )?;
                options.config = options.config.with_drop_tolerance(t);
            }
            "--ground" => {
                let g: f64 = parse_number(&value_of("--ground", &mut iter)?, "--ground")?;
                options.config = options.config.with_ground_conductance(g);
            }
            "--ordering" => {
                let ordering = match value_of("--ordering", &mut iter)?.as_str() {
                    "natural" => Ordering::Natural,
                    "rcm" => Ordering::Rcm,
                    "amd" => Ordering::MinimumDegree,
                    other => return Err(CliError::Usage(format!("unknown ordering `{other}`"))),
                };
                options.config = options.config.with_ordering(ordering);
            }
            "--build-threads" => {
                let threads: usize =
                    parse_number(&value_of("--build-threads", &mut iter)?, "--build-threads")?;
                options.config = options.config.with_build_threads(threads);
            }
            "--value-mode" => {
                let mode = match value_of("--value-mode", &mut iter)?.as_str() {
                    "f64" => ValueMode::F64,
                    "f32" => ValueMode::F32,
                    other => return Err(CliError::Usage(format!("unknown value mode `{other}`"))),
                };
                options.config = options.config.with_value_mode(mode);
            }
            "--output" | "-o" => options.output = Some(value_of("--output", &mut iter)?.into()),
            "--snapshot" => options.snapshot = Some(value_of("--snapshot", &mut iter)?.into()),
            "--pairs" => options.pairs_file = Some(value_of("--pairs", &mut iter)?.into()),
            "--random" => {
                options.random = Some(parse_number(&value_of("--random", &mut iter)?, "--random")?)
            }
            "--seed" => options.seed = parse_number(&value_of("--seed", &mut iter)?, "--seed")?,
            "--threads" => {
                options.threads = parse_number(&value_of("--threads", &mut iter)?, "--threads")?
            }
            "--cache" => options.cache = parse_number(&value_of("--cache", &mut iter)?, "--cache")?,
            "--paged" => options.paged = true,
            "--page-cache" => {
                let pages = parse_number(&value_of("--page-cache", &mut iter)?, "--page-cache")?;
                options.config = options.config.with_page_cache_pages(pages);
            }
            "--columns-per-page" => {
                options.columns_per_page = Some(parse_number(
                    &value_of("--columns-per-page", &mut iter)?,
                    "--columns-per-page",
                )?)
            }
            "--readahead" => {
                options.readahead =
                    parse_number(&value_of("--readahead", &mut iter)?, "--readahead")?
            }
            "--no-schedule" => options.no_schedule = true,
            "--dense" => options.dense = true,
            "--host" => options.host = value_of("--host", &mut iter)?,
            "--port" => options.port = parse_number(&value_of("--port", &mut iter)?, "--port")?,
            "--frame-deadline" => {
                options.frame_deadline_secs = parse_number(
                    &value_of("--frame-deadline", &mut iter)?,
                    "--frame-deadline",
                )?
            }
            "--idle-deadline" => {
                options.idle_deadline_secs =
                    parse_number(&value_of("--idle-deadline", &mut iter)?, "--idle-deadline")?
            }
            "--drain-deadline" => {
                options.drain_deadline_secs = parse_number(
                    &value_of("--drain-deadline", &mut iter)?,
                    "--drain-deadline",
                )?
            }
            "--scrub-rate" => {
                options.scrub_mibps =
                    parse_number(&value_of("--scrub-rate", &mut iter)?, "--scrub-rate")?
            }
            "--admission-depth" => {
                options.admission_depth = parse_number(
                    &value_of("--admission-depth", &mut iter)?,
                    "--admission-depth",
                )?
            }
            "--admission-timeout-ms" => {
                options.admission_timeout_ms = parse_number(
                    &value_of("--admission-timeout-ms", &mut iter)?,
                    "--admission-timeout-ms",
                )?
            }
            "--brownout-enter" => {
                options.brownout_enter = parse_number(
                    &value_of("--brownout-enter", &mut iter)?,
                    "--brownout-enter",
                )?
            }
            "--brownout-exit" => {
                options.brownout_exit =
                    parse_number(&value_of("--brownout-exit", &mut iter)?, "--brownout-exit")?
            }
            "--connections" => {
                options.connections =
                    parse_number(&value_of("--connections", &mut iter)?, "--connections")?
            }
            "--requests" => {
                options.requests = parse_number(&value_of("--requests", &mut iter)?, "--requests")?
            }
            "--batch" => options.batch = parse_number(&value_of("--batch", &mut iter)?, "--batch")?,
            "--batch-every" => {
                options.batch_every =
                    parse_number(&value_of("--batch-every", &mut iter)?, "--batch-every")?
            }
            "--rate" => options.rate = parse_number(&value_of("--rate", &mut iter)?, "--rate")?,
            "--deadline-ms" => {
                options.deadline_ms =
                    parse_number(&value_of("--deadline-ms", &mut iter)?, "--deadline-ms")?
            }
            "--check" => options.check = parse_number(&value_of("--check", &mut iter)?, "--check")?,
            "--shutdown" => options.shutdown = true,
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag `{flag}`")))
            }
            positional => {
                if options.input.is_none() {
                    options.input = Some(positional.into());
                } else {
                    options.positional.push(positional.to_string());
                }
            }
        }
    }
    Ok(options)
}

fn parse_number<T: std::str::FromStr>(token: &str, flag: &str) -> Result<T, CliError> {
    token
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid value `{token}` for {flag}")))
}

fn require_input(options: &Options) -> Result<&Path, CliError> {
    options
        .input
        .as_deref()
        .ok_or_else(|| CliError::Usage("missing input file".into()))
}

fn is_snapshot(path: &Path) -> bool {
    std::fs::File::open(path)
        .and_then(|mut f| {
            use std::io::Read;
            let mut magic = [0u8; 8];
            f.read_exact(&mut magic)?;
            Ok(&magic == b"EFRSNAP\n")
        })
        .unwrap_or(false)
}

/// Loads the input as either a snapshot or a dataset-plus-build, reporting
/// the timings either way.
fn obtain_snapshot(path: &Path, options: &Options) -> Result<Snapshot, CliError> {
    if is_snapshot(path) {
        let start = Instant::now();
        let mut snapshot = load_snapshot(path)?;
        println!(
            "loaded snapshot {} ({} nodes) in {:.3}s",
            path.display(),
            snapshot.estimator.node_count(),
            start.elapsed().as_secs_f64()
        );
        // Snapshots are f64-canonical; a narrower serving width is applied
        // here, after the load (dataset inputs narrow inside `build`).
        if options.config.value_mode == ValueMode::F32 {
            let start = Instant::now();
            snapshot.estimator = snapshot.estimator.with_value_mode(ValueMode::F32)?;
            println!(
                "narrowed   values to f32 (max relative error {:.2e}) in {:.3}s",
                snapshot.estimator.approximate_inverse().narrowing_error(),
                start.elapsed().as_secs_f64()
            );
        }
        return Ok(snapshot);
    }
    let start = Instant::now();
    let ds = load_graph(path, &options.ingest)?;
    println!(
        "ingested {} ({} nodes, {} edges kept) in {:.3}s",
        path.display(),
        ds.graph.node_count(),
        ds.graph.edge_count(),
        start.elapsed().as_secs_f64()
    );
    let start = Instant::now();
    let estimator = EffectiveResistanceEstimator::build(&ds.graph, &options.config)?;
    println!(
        "built estimator (factor nnz {}, inverse nnz {}) in {:.3}s",
        estimator.stats().factor_nnz,
        estimator.stats().inverse_nnz,
        start.elapsed().as_secs_f64()
    );
    Ok(Snapshot {
        estimator,
        labels: Some(ds.labels),
        version: None,
    })
}

/// Opens a snapshot for paged (out-of-core) serving, reporting the
/// cold-start timing: only the header, permutation and column pointers are
/// read — the column blocks stay on disk until queries page them in.
fn obtain_paged(path: &Path, options: &Options) -> Result<PagedSnapshot, CliError> {
    if !is_snapshot(path) {
        return Err(CliError::Usage(
            "--paged serves prebuilt snapshots; run `build --output <snapshot>` first".into(),
        ));
    }
    let start = Instant::now();
    let mut paged_options = PagedOptions::default()
        .with_cache_pages(options.config.page_cache_pages)
        .with_value_mode(options.config.value_mode);
    if let Some(columns) = options.columns_per_page {
        paged_options = paged_options.with_columns_per_page(columns);
    }
    let paged = open_paged(path, &paged_options)?;
    let f = paged.store.footprint();
    println!(
        "opened paged snapshot {} ({} nodes, {:.1} MiB on disk, {:.1} MiB resident, \
         {} rows, norms {}) in {:.3}s",
        path.display(),
        paged.node_count(),
        mib(f.total_bytes()),
        mib(paged.store.resident_bytes() + paged.norms().map_or(0, |n| n.len() * 8)),
        match paged.store.row_codec() {
            effres_io::RowCodec::Raw => "raw",
            effres_io::RowCodec::Varint => "delta-varint",
        },
        if paged.norms().is_some() {
            "persisted"
        } else {
            "per-page"
        },
        start.elapsed().as_secs_f64()
    );
    Ok(paged)
}

/// Maps an original dataset id to the dense node space.
fn resolve_node(label: u64, labels: &Option<Vec<u64>>, map: &HashMap<u64, usize>) -> Option<usize> {
    match labels {
        Some(_) => map.get(&label).copied(),
        None => Some(label as usize),
    }
}

fn label_map(labels: &Option<Vec<u64>>) -> HashMap<u64, usize> {
    labels
        .as_ref()
        .map(|labels| {
            labels
                .iter()
                .enumerate()
                .map(|(dense, &label)| (label, dense))
                .collect()
        })
        .unwrap_or_default()
}

fn cmd_load(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    let path = require_input(&options)?;
    let start = Instant::now();
    let ds = load_graph(path, &options.ingest)?;
    let elapsed = start.elapsed();
    let s = ds.stats;
    println!("dataset    {}", path.display());
    println!("lines      {} ({} comments/blank)", s.lines, s.comments);
    println!(
        "parsed     {} nodes, {} edges",
        s.parsed_nodes, s.parsed_edges
    );
    println!(
        "cleaned    {} self-loops, {} duplicates, {} explicit zeros",
        s.self_loops, s.duplicates, s.zeros
    );
    println!("components {}", s.components);
    println!(
        "kept       {} nodes, {} edges{}",
        s.kept_nodes,
        s.kept_edges,
        if options.ingest.keep_largest_component && s.components > 1 {
            " (largest component)"
        } else {
            ""
        }
    );
    println!("ingest     {:.3}s", elapsed.as_secs_f64());
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), CliError> {
    let mut options = parse_options(args)?;
    let path = require_input(&options)?.to_path_buf();
    if is_snapshot(&path) {
        return Err(CliError::Run(format!(
            "{} is already a snapshot",
            path.display()
        )));
    }
    // Snapshots are f64-canonical, so build (and save) at full precision and
    // only narrow afterwards for the stats report; `--value-mode f32` on a
    // later `query`/`batch`/`centrality` run applies the same narrowing at
    // load time.
    let requested_mode = options.config.value_mode;
    options.config = options.config.with_value_mode(ValueMode::F64);
    let mut snapshot = obtain_snapshot(&path, &options)?;
    if let Some(output) = &options.output {
        let start = Instant::now();
        save_snapshot(output, &snapshot.estimator, snapshot.labels.as_deref())?;
        let bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
        println!(
            "snapshot   {} ({:.1} MiB) in {:.3}s",
            output.display(),
            bytes as f64 / (1024.0 * 1024.0),
            start.elapsed().as_secs_f64()
        );
    }
    if requested_mode == ValueMode::F32 {
        snapshot.estimator = snapshot.estimator.with_value_mode(ValueMode::F32)?;
    }
    print_estimator_stats(&snapshot.estimator);
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    let path = require_input(&options)?;
    let [p, q] = options.positional.as_slice() else {
        return Err(CliError::Usage(
            "query needs exactly `<input> <p> <q>`".into(),
        ));
    };
    let p: u64 = parse_number(p, "<p>")?;
    let q: u64 = parse_number(q, "<q>")?;
    if options.paged {
        let boot = Instant::now();
        let paged = obtain_paged(path, &options)?;
        let labels = if options.dense {
            None
        } else {
            paged.labels.clone()
        };
        let map = label_map(&labels);
        let dense_p = resolve_node(p, &labels, &map)
            .ok_or_else(|| CliError::Run(format!("node id {p} not in the dataset")))?;
        let dense_q = resolve_node(q, &labels, &map)
            .ok_or_else(|| CliError::Run(format!("node id {q} not in the dataset")))?;
        let engine = QueryEngine::new(
            Arc::new(paged),
            EngineOptions {
                cache_capacity: 0,
                ..EngineOptions::default()
            },
        );
        let start = Instant::now();
        let r = engine.query(dense_p, dense_q)?;
        println!(
            "R({p}, {q}) = {r:.9}   ({:.1} µs; first answer {:.3}s after open began)",
            start.elapsed().as_secs_f64() * 1e6,
            boot.elapsed().as_secs_f64()
        );
        let s = engine.stats();
        println!(
            "page cache {} hit(s), {} miss(es)",
            s.page_cache_hits, s.page_cache_misses
        );
        return Ok(());
    }
    let snapshot = obtain_snapshot(path, &options)?;
    let labels = if options.dense {
        None
    } else {
        snapshot.labels.clone()
    };
    let map = label_map(&labels);
    let dense_p = resolve_node(p, &labels, &map)
        .ok_or_else(|| CliError::Run(format!("node id {p} not in the dataset")))?;
    let dense_q = resolve_node(q, &labels, &map)
        .ok_or_else(|| CliError::Run(format!("node id {q} not in the dataset")))?;
    let start = Instant::now();
    let r = snapshot.estimator.query(dense_p, dense_q)?;
    println!(
        "R({p}, {q}) = {r:.9}   ({:.1} µs)",
        start.elapsed().as_secs_f64() * 1e6
    );
    Ok(())
}

/// Where a batch's pairs come from.
enum Source<'a> {
    Pairs(&'a PathBuf),
    Random(usize),
}

/// Resolves the batch source into dense node pairs.
fn build_batch(
    source: Source<'_>,
    labels: &Option<Vec<u64>>,
    map: &HashMap<u64, usize>,
    node_count: usize,
    seed: u64,
) -> Result<QueryBatch, CliError> {
    match source {
        Source::Pairs(file) => {
            let reader = effres_io::dataset::open_text(file)?;
            let raw = pairs::read_pairs(reader)?;
            let mut dense = Vec::with_capacity(raw.len());
            for &(p, q) in &raw {
                let dp = resolve_node(p, labels, map)
                    .ok_or_else(|| CliError::Run(format!("node id {p} not in the dataset")))?;
                let dq = resolve_node(q, labels, map)
                    .ok_or_else(|| CliError::Run(format!("node id {q} not in the dataset")))?;
                dense.push((dp, dq));
            }
            Ok(QueryBatch::from_pairs(dense))
        }
        Source::Random(count) => Ok(QueryBatch::random(count, node_count, seed)),
    }
}

/// Prints a batch summary (plus the per-batch page-traffic and scheduler
/// lines when the backend pages columns in from disk) and writes the result
/// file.
fn serve_batch(
    result: &effres_service::BatchResult,
    batch: &QueryBatch,
    labels: &Option<Vec<u64>>,
    output: Option<&Path>,
    pool_threads: usize,
) -> Result<(), CliError> {
    println!(
        "batch      {} queries in {:.3}s, {} chunk(s) on a {}-worker pool — {:.0} queries/s",
        batch.len(),
        result.elapsed.as_secs_f64(),
        result.threads,
        pool_threads,
        result.throughput()
    );
    println!(
        "cache      {} hits, {} misses",
        result.cache_hits, result.cache_misses
    );
    let k = result.kernel;
    if k.pairs() > 0 {
        println!(
            "kernel     {:.1} MiB streamed, {} hub load(s) × {:.1} pair(s)/hub column, \
             {} isolated pair(s)",
            k.bytes_streamed as f64 / (1024.0 * 1024.0),
            k.hub_loads,
            k.pairs_per_hub_load(),
            k.isolated_pairs
        );
    }
    if let Some(page) = result.page_cache {
        // Per-batch traffic (the counters are snapshot/reset around the
        // batch), not process-lifetime totals.
        let lookups = page.hits + page.misses;
        println!(
            "page cache {} hits, {} misses ({:.1}% hit rate), {:.1} MiB read, \
             {} readahead read(s) — this batch",
            page.hits,
            page.misses,
            if lookups == 0 {
                100.0
            } else {
                100.0 * page.hits as f64 / lookups as f64
            },
            page.bytes_read as f64 / (1024.0 * 1024.0),
            page.readahead_reads
        );
    }
    if let Some(schedule) = result.schedule {
        println!(
            "schedule   {} page-pair cluster(s) -> {} pinned block(s), {} readahead window(s)",
            schedule.clusters, schedule.blocks, schedule.windows
        );
    }
    let mean = if result.values.is_empty() {
        0.0
    } else {
        result.values.iter().sum::<f64>() / result.values.len() as f64
    };
    println!("mean R     {mean:.6}");

    if let Some(output) = output {
        let file = std::fs::File::create(output).map_err(IoError::Io)?;
        let mut writer = std::io::BufWriter::new(file);
        use std::io::Write;
        let original = |dense: usize| -> u64 {
            match labels {
                Some(labels) => labels[dense],
                None => dense as u64,
            }
        };
        for (&(p, q), &r) in batch.pairs().iter().zip(&result.values) {
            writeln!(writer, "{} {} {r}", original(p), original(q)).map_err(IoError::Io)?;
        }
        writer.flush().map_err(IoError::Io)?;
        println!("results    {}", output.display());
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), CliError> {
    let mut options = parse_options(args)?;
    let path = require_input(&options)?.to_path_buf();
    // Validate the batch source before the (potentially expensive) load.
    let source = match (&options.pairs_file, options.random) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--pairs and --random are mutually exclusive".into(),
            ))
        }
        (None, None) => {
            return Err(CliError::Usage(
                "batch needs --pairs <file> or --random <count>".into(),
            ))
        }
        (Some(file), None) => Source::Pairs(file),
        (None, Some(count)) => Source::Random(count),
    };
    // One persistent pool for the whole build-then-serve run: the
    // level-scheduled estimator build (dataset inputs) and the batch engine
    // reuse the same workers instead of each spawning their own. Sized for
    // the larger of the two stages (`0` on either flag means all cores).
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let resolve = |threads: usize| if threads == 0 { cores } else { threads };
    let pool = WorkerPool::new(resolve(options.threads).max(resolve(options.config.build.threads)));
    options.config = options.config.with_worker_pool(pool.clone());

    if options.paged {
        // Out-of-core serving: never materialize the arena. Cold start is
        // header + col_ptr only; the first answered query then additionally
        // pages in its two columns, so it is the honest time-to-first-query.
        let boot = Instant::now();
        let paged = obtain_paged(&path, &options)?;
        let labels = if options.dense {
            None
        } else {
            paged.labels.clone()
        };
        let map = label_map(&labels);
        let node_count = paged.node_count();
        let batch = build_batch(source, &labels, &map, node_count, options.seed)?;
        let engine = QueryEngine::new(
            Arc::new(paged),
            EngineOptions {
                threads: options.threads,
                cache_capacity: options.cache,
                pool: Some(pool.clone()),
                readahead_pages: options.readahead,
                ..EngineOptions::default()
            },
        );
        if let Some(&(p, q)) = batch.pairs().first() {
            engine.query(p, q)?;
            println!(
                "cold start first query answered {:.3}s after open began",
                boot.elapsed().as_secs_f64()
            );
        }
        // Batches run through the locality scheduler by default: queries are
        // clustered by the pages they touch, blocks are pinned and drained,
        // and the hi side is swept with coalesced readahead. `--no-schedule`
        // keeps the arrival-order reference path (bit-identical, far more
        // page traffic).
        let result = if options.no_schedule {
            engine.execute(&batch)?
        } else {
            engine.execute_scheduled(&batch)?
        };
        return serve_batch(
            &result,
            &batch,
            &labels,
            options.output.as_deref(),
            pool.threads(),
        );
    }

    let snapshot = obtain_snapshot(&path, &options)?;
    let labels = if options.dense {
        None
    } else {
        snapshot.labels.clone()
    };
    let map = label_map(&labels);
    let node_count = snapshot.estimator.node_count();
    let batch = build_batch(source, &labels, &map, node_count, options.seed)?;
    let engine = QueryEngine::new(
        Arc::new(snapshot.estimator),
        EngineOptions {
            threads: options.threads,
            cache_capacity: options.cache,
            pool: Some(pool.clone()),
            ..EngineOptions::default()
        },
    );
    let result = engine.execute(&batch)?;
    serve_batch(
        &result,
        &batch,
        &labels,
        options.output.as_deref(),
        pool.threads(),
    )
}

/// `centrality <dataset>` — spanning-edge centrality of every edge,
/// `c(e) = min(w(e) · R(u, v), 1)`. The all-edges batch is the natural
/// stress workload for the grouped multi-pair kernels: an edge list shares
/// endpoints heavily, so after hub sorting most pairs ride a pinned hub
/// column instead of re-streaming it.
///
/// By default the estimator is built from the dataset; `--snapshot <file>`
/// serves the queries from a prebuilt snapshot instead (resident, or
/// out-of-core with `--paged`) while the dataset still supplies the edge
/// list — it must be the same dataset (same ingest options) the snapshot
/// was built from, so the dense id spaces line up.
fn cmd_centrality(args: &[String]) -> Result<(), CliError> {
    let mut options = parse_options(args)?;
    let path = require_input(&options)?.to_path_buf();
    if is_snapshot(&path) {
        return Err(CliError::Usage(
            "centrality needs the dataset for its edge list; pass a prebuilt snapshot \
             with --snapshot <file>"
                .into(),
        ));
    }
    if options.paged && options.snapshot.is_none() {
        return Err(CliError::Usage(
            "--paged serves a prebuilt snapshot; add --snapshot <file>".into(),
        ));
    }
    // One persistent pool for build-then-serve, exactly like `batch`.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let resolve = |threads: usize| if threads == 0 { cores } else { threads };
    let pool = WorkerPool::new(resolve(options.threads).max(resolve(options.config.build.threads)));
    options.config = options.config.with_worker_pool(pool.clone());

    let start = Instant::now();
    let ds = load_graph(&path, &options.ingest)?;
    println!(
        "ingested {} ({} nodes, {} edges kept) in {:.3}s",
        path.display(),
        ds.graph.node_count(),
        ds.graph.edge_count(),
        start.elapsed().as_secs_f64()
    );
    let graph = ds.graph;
    let batch = QueryBatch::all_edges(&graph);

    let engine_options = EngineOptions {
        threads: options.threads,
        cache_capacity: options.cache,
        pool: Some(pool.clone()),
        readahead_pages: options.readahead,
        ..EngineOptions::default()
    };
    let check_nodes = |served: usize| -> Result<(), CliError> {
        if graph.node_count() > served {
            return Err(CliError::Run(format!(
                "snapshot covers {served} nodes but the dataset has {}; build the snapshot \
                 from this dataset with the same ingest options",
                graph.node_count()
            )));
        }
        Ok(())
    };
    let result = match options.snapshot.clone() {
        Some(snap) if options.paged => {
            let paged = obtain_paged(&snap, &options)?;
            check_nodes(paged.node_count())?;
            let engine = QueryEngine::new(Arc::new(paged), engine_options);
            if options.no_schedule {
                engine.execute(&batch)?
            } else {
                engine.execute_scheduled(&batch)?
            }
        }
        Some(snap) => {
            let snapshot = obtain_snapshot(&snap, &options)?;
            check_nodes(snapshot.estimator.node_count())?;
            let engine = QueryEngine::new(Arc::new(snapshot.estimator), engine_options);
            engine.execute(&batch)?
        }
        None => {
            let start = Instant::now();
            let estimator = EffectiveResistanceEstimator::build(&graph, &options.config)?;
            println!(
                "built estimator (factor nnz {}, inverse nnz {}) in {:.3}s",
                estimator.stats().factor_nnz,
                estimator.stats().inverse_nnz,
                start.elapsed().as_secs_f64()
            );
            let engine = QueryEngine::new(Arc::new(estimator), engine_options);
            engine.execute(&batch)?
        }
    };

    let centralities = centralities_from_resistances(&graph, &result.values);
    println!(
        "centrality {} edge(s) in {:.3}s, {} chunk(s) on a {}-worker pool — {:.0} queries/s",
        batch.len(),
        result.elapsed.as_secs_f64(),
        result.threads,
        pool.threads(),
        result.throughput()
    );
    let k = result.kernel;
    if k.pairs() > 0 {
        println!(
            "kernel     {:.1} MiB streamed, {} hub load(s) × {:.1} pair(s)/hub column, \
             {} isolated pair(s)",
            k.bytes_streamed as f64 / (1024.0 * 1024.0),
            k.hub_loads,
            k.pairs_per_hub_load(),
            k.isolated_pairs
        );
    }
    if let Some(page) = result.page_cache {
        let lookups = page.hits + page.misses;
        println!(
            "page cache {} hits, {} misses ({:.1}% hit rate), {:.1} MiB read — this batch",
            page.hits,
            page.misses,
            if lookups == 0 {
                100.0
            } else {
                100.0 * page.hits as f64 / lookups as f64
            },
            page.bytes_read as f64 / (1024.0 * 1024.0)
        );
    }
    if let Some(schedule) = result.schedule {
        println!(
            "schedule   {} page-pair cluster(s) -> {} pinned block(s), {} readahead window(s)",
            schedule.clusters, schedule.blocks, schedule.windows
        );
    }
    // For exact resistances the centralities of a connected graph sum to
    // n − 1 (every spanning tree has n − 1 edges); the approximate sum
    // landing near it is a cheap whole-workload sanity check.
    let sum: f64 = centralities.iter().sum();
    println!(
        "sum        {sum:.3} (spanning-tree identity: n - 1 = {})",
        graph.node_count().saturating_sub(1)
    );

    if let Some(output) = &options.output {
        let file = std::fs::File::create(output).map_err(IoError::Io)?;
        let mut writer = std::io::BufWriter::new(file);
        use std::io::Write;
        for ((_, e), &c) in graph.edges().zip(&centralities) {
            writeln!(writer, "{} {} {c}", ds.labels[e.u], ds.labels[e.v]).map_err(IoError::Io)?;
        }
        writer.flush().map_err(IoError::Io)?;
        println!("results    {}", output.display());
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    let path = require_input(&options)?;
    // `stats <host:port>` against something that is not a local file fetches
    // a live server's stats document instead.
    if !path.exists() {
        if let Some(addr) = path.to_str().filter(|s| s.contains(':')) {
            let mut client = Client::connect(addr)
                .map_err(|e| CliError::Run(format!("cannot connect to {addr}: {e}")))?;
            let stats = client
                .stats_json()
                .map_err(|e| CliError::Run(format!("stats request failed: {e}")))?;
            println!("{stats}");
            return Ok(());
        }
    }
    if options.paged {
        let paged = obtain_paged(path, &options)?;
        println!("snapshot   {} (paged)", path.display());
        println!("format     v{}", paged.version);
        let s = paged.stats;
        println!("nodes      {}", s.node_count);
        println!(
            "factor     {} nnz ({} dropped)",
            s.factor_nnz, s.ichol_dropped
        );
        println!(
            "inverse    {} nnz ({} pruned), nnz/(n·log2 n) = {:.3}",
            s.inverse_nnz, s.pruned_entries, s.inverse_nnz_ratio
        );
        let f = paged.store.footprint();
        println!(
            "on disk    col_ptr {:.1} MiB + rows {:.1} MiB + vals {:.1} MiB = {:.1} MiB \
             ({}-byte row indices)",
            mib(f.col_ptr_bytes),
            mib(f.rows_bytes),
            mib(f.vals_bytes),
            mib(f.total_bytes()),
            f.index_width_bytes
        );
        println!(
            "resident   {:.1} MiB (col_ptr/offset/norm blocks; columns page in on demand)",
            mib(paged.store.resident_bytes() + paged.norms().map_or(0, |n| n.len() * 8))
        );
        println!(
            "pages      {} column(s)/page, {} page(s) on disk, cache {} page(s)",
            paged.store.columns_per_page(),
            paged.store.page_count(),
            paged.store.cache_capacity_pages()
        );
        println!(
            "codec      {} rows, norms {}",
            match paged.store.row_codec() {
                effres_io::RowCodec::Raw => "raw u32",
                effres_io::RowCodec::Varint => "delta-varint",
            },
            if paged.norms().is_some() {
                "persisted (v3)"
            } else {
                "per-page (v2)"
            }
        );
        println!(
            "values     {}",
            match paged.store.value_mode() {
                ValueMode::F64 => "f64",
                ValueMode::F32 => "f32 (narrowed at page decode; disk stays f64)",
            }
        );
        println!("max depth  {}", s.max_depth);
        println!(
            "labels     {}",
            if paged.labels.is_some() { "yes" } else { "no" }
        );
        return Ok(());
    }
    if is_snapshot(path) {
        let snapshot = load_snapshot(path)?;
        println!("snapshot   {}", path.display());
        match snapshot.version {
            Some(v) => println!("format     v{v}"),
            None => println!("format     built in memory"),
        }
        print_estimator_stats(&snapshot.estimator);
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let workers = if options.threads == 0 {
            cores
        } else {
            options.threads
        };
        println!("pool       {workers} worker thread(s) for build-then-serve (--threads)");
        println!(
            "labels     {}",
            if snapshot.labels.is_some() {
                "yes"
            } else {
                "no"
            }
        );
        Ok(())
    } else {
        cmd_load(args)
    }
}

/// Builds the served engine from a dataset or snapshot path, reporting the
/// timings — shared by `serve` startup and `OP_RELOAD`, so a hot reload
/// goes through exactly the code path a fresh start would (on the same
/// worker pool).
///
/// The server speaks dense node ids, so labels are not needed here; a
/// client that has dataset ids maps them with `query --dense` semantics.
fn build_engine(
    path: &Path,
    options: &Options,
    pool: &WorkerPool,
) -> Result<(ServedEngine, Option<u32>), CliError> {
    if options.paged {
        let paged = obtain_paged(path, options)?;
        let version = paged.version;
        let engine = QueryEngine::new(
            Arc::new(paged),
            EngineOptions {
                threads: options.threads,
                cache_capacity: options.cache,
                pool: Some(pool.clone()),
                readahead_pages: options.readahead,
                admission_queue_depth: (options.admission_depth > 0)
                    .then_some(options.admission_depth),
                admission_timeout: Duration::from_millis(options.admission_timeout_ms),
                ..EngineOptions::default()
            },
        );
        Ok((ServedEngine::Paged(engine), Some(version)))
    } else {
        let snapshot = obtain_snapshot(path, options)?;
        let version = snapshot.version;
        let engine = QueryEngine::new(
            Arc::new(snapshot.estimator),
            EngineOptions {
                threads: options.threads,
                cache_capacity: options.cache,
                pool: Some(pool.clone()),
                ..EngineOptions::default()
            },
        );
        Ok((ServedEngine::Resident(engine), version))
    }
}

/// SIGINT/SIGTERM handling for `serve`, std-only: the handler just flips an
/// atomic (the only thing that is async-signal-safe to do), and a watcher
/// thread polls it and triggers the same graceful drain as `OP_SHUTDOWN`.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SEEN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SEEN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // `signal(2)` from the platform libc that std already links.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Registers the flag-setting handler for SIGINT and SIGTERM.
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// True once either signal has been delivered.
    pub fn seen() -> bool {
        SEEN.load(Ordering::SeqCst)
    }
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    let path = require_input(&options)?.to_path_buf();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let workers = if options.threads == 0 {
        cores
    } else {
        options.threads
    };
    let pool = WorkerPool::new(workers);
    let (engine, version) = build_engine(&path, &options, &pool)?;
    let addr = format!("{}:{}", options.host, options.port);
    let server_options = ServerOptions {
        frame_deadline: Duration::from_secs(options.frame_deadline_secs.max(1)),
        idle_deadline: Duration::from_secs(options.idle_deadline_secs.max(1)),
        drain_deadline: Duration::from_secs(options.drain_deadline_secs),
        scrub_bytes_per_sec: (options.scrub_mibps * 1024.0 * 1024.0) as u64,
        brownout_enter: options.brownout_enter,
        brownout_exit: options.brownout_exit,
    };
    let snapshot_path = is_snapshot(&path).then(|| path.clone());
    let server = Server::bind_with(&addr, engine, version, snapshot_path, server_options)
        .map_err(|e| CliError::Run(format!("cannot bind {addr}: {e}")))?;
    // Hot reloads rebuild through `build_engine` with the same serve options
    // and the same worker pool; `options` moves into the closure (nothing
    // below needs it).
    {
        let pool = pool.clone();
        server.set_reloader(move |new_path: &Path| {
            build_engine(new_path, &options, &pool).map_err(|e| match e {
                CliError::Usage(message) | CliError::Run(message) => message,
            })
        });
    }
    let served = match version {
        Some(v) => format!("snapshot v{v}"),
        None => "built in memory".to_string(),
    };
    let epoch = server.engine();
    println!(
        "serving on {} — {} nodes, {} backend, {served}, {workers} worker(s)",
        server.local_addr(),
        epoch.engine.node_count(),
        epoch.engine.backend_kind(),
    );
    println!(
        "stop with `effres-cli bench-client <addr> --requests 0 --shutdown`, SIGINT, or \
         SIGTERM — in-flight requests drain first"
    );
    #[cfg(unix)]
    let serving = Arc::new(std::sync::atomic::AtomicBool::new(true));
    #[cfg(unix)]
    {
        sig::install();
        let handle = server.handle();
        let serving = Arc::clone(&serving);
        std::thread::spawn(move || {
            while serving.load(MemOrder::Relaxed) {
                if sig::seen() {
                    eprintln!("signal received — draining in-flight requests");
                    handle.shutdown();
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        });
    }
    let stats = server
        .run()
        .map_err(|e| CliError::Run(format!("serve loop failed: {e}")))?;
    #[cfg(unix)]
    serving.store(false, MemOrder::Relaxed);
    println!("final stats {stats}");
    Ok(())
}

/// `ping <host:port>` — one round trip against a live server; exit code is
/// the health check (scriptable from cron or an orchestrator's liveness
/// probe).
fn cmd_ping(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    let addr = require_input(&options)?
        .to_str()
        .ok_or_else(|| CliError::Usage("ping needs a <host:port> address".into()))?
        .to_string();
    let started = Instant::now();
    let mut client = Client::connect(addr.as_str())
        .map_err(|e| CliError::Run(format!("cannot connect to {addr}: {e}")))?;
    let report = client
        .ping()
        .map_err(|e| CliError::Run(format!("ping failed: {e}")))?;
    println!(
        "{addr} alive — {} backend, {} nodes, epoch {}, health {}{}, up {:.1}s \
         (round trip {:.1} ms)",
        if report.paged { "paged" } else { "resident" },
        report.node_count,
        report.epoch,
        report.health.as_str(),
        if report.brownout { " (brownout)" } else { "" },
        report.uptime_secs,
        started.elapsed().as_secs_f64() * 1e3
    );
    if let Some(snapshot) = &report.snapshot_path {
        println!("snapshot   {snapshot}");
    }
    Ok(())
}

/// `reload <host:port> <snapshot>` — hot-swap the served engine without
/// dropping a connection: in-flight requests finish on the old snapshot,
/// everything after the swap answers from the new one.
fn cmd_reload(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    let addr = require_input(&options)?
        .to_str()
        .ok_or_else(|| CliError::Usage("reload needs a <host:port> address".into()))?
        .to_string();
    let [path] = options.positional.as_slice() else {
        return Err(CliError::Usage(
            "reload needs exactly `<host:port> <snapshot>`".into(),
        ));
    };
    let started = Instant::now();
    let mut client = Client::connect(addr.as_str())
        .map_err(|e| CliError::Run(format!("cannot connect to {addr}: {e}")))?;
    let report = client
        .reload(path)
        .map_err(|e| CliError::Run(format!("reload failed: {e}")))?;
    println!(
        "{addr} reloaded {path} — epoch {}, {} nodes, {} ({:.3}s)",
        report.epoch,
        report.node_count,
        match report.snapshot_version {
            Some(v) => format!("snapshot v{v}"),
            None => "built in memory".to_string(),
        },
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Per-connection batch outcomes under `--deadline-ms` (all zero without it).
#[derive(Default)]
struct DeadlineTally {
    batches: u64,
    ok_batches: u64,
    missed: u64,
    shed: u64,
}

fn cmd_bench_client(args: &[String]) -> Result<(), CliError> {
    let options = parse_options(args)?;
    let addr = require_input(&options)?
        .to_str()
        .ok_or_else(|| CliError::Usage("bench-client needs a <host:port> address".into()))?
        .to_string();
    let connect = |what: &str| -> Result<Client, CliError> {
        Client::connect(addr.as_str())
            .map_err(|e| CliError::Run(format!("cannot connect {what} to {addr}: {e}")))
    };
    let mut probe = connect("probe")?;
    let info = probe.info();
    println!(
        "server     {} — {} nodes, {} backend, {}",
        addr,
        info.node_count,
        if info.paged { "paged" } else { "resident" },
        match info.snapshot_version {
            Some(v) => format!("snapshot v{v}"),
            None => "built in memory".to_string(),
        }
    );
    if info.node_count < 2 {
        return Err(CliError::Run("server has fewer than two nodes".into()));
    }

    // ---- load phase: N connections, closed loop (or paced open loop) ----
    let latency = Arc::new(LatencyHistogram::new());
    let queries_done = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut workers = Vec::new();
    for connection in 0..options.connections {
        let addr = addr.clone();
        let latency = Arc::clone(&latency);
        let queries_done = Arc::clone(&queries_done);
        let node_count = info.node_count;
        let requests = options.requests;
        let batch = options.batch;
        let batch_every = options.batch_every.max(1);
        let rate = options.rate;
        let deadline_ms = options.deadline_ms;
        let mut rng = options.seed ^ (0x9E37 + connection as u64);
        workers.push(std::thread::spawn(
            move || -> Result<DeadlineTally, ClientError> {
                let mut client = Client::connect(addr.as_str())?;
                let mut tally = DeadlineTally::default();
                let begun = Instant::now();
                for request in 0..requests {
                    if rate > 0.0 {
                        // Open loop: stick to the schedule; if we are behind,
                        // fire immediately (no catch-up bursts beyond that).
                        let due = Duration::from_secs_f64(request as f64 / rate);
                        if let Some(pause) = due.checked_sub(begun.elapsed()) {
                            std::thread::sleep(pause);
                        }
                    }
                    let sent = Instant::now();
                    if batch > 0 && request % batch_every == batch_every - 1 {
                        let pairs: Vec<(u64, u64)> = (0..batch)
                            .map(|_| {
                                (
                                    splitmix64(&mut rng) % node_count,
                                    splitmix64(&mut rng) % node_count,
                                )
                            })
                            .collect();
                        tally.batches += 1;
                        let outcome = if deadline_ms > 0 {
                            client.query_batch_deadline(&pairs, Duration::from_millis(deadline_ms))
                        } else {
                            client.query_batch(&pairs)
                        };
                        match outcome {
                            Ok(_) => {
                                tally.ok_batches += 1;
                                queries_done.fetch_add(batch as u64, MemOrder::Relaxed);
                            }
                            // Under a deadline, misses and sheds are the
                            // measurement, not a failure — count and go on.
                            Err(ClientError::DeadlineExceeded(_)) if deadline_ms > 0 => {
                                tally.missed += 1;
                            }
                            Err(ClientError::Busy(_)) if deadline_ms > 0 => {
                                tally.shed += 1;
                            }
                            Err(e) => return Err(e),
                        }
                    } else {
                        let p = splitmix64(&mut rng) % node_count;
                        let q = splitmix64(&mut rng) % node_count;
                        client.query(p, q)?;
                        queries_done.fetch_add(1, MemOrder::Relaxed);
                    }
                    latency.record(sent.elapsed());
                }
                Ok(tally)
            },
        ));
    }
    let mut failures = Vec::new();
    let mut tally = DeadlineTally::default();
    for (connection, worker) in workers.into_iter().enumerate() {
        match worker.join() {
            Ok(Ok(t)) => {
                tally.batches += t.batches;
                tally.ok_batches += t.ok_batches;
                tally.missed += t.missed;
                tally.shed += t.shed;
            }
            Ok(Err(e)) => failures.push(format!("connection {connection}: {e}")),
            Err(_) => failures.push(format!("connection {connection}: worker panicked")),
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    if !failures.is_empty() {
        return Err(CliError::Run(failures.join("; ")));
    }

    let queries = queries_done.load(MemOrder::Relaxed);
    let snapshot = latency.snapshot();
    if options.requests > 0 {
        println!(
            "load       {} connection(s) × {} request(s), {} queries in {elapsed:.3}s \
             — {:.0} queries/s",
            options.connections,
            options.requests,
            queries,
            queries as f64 / elapsed.max(1e-9),
        );
        println!(
            "latency    p50 {} µs, p95 {} µs, p99 {} µs, max {} µs (mean {:.1} µs, \
             per request{})",
            snapshot.quantile_micros(0.50),
            snapshot.quantile_micros(0.95),
            snapshot.quantile_micros(0.99),
            snapshot.max_micros,
            snapshot.mean_micros(),
            if options.batch > 0 {
                "; batches count once"
            } else {
                ""
            }
        );
        if options.deadline_ms > 0 {
            let cancelled = tally.missed + tally.shed;
            println!(
                "deadline   {} ms budget — {} batch(es): {} ok, {} deadline-missed, \
                 {} shed busy ({:.1}% cancelled)",
                options.deadline_ms,
                tally.batches,
                tally.ok_batches,
                tally.missed,
                tally.shed,
                100.0 * cancelled as f64 / (tally.batches.max(1)) as f64,
            );
        }
    }

    // ---- check phase: deterministic pairs, greppable `p q R` lines ----
    if options.check > 0 {
        let mut rng = options.seed ^ 0xC0FFEE;
        for _ in 0..options.check {
            let p = splitmix64(&mut rng) % info.node_count;
            let q = splitmix64(&mut rng) % info.node_count;
            let value = probe
                .query(p, q)
                .map_err(|e| CliError::Run(format!("check query failed: {e}")))?;
            // f64 Display is shortest-roundtrip, so these lines compare
            // byte-for-byte against `effres-cli query --dense` output.
            println!("check {p} {q} {value}");
        }
    }

    let stats = probe
        .stats_json()
        .map_err(|e| CliError::Run(format!("stats request failed: {e}")))?;
    println!("server stats {stats}");

    if options.shutdown {
        probe
            .shutdown_server()
            .map_err(|e| CliError::Run(format!("shutdown request failed: {e}")))?;
        println!("server acknowledged shutdown");
    }
    Ok(())
}

/// SplitMix64: the bench client's deterministic id stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn print_estimator_stats(estimator: &EffectiveResistanceEstimator) {
    let s = estimator.stats();
    println!("nodes      {}", s.node_count);
    println!(
        "factor     {} nnz ({} dropped)",
        s.factor_nnz, s.ichol_dropped
    );
    println!(
        "inverse    {} nnz ({} pruned), nnz/(n·log2 n) = {:.3}",
        s.inverse_nnz, s.pruned_entries, s.inverse_nnz_ratio
    );
    // The arena footprint is what the query path actually streams; the row
    // block is the one the u32 index narrowing halved.
    let f = estimator.approximate_inverse().footprint();
    println!(
        "arena      col_ptr {:.1} MiB + rows {:.1} MiB + vals {:.1} MiB = {:.1} MiB \
         ({}-byte row indices)",
        mib(f.col_ptr_bytes),
        mib(f.rows_bytes),
        mib(f.vals_bytes),
        mib(f.total_bytes()),
        f.index_width_bytes
    );
    match estimator.approximate_inverse().value_mode() {
        ValueMode::F64 => println!("values     f64"),
        ValueMode::F32 => println!(
            "values     f32 (max relative narrowing error {:.2e})",
            estimator.approximate_inverse().narrowing_error()
        ),
    }
    println!("max depth  {}", s.max_depth);
}
