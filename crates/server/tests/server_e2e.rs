//! In-process end-to-end tests: a real `Server` on an ephemeral loopback
//! port, real `Client`s over TCP, both backends.

use effres::{EffectiveResistanceEstimator, EffresConfig};
use effres_graph::generators;
use effres_io::paged::{open_paged, PagedOptions};
use effres_io::snapshot::save_snapshot;
use effres_server::{Client, ClientError, ServedEngine, Server};
use effres_service::{EngineOptions, QueryEngine};
use std::sync::Arc;

fn estimator() -> EffectiveResistanceEstimator {
    let graph = generators::grid_2d(8, 8, 0.5, 2.0, 5).expect("generator");
    EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build")
}

/// A local engine over the same estimator: the values the network must
/// reproduce bit for bit. (The raw `estimator.query` path sums in a
/// different order than the engine kernel, so the engine is the reference —
/// the wire must add nothing on top of it.)
fn reference_engine(
    estimator: &Arc<EffectiveResistanceEstimator>,
) -> QueryEngine<EffectiveResistanceEstimator> {
    QueryEngine::new(
        Arc::clone(estimator),
        EngineOptions {
            cache_capacity: 0,
            ..EngineOptions::default()
        },
    )
}

/// Binds a resident server on an ephemeral port and runs it on a thread;
/// returns the address and the join handle (which yields the final stats).
fn start_resident() -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<String>>,
    Arc<EffectiveResistanceEstimator>,
) {
    let estimator = Arc::new(estimator());
    let engine = QueryEngine::new(
        Arc::clone(&estimator),
        EngineOptions {
            cache_capacity: 256,
            ..EngineOptions::default()
        },
    );
    let server = Server::bind("127.0.0.1:0", ServedEngine::Resident(engine), None).expect("bind");
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run());
    (addr, runner, estimator)
}

#[test]
fn hello_query_batch_stats_and_shutdown_round_trip() {
    let (addr, runner, estimator) = start_resident();
    let mut client = Client::connect(addr).expect("connect");

    let info = client.info();
    assert_eq!(info.node_count, 64);
    assert!(!info.paged);
    assert_eq!(info.snapshot_version, None);

    // Network answers are the engine's answers, bit for bit.
    let reference = reference_engine(&estimator);
    let expected = reference.query(3, 41).expect("direct");
    let served = client.query(3, 41).expect("served");
    assert_eq!(served.to_bits(), expected.to_bits());
    assert_eq!(client.query(5, 5).expect("self pair"), 0.0);

    let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i % 64, (i * 7 + 1) % 64)).collect();
    let values = client.query_batch(&pairs).expect("batch");
    assert_eq!(values.len(), pairs.len());
    for (&(p, q), value) in pairs.iter().zip(&values) {
        let direct = reference.query(p as usize, q as usize).expect("direct");
        assert_eq!(value.to_bits(), direct.to_bits(), "pair ({p}, {q})");
    }

    let stats = client.stats_json().expect("stats");
    for key in [
        "\"backend\":\"resident\"",
        "\"nodes\":64",
        "\"snapshot_version\":null",
        "\"admission\":null",
        "\"latency_us\"",
        "\"throughput_qps\"",
    ] {
        assert!(stats.contains(key), "stats JSON missing {key}: {stats}");
    }

    client.shutdown_server().expect("shutdown ack");
    let final_stats = runner
        .join()
        .expect("server thread")
        .expect("clean serve loop");
    assert!(final_stats.contains("\"requests\""));
}

#[test]
fn bad_requests_draw_errors_without_killing_the_connection() {
    let (addr, runner, _estimator) = start_resident();
    let mut client = Client::connect(addr).expect("connect");

    // Out-of-range node id: a remote error, and the connection survives.
    match client.query(3, 10_000) {
        Err(ClientError::Remote(message)) => {
            assert!(message.contains("10000"), "unhelpful error: {message}")
        }
        other => panic!("expected a remote error, got {other:?}"),
    }
    let healthy = client.query(0, 1).expect("connection still serves");
    assert!(healthy > 0.0);

    client.shutdown_server().expect("shutdown");
    runner.join().expect("server thread").expect("serve loop");
}

#[test]
fn concurrent_clients_share_one_engine_and_drain_on_shutdown() {
    let (addr, runner, estimator) = start_resident();
    let reference = reference_engine(&estimator);
    std::thread::scope(|scope| {
        for worker in 0..4u64 {
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..50u64 {
                    let p = (i * 13 + worker) % 64;
                    let q = (i * 31 + worker * 5) % 64;
                    let served = client.query(p, q).expect("query");
                    let direct = reference.query(p as usize, q as usize).expect("direct");
                    assert_eq!(served.to_bits(), direct.to_bits());
                }
            });
        }
    });
    let mut closer = Client::connect(addr).expect("connect closer");
    let stats = closer.stats_json().expect("stats");
    assert!(
        stats.contains("\"queries\":200"),
        "four clients × 50: {stats}"
    );
    closer.shutdown_server().expect("shutdown");
    runner.join().expect("server thread").expect("serve loop");
}

#[test]
fn paged_backend_serves_with_admission_control_over_the_wire() {
    let dir = std::env::temp_dir().join("effres-server-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("paged.snap");
    let resident = Arc::new(estimator());
    save_snapshot(&path, &resident, None).expect("save");
    let reference = reference_engine(&resident);
    let paged = open_paged(
        &path,
        &PagedOptions {
            columns_per_page: 2,
            cache_pages: 4,
            cache_shards: 1,
            ..PagedOptions::default()
        },
    )
    .expect("open");
    let version = paged.version;
    let engine = QueryEngine::new(
        Arc::new(paged),
        EngineOptions {
            cache_capacity: 0,
            threads: 2,
            parallel_threshold: 8,
            ..EngineOptions::default()
        },
    );
    let server =
        Server::bind("127.0.0.1:0", ServedEngine::Paged(engine), Some(version)).expect("bind");
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect");
    assert!(client.info().paged);
    assert_eq!(client.info().snapshot_version, Some(version));

    // Two clients race batches large enough to engage the scheduler and the
    // admission ledger; answers must match the resident estimator exactly.
    std::thread::scope(|scope| {
        for worker in 0..2u64 {
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let pairs: Vec<(u64, u64)> = (0..600)
                    .map(|i| ((i * 17 + worker) % 64, (i * 5 + worker * 29) % 64))
                    .collect();
                let values = client.query_batch(&pairs).expect("batch");
                for (&(p, q), value) in pairs.iter().zip(&values) {
                    let direct = reference.query(p as usize, q as usize).expect("direct");
                    assert_eq!(value.to_bits(), direct.to_bits(), "pair ({p}, {q})");
                }
            });
        }
    });

    let stats = client.stats_json().expect("stats");
    assert!(stats.contains("\"backend\":\"paged\""));
    assert!(
        stats.contains("\"admission\":{\"budget\":"),
        "paged serving reports its admission ledger: {stats}"
    );
    client.shutdown_server().expect("shutdown");
    runner.join().expect("server thread").expect("serve loop");
}
