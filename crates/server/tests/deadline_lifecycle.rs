//! End-to-end tests of the deadline-aware request lifecycle over real TCP:
//! deadline-carrying batch opcodes staying bit-identical, mid-flight expiry
//! with abandoned-work accounting, disconnect-triggered cancellation
//! releasing the admission lease, and the brownout controller restoring
//! goodput under a storm of doomed requests.

use effres::{EffectiveResistanceEstimator, EffresConfig};
use effres_graph::generators;
use effres_io::paged::{open_paged, PagedOptions, PagedSnapshot};
use effres_io::snapshot::save_snapshot;
use effres_server::{Client, ClientError, ServedEngine, Server, ServerHandle, ServerOptions};
use effres_service::{EngineOptions, QueryEngine};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const NODES: u64 = 256;

fn snapshot_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let graph = generators::grid_2d(16, 16, 0.5, 2.0, 11).expect("generator");
        let estimator =
            EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build");
        let dir = std::env::temp_dir().join("effres-deadline-lifecycle");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("deadline-{}.snap", std::process::id()));
        save_snapshot(&path, &estimator, None).expect("save");
        path
    })
}

/// Tiny pages + tiny cache: every batch churns the page cache, so big
/// batches take long enough for deadlines and disconnects to land mid-run.
fn churny_options() -> PagedOptions {
    PagedOptions {
        columns_per_page: 2,
        cache_pages: 12,
        cache_shards: 1,
        ..PagedOptions::default()
    }
}

fn engine_options() -> EngineOptions {
    EngineOptions {
        cache_capacity: 0,
        threads: 2,
        parallel_threshold: 8,
        ..EngineOptions::default()
    }
}

fn serve_with(
    paged: PagedSnapshot,
    options: EngineOptions,
    server_options: ServerOptions,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<String>>,
) {
    let version = paged.version;
    let engine = QueryEngine::new(Arc::new(paged), options);
    let server = Server::bind_with(
        "127.0.0.1:0",
        ServedEngine::Paged(engine),
        Some(version),
        None,
        server_options,
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

fn serve(
    paged: PagedSnapshot,
    options: EngineOptions,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<String>>,
) {
    serve_with(paged, options, ServerOptions::default())
}

/// Fault-free reference over the same snapshot: what every *completed*
/// answer must reproduce bit for bit, cancellation or not.
fn reference_values(pairs: &[(u64, u64)]) -> Vec<f64> {
    let paged = open_paged(snapshot_path(), &churny_options()).expect("reference open");
    let engine = QueryEngine::new(Arc::new(paged), engine_options());
    let batch = effres_service::QueryBatch::from_pairs(
        pairs
            .iter()
            .map(|&(p, q)| (p as usize, q as usize))
            .collect(),
    );
    engine.execute_scheduled(&batch).expect("reference").values
}

/// Pulls `"key":<u64>` out of the hand-rendered stats JSON.
fn json_u64(stats: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = stats.find(&needle).unwrap_or_else(|| {
        panic!("stats JSON missing {key}: {stats}");
    });
    stats[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("stats key {key} is not a number: {stats}"))
}

fn assert_bit_identical(served: &[f64], expected: &[f64], context: &str) {
    assert_eq!(served.len(), expected.len(), "{context}: length");
    for (i, (value, reference)) in served.iter().zip(expected).enumerate() {
        assert_eq!(
            value.to_bits(),
            reference.to_bits(),
            "{context}: pair {i} diverged"
        );
    }
}

#[test]
fn deadline_batches_round_trip_bit_identically() {
    let paged = open_paged(snapshot_path(), &churny_options()).expect("open");
    let (addr, _handle, runner) = serve(paged, engine_options());

    let pairs: Vec<(u64, u64)> = (0..300)
        .map(|i| ((i * 37 + 5) % NODES, (i * 13 + 1) % NODES))
        .collect();
    let expected = reference_values(&pairs);
    let mut client = Client::connect(addr).expect("connect");

    // A met deadline changes nothing observable: same values, bit for bit,
    // on both the all-or-nothing and the partial deadline opcodes.
    let all = client
        .query_batch_deadline(&pairs, Duration::from_secs(30))
        .expect("deadline batch");
    assert_bit_identical(&all, &expected, "deadline batch");
    let partial = client
        .query_batch_partial_deadline(&pairs, Duration::from_secs(30))
        .expect("partial deadline batch");
    assert!(partial.is_complete());
    assert_bit_identical(&partial.values, &expected, "partial deadline batch");

    // Nothing was cancelled, so the lifecycle counters stay at zero and the
    // server is not browned out.
    let stats = client.stats_json().expect("stats");
    assert_eq!(json_u64(&stats, "cancelled_batches"), 0);
    assert_eq!(json_u64(&stats, "deadline_exceeded"), 0);
    assert_eq!(json_u64(&stats, "disconnect_cancels"), 0);
    assert_eq!(json_u64(&stats, "abandoned_pairs"), 0);
    assert_eq!(json_u64(&stats, "brownout_entries"), 0);
    let report = client.ping().expect("ping");
    assert!(!report.brownout);

    client.shutdown_server().expect("shutdown");
    runner.join().expect("thread").expect("serve loop");
}

#[test]
fn expired_deadline_abandons_work_and_keeps_the_connection_usable() {
    let paged = open_paged(snapshot_path(), &churny_options()).expect("open");
    let (addr, _handle, runner) = serve(paged, engine_options());
    let mut client = Client::connect(addr).expect("connect");

    // A fresh server has no service-time evidence, so this oversized batch
    // is admitted and the 20 ms budget expires mid-computation.
    let doomed: Vec<(u64, u64)> = (0..40_000)
        .map(|i| ((i * 37 + 5) % NODES, (i * 13 + 1) % NODES))
        .collect();
    match client.query_batch_deadline(&doomed, Duration::from_millis(20)) {
        Err(ClientError::DeadlineExceeded(message)) => {
            assert!(
                message.contains("deadline"),
                "the typed error explains itself: {message}"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // The abandoned work is accounted, not silently dropped.
    let stats = client.stats_json().expect("stats");
    assert!(json_u64(&stats, "cancelled_batches") >= 1);
    assert!(json_u64(&stats, "deadline_exceeded") >= 1);
    assert!(json_u64(&stats, "abandoned_pairs") >= 1);
    assert_eq!(json_u64(&stats, "disconnect_cancels"), 0);

    // OP_DEADLINE is an answer, not a hangup: the same connection keeps
    // working and completed answers stay bit-identical.
    let pairs: Vec<(u64, u64)> = (0..200)
        .map(|i| ((i * 7 + 3) % NODES, (i * 29 + 11) % NODES))
        .collect();
    let expected = reference_values(&pairs);
    let served = client.query_batch(&pairs).expect("after the miss");
    assert_bit_identical(&served, &expected, "post-cancel batch");

    client.shutdown_server().expect("shutdown");
    runner.join().expect("thread").expect("serve loop");
}

/// Regression (the bug this PR fixes): a client that disconnects mid-batch
/// used to leave the handler computing to completion, its admission lease
/// and pinned pages held the whole time. The disconnect monitor now trips
/// the cancel token and the lease comes back promptly.
#[test]
fn disconnect_mid_batch_releases_the_admission_lease() {
    let paged = open_paged(
        snapshot_path(),
        &PagedOptions {
            columns_per_page: 1,
            cache_pages: 6,
            cache_shards: 1,
            ..PagedOptions::default()
        },
    )
    .expect("open");
    let options = EngineOptions {
        admission_queue_depth: Some(4),
        admission_timeout: Duration::from_secs(60),
        ..engine_options()
    };
    let (addr, handle, runner) = serve(paged, options);

    // Hand-rolled frame: `u32 length | OP_BATCH | u32 count | pairs` — a
    // plain batch (no deadline) from a client that then walks away.
    let pairs: u32 = 60_000;
    let mut payload = Vec::with_capacity(5 + pairs as usize * 16);
    payload.push(effres_server::protocol::OP_BATCH);
    payload.extend_from_slice(&pairs.to_le_bytes());
    for i in 0..u64::from(pairs) {
        payload.extend_from_slice(&((i * 37 + 5) % NODES).to_le_bytes());
        payload.extend_from_slice(&((i * 13 + 1) % NODES).to_le_bytes());
    }
    let mut stream = TcpStream::connect(addr).expect("raw connect");
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .expect("length prefix");
    stream.write_all(&payload).expect("frame body");

    // Wait until the batch holds the pin lease...
    let waited = Instant::now();
    loop {
        let stats = handle.stats_json();
        if json_u64(&stats, "available") < json_u64(&stats, "budget") {
            break;
        }
        assert!(
            waited.elapsed() < Duration::from_secs(20),
            "batch never took its lease"
        );
        std::thread::yield_now();
    }
    // ...then vanish. The FIN reaches the disconnect monitor, which trips
    // the token; the handler abandons the batch and drops the lease.
    drop(stream);
    let waited = Instant::now();
    loop {
        let stats = handle.stats_json();
        if json_u64(&stats, "disconnect_cancels") >= 1
            && json_u64(&stats, "available") == json_u64(&stats, "budget")
        {
            assert!(json_u64(&stats, "cancelled_batches") >= 1);
            assert!(json_u64(&stats, "abandoned_pairs") >= 1);
            // A disconnect is not a deadline miss and not overload.
            assert_eq!(json_u64(&stats, "deadline_exceeded"), 0);
            break;
        }
        assert!(
            waited.elapsed() < Duration::from_secs(30),
            "lease still held after disconnect: {}",
            handle.stats_json()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The reclaimed capacity serves the next client immediately.
    let pairs: Vec<(u64, u64)> = (0..150)
        .map(|i| ((i * 7 + 3) % NODES, (i * 29 + 11) % NODES))
        .collect();
    let expected = reference_values(&pairs);
    let mut client = Client::connect(addr).expect("connect");
    let served = client.query_batch(&pairs).expect("after the disconnect");
    assert_bit_identical(&served, &expected, "post-disconnect batch");
    client.shutdown_server().expect("shutdown");
    runner.join().expect("thread").expect("serve loop");
}

/// The acceptance benchmark as a chaos test: a storm of doomed requests
/// with cancellation ON must leave at least 2× the goodput it leaves with
/// cancellation OFF, brownout must engage during the storm and clear after
/// it, and every surviving answer must stay bit-identical.
#[test]
fn cancellation_recovers_goodput_under_a_deadline_storm() {
    let paged = open_paged(
        snapshot_path(),
        &PagedOptions {
            columns_per_page: 1,
            cache_pages: 6,
            cache_shards: 1,
            ..PagedOptions::default()
        },
    )
    .expect("open");
    let options = EngineOptions {
        admission_queue_depth: Some(8),
        admission_timeout: Duration::from_secs(60),
        ..engine_options()
    };
    let (addr, handle, runner) = serve(paged, options);

    let live_pairs: Vec<(u64, u64)> = (0..100)
        .map(|i| ((i * 7 + 3) % NODES, (i * 29 + 11) % NODES))
        .collect();
    let expected = reference_values(&live_pairs);
    let storm_pairs: Vec<(u64, u64)> = (0..20_000)
        .map(|i| ((i * 37 + 5) % NODES, (i * 13 + 1) % NODES))
        .collect();

    // Seed the service-time EWMA so phase B can judge storm batches doomed.
    let mut live = Client::connect(addr).expect("live connect");
    let served = live.query_batch(&live_pairs).expect("seed batch");
    assert_bit_identical(&served, &expected, "seed batch");

    let run_storm = |deadline: Option<Duration>| {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let storm_pairs = storm_pairs.clone();
        let thread = std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("storm connect");
            while !flag.load(Ordering::Relaxed) {
                match deadline {
                    // Cancellation ON: every storm batch is doomed — shed
                    // up front or cancelled at the first chunk boundary.
                    Some(budget) => match client.query_batch_deadline(&storm_pairs, budget) {
                        Ok(_) | Err(ClientError::DeadlineExceeded(_)) => {}
                        Err(other) => panic!("storm must be shed cleanly: {other}"),
                    },
                    // Cancellation OFF: the legacy opcode grinds each storm
                    // batch to completion while live traffic waits.
                    None => {
                        client.query_batch(&storm_pairs).expect("legacy storm");
                    }
                }
            }
        });
        (stop, thread)
    };

    // Phase A — cancellation OFF. Measure how long live traffic takes while
    // a legacy client hammers huge batches.
    let (stop, storm) = run_storm(None);
    let waited = Instant::now();
    loop {
        let stats = handle.stats_json();
        if json_u64(&stats, "available") < json_u64(&stats, "budget") {
            break;
        }
        assert!(
            waited.elapsed() < Duration::from_secs(20),
            "storm never took a lease"
        );
        std::thread::yield_now();
    }
    let begun = Instant::now();
    for round in 0..2 {
        let served = live
            .query_batch(&live_pairs)
            .expect("live under legacy storm");
        assert_bit_identical(&served, &expected, &format!("phase A round {round}"));
    }
    let without_cancellation = begun.elapsed();
    stop.store(true, Ordering::Relaxed);
    storm.join().expect("legacy storm thread");

    // Phase B — cancellation ON. Same storm size, 1 ms deadlines: the EWMA
    // sheds them before they queue and the brownout controller engages.
    let (stop, storm) = run_storm(Some(Duration::from_millis(1)));
    let waited = Instant::now();
    loop {
        if json_u64(&handle.stats_json(), "brownout_entries") >= 1 {
            break;
        }
        assert!(
            waited.elapsed() < Duration::from_secs(20),
            "brownout never engaged: {}",
            handle.stats_json()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let begun = Instant::now();
    for round in 0..2 {
        let served = live
            .query_batch(&live_pairs)
            .expect("live under deadline storm");
        assert_bit_identical(&served, &expected, &format!("phase B round {round}"));
    }
    let with_cancellation = begun.elapsed();
    stop.store(true, Ordering::Relaxed);
    storm.join().expect("deadline storm thread");

    assert!(
        without_cancellation >= with_cancellation * 2,
        "cancellation must at least double goodput under the storm: \
         {without_cancellation:?} (off) vs {with_cancellation:?} (on)"
    );

    // The storm's cost is visible: misses counted, abandoned work booked.
    let stats = handle.stats_json();
    assert!(json_u64(&stats, "deadline_exceeded") >= 1);
    assert!(json_u64(&stats, "abandoned_pairs") >= 1);
    assert!(json_u64(&stats, "shed_doomed") >= 1);

    // Brownout is hysteretic: a run of healthy traffic decays the pressure
    // EWMA below the exit threshold and the server reports healthy again.
    let waited = Instant::now();
    loop {
        for _ in 0..5 {
            let served = live.query_batch(&live_pairs).expect("recovery batch");
            assert_bit_identical(&served, &expected, "recovery batch");
        }
        if json_u64(&handle.stats_json(), "brownout_exits") >= 1 {
            break;
        }
        assert!(
            waited.elapsed() < Duration::from_secs(30),
            "brownout never cleared: {}",
            handle.stats_json()
        );
    }
    let report = live.ping().expect("ping");
    assert!(!report.brownout, "brownout cleared after the storm");

    live.shutdown_server().expect("shutdown");
    runner.join().expect("thread").expect("serve loop");
}
