//! Lifecycle tests: hot reload under concurrent load (zero failed requests,
//! no batch ever mixes epochs), graceful drain on shutdown (in-flight work
//! completes, stragglers get clean closes, never wrong answers), and the
//! background scrubber's progress surfacing in stats and health.

use effres::{EffectiveResistanceEstimator, EffresConfig};
use effres_graph::generators;
use effres_io::paged::{open_paged, PagedOptions};
use effres_io::snapshot::save_snapshot;
use effres_server::{Client, ServedEngine, Server, ServerOptions};
use effres_service::{EngineOptions, QueryEngine};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn estimator(seed: u64) -> EffectiveResistanceEstimator {
    let graph = generators::grid_2d(8, 8, 0.5, 2.0, seed).expect("generator");
    EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build")
}

fn snapshot_file(name: &str, est: &EffectiveResistanceEstimator) -> PathBuf {
    let dir = std::env::temp_dir().join("effres-lifecycle");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    save_snapshot(&path, est, None).expect("save");
    path
}

/// Small pages and cache: reload drops a store that is actively churning
/// buffers, which is exactly the hard case.
fn paged_engine(path: &Path) -> ServedEngine {
    let paged = open_paged(
        path,
        &PagedOptions {
            columns_per_page: 4,
            cache_pages: 4,
            cache_shards: 1,
            ..PagedOptions::default()
        },
    )
    .expect("open paged");
    ServedEngine::Paged(QueryEngine::new(
        Arc::new(paged),
        EngineOptions {
            cache_capacity: 0,
            ..EngineOptions::default()
        },
    ))
}

/// The values a batch over `pairs` must reproduce bit for bit, per epoch.
fn reference_bits(est: &Arc<EffectiveResistanceEstimator>, pairs: &[(u64, u64)]) -> Vec<u64> {
    let engine = QueryEngine::new(
        Arc::clone(est),
        EngineOptions {
            cache_capacity: 0,
            ..EngineOptions::default()
        },
    );
    pairs
        .iter()
        .map(|&(p, q)| {
            engine
                .query(p as usize, q as usize)
                .expect("reference")
                .to_bits()
        })
        .collect()
}

#[test]
fn hot_reload_under_load_never_fails_or_mixes_epochs() {
    let est_a = Arc::new(estimator(5));
    let est_b = Arc::new(estimator(23));
    let path_a = snapshot_file("reload_a.snap", &est_a);
    let path_b = snapshot_file("reload_b.snap", &est_b);

    let server = Server::bind_with(
        "127.0.0.1:0",
        paged_engine(&path_a),
        Some(3),
        Some(path_a.clone()),
        ServerOptions::default(),
    )
    .expect("bind");
    // The paged reloader the CLI installs, minus the printing.
    assert!(server.set_reloader(|path: &Path| Ok((paged_engine(path), Some(3)))));
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run());

    let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i % 64, (i * 7 + 1) % 64)).collect();
    let bits_a = reference_bits(&est_a, &pairs);
    let bits_b = reference_bits(&est_b, &pairs);
    assert_ne!(bits_a, bits_b, "the two snapshots must answer differently");

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for _ in 0..3 {
        let stop = Arc::clone(&stop);
        let pairs = pairs.clone();
        let bits_a = bits_a.clone();
        let bits_b = bits_b.clone();
        workers.push(std::thread::spawn(move || -> (u64, u64) {
            // One connection across the whole reload: zero downtime means it
            // keeps answering, with every batch wholly on one epoch.
            let mut client = Client::connect(addr).expect("connect");
            let (mut on_a, mut on_b) = (0u64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                let values = client.query_batch(&pairs).expect("no failed request");
                let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
                if bits == bits_a {
                    on_a += 1;
                } else if bits == bits_b {
                    on_b += 1;
                } else {
                    panic!("a batch mixed epochs");
                }
            }
            (on_a, on_b)
        }));
    }

    std::thread::sleep(Duration::from_millis(150));
    let mut control = Client::connect(addr).expect("control connect");
    let before = control.ping().expect("ping");
    assert_eq!(before.epoch, 1);
    assert_eq!(
        before.snapshot_path.as_deref(),
        path_a.to_str(),
        "ping reports the served snapshot"
    );
    let report = control
        .reload(path_b.to_str().expect("utf-8 path"))
        .expect("reload under load");
    assert_eq!(report.epoch, 2);
    assert_eq!(report.node_count, 64);
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);

    let (mut total_a, mut total_b) = (0u64, 0u64);
    for worker in workers {
        let (on_a, on_b) = worker.join().expect("no worker may panic");
        total_a += on_a;
        total_b += on_b;
    }
    assert!(total_a > 0, "batches must have completed on the old epoch");
    assert!(total_b > 0, "batches must have completed on the new epoch");

    let after = control.ping().expect("ping after reload");
    assert_eq!(after.epoch, 2);
    assert_eq!(after.snapshot_path.as_deref(), path_b.to_str());
    let stats = control.stats_json().expect("stats");
    for key in ["\"epoch\":2", "\"reloads\":1", "\"health\":\"ok\""] {
        assert!(stats.contains(key), "stats missing {key}: {stats}");
    }
    assert!(
        stats.contains(&format!("\"snapshot_path\":\"{}\"", path_b.display())),
        "stats names the new snapshot: {stats}"
    );

    control.shutdown_server().expect("shutdown");
    runner.join().expect("server thread").expect("serve loop");
}

#[test]
fn reload_of_a_bad_path_is_refused_and_the_old_epoch_keeps_serving() {
    let est = Arc::new(estimator(5));
    let path = snapshot_file("reload_keep.snap", &est);
    let server = Server::bind_with(
        "127.0.0.1:0",
        paged_engine(&path),
        Some(3),
        Some(path.clone()),
        ServerOptions::default(),
    )
    .expect("bind");
    server.set_reloader(|path: &Path| {
        if path.exists() {
            Ok((paged_engine(path), Some(3)))
        } else {
            Err(format!("{} does not exist", path.display()))
        }
    });
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect");
    let err = client
        .reload("/nonexistent/snapshot.snap")
        .expect_err("bad reload must be refused");
    assert!(err.to_string().contains("does not exist"), "{err}");
    let report = client.ping().expect("ping");
    assert_eq!(
        report.epoch, 1,
        "a failed reload must not advance the epoch"
    );
    assert!(client.query(0, 1).expect("still serving") > 0.0);

    client.shutdown_server().expect("shutdown");
    runner.join().expect("server thread").expect("serve loop");
}

#[test]
fn shutdown_under_load_drains_in_flight_batches() {
    let est = Arc::new(estimator(5));
    let engine = QueryEngine::new(
        Arc::clone(&est),
        EngineOptions {
            cache_capacity: 0,
            ..EngineOptions::default()
        },
    );
    let server = Server::bind_with(
        "127.0.0.1:0",
        ServedEngine::Resident(engine),
        None,
        None,
        ServerOptions {
            drain_deadline: Duration::from_secs(10),
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let pairs: Vec<(u64, u64)> = (0..300).map(|i| (i % 64, (i * 11 + 3) % 64)).collect();
    let expected = reference_bits(&est, &pairs);
    let mut workers = Vec::new();
    for _ in 0..4 {
        let pairs = pairs.clone();
        let expected = expected.clone();
        workers.push(std::thread::spawn(move || -> u64 {
            let mut client = Client::connect(addr).expect("connect");
            let mut completed = 0u64;
            loop {
                // Past the drain point the server closes between requests —
                // a clean error, never a wrong or truncated answer.
                match client.query_batch(&pairs) {
                    Ok(values) => {
                        let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(bits, expected, "an answered batch must be complete");
                        completed += 1;
                    }
                    Err(_) => return completed,
                }
            }
        }));
    }

    std::thread::sleep(Duration::from_millis(200));
    handle.shutdown();
    let final_stats = runner
        .join()
        .expect("server thread")
        .expect("clean serve loop");

    let mut total = 0u64;
    for worker in workers {
        total += worker.join().expect("no worker may panic");
    }
    assert!(total > 0, "batches must have completed before the drain");
    for key in ["\"health\":\"draining\"", "\"requests\"", "\"queries\""] {
        assert!(
            final_stats.contains(key),
            "final stats missing {key}: {final_stats}"
        );
    }
}

#[test]
fn scrubber_progress_shows_in_stats_and_health_stays_ok() {
    let est = Arc::new(estimator(5));
    let path = snapshot_file("scrub.snap", &est);
    let server = Server::bind_with(
        "127.0.0.1:0",
        paged_engine(&path),
        Some(3),
        Some(path),
        ServerOptions {
            // Effectively unthrottled: the walk covers the snapshot within
            // the test's patience.
            scrub_bytes_per_sec: 1 << 30,
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let scrubbed = loop {
        let stats = client.stats_json().expect("stats");
        let scrubbed = stats
            .split("\"pages_scrubbed\":")
            .nth(1)
            .and_then(|rest| {
                rest.split(|c: char| !c.is_ascii_digit())
                    .next()?
                    .parse()
                    .ok()
            })
            .unwrap_or(0u64);
        if scrubbed > 0 || std::time::Instant::now() > deadline {
            break scrubbed;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(scrubbed > 0, "the scrubber must make visible progress");

    let report = client.ping().expect("ping");
    assert_eq!(report.health.as_str(), "ok", "a clean snapshot stays ok");
    let stats = client.stats_json().expect("stats");
    assert!(
        stats.contains("\"scrub_failures\":0") && stats.contains("\"quarantined\":0"),
        "clean data must not be quarantined: {stats}"
    );

    client.shutdown_server().expect("shutdown");
    runner.join().expect("server thread").expect("serve loop");
}
