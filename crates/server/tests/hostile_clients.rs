//! Hostile-client tests: raw sockets throwing garbage, oversized frames,
//! half-frames, and instant disconnects at a real `Server` — which must
//! refuse each one with a typed error, count it, reclaim the handler
//! thread, and keep serving well-behaved clients throughout.

use effres::{EffectiveResistanceEstimator, EffresConfig};
use effres_graph::generators;
use effres_server::protocol::OP_ERROR;
use effres_server::{Client, ServedEngine, Server, ServerHandle, ServerOptions};
use effres_service::{EngineOptions, QueryEngine};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Binds a resident server (an 8×8 grid, 64 nodes) with the given
/// connection deadlines; returns the pieces every test needs.
fn start(
    options: ServerOptions,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<String>>,
) {
    let graph = generators::grid_2d(8, 8, 0.5, 2.0, 5).expect("generator");
    let estimator =
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build");
    let engine = QueryEngine::new(
        Arc::new(estimator),
        EngineOptions {
            cache_capacity: 0,
            ..EngineOptions::default()
        },
    );
    let server = Server::bind_with(
        "127.0.0.1:0",
        ServedEngine::Resident(engine),
        None,
        None,
        options,
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

/// Short deadlines so the reaping paths fire within test time.
fn twitchy() -> ServerOptions {
    ServerOptions {
        frame_deadline: Duration::from_millis(300),
        idle_deadline: Duration::from_millis(300),
        ..ServerOptions::default()
    }
}

/// Reads one length-prefixed frame off a raw socket; `None` on clean EOF.
fn read_raw_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match stream.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside a length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// The OP_ERROR message of the next frame on `stream`.
fn expect_error_frame(stream: &mut TcpStream) -> String {
    let frame = read_raw_frame(stream)
        .expect("read error frame")
        .expect("server answers before closing");
    assert_eq!(frame.first(), Some(&OP_ERROR), "frame is {frame:?}");
    String::from_utf8(frame[1..].to_vec()).expect("error messages are UTF-8")
}

/// Pulls `"key":<u64>` out of the stats JSON.
fn json_u64(stats: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = stats
        .find(&needle)
        .unwrap_or_else(|| panic!("stats JSON missing {key}: {stats}"));
    stats[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("stats key {key} is not a number: {stats}"))
}

/// A well-behaved client still gets exact answers: the definition of "the
/// server survived".
fn assert_still_serving(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("healthy client connects");
    let values = client
        .query_batch(&[(0, 63), (5, 40), (12, 12)])
        .expect("healthy client is served");
    assert_eq!(values.len(), 3);
    assert!(values[0].is_finite() && values[0] > 0.0);
    assert_eq!(values[2], 0.0, "self-pair");
}

#[test]
fn http_garbage_is_refused_and_counted() {
    let (addr, handle, runner) = start(ServerOptions::default());

    // "GET " decodes as a ~542 MB little-endian length prefix — far past
    // the 64 MiB frame cap, so the framing layer refuses to resynchronize.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n")
        .expect("send garbage");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let message = expect_error_frame(&mut stream);
    assert!(
        message.contains("exceeds") && message.contains("limit"),
        "the refusal names the frame cap: {message}"
    );
    assert_eq!(
        read_raw_frame(&mut stream).expect("read to EOF"),
        None,
        "the connection is dropped after the refusal"
    );

    assert!(json_u64(&handle.stats_json(), "frame") >= 1);
    assert_still_serving(addr);
    handle.shutdown();
    runner.join().expect("thread").expect("serve loop");
}

#[test]
fn oversized_length_prefix_is_refused_and_counted() {
    let (addr, handle, runner) = start(ServerOptions::default());

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&u32::MAX.to_le_bytes())
        .expect("send oversized prefix");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let message = expect_error_frame(&mut stream);
    assert!(message.contains("exceeds"), "refusal message: {message}");
    assert_eq!(read_raw_frame(&mut stream).expect("read to EOF"), None);

    assert!(json_u64(&handle.stats_json(), "frame") >= 1);
    assert_still_serving(addr);
    handle.shutdown();
    runner.join().expect("thread").expect("serve loop");
}

#[test]
fn stalling_mid_payload_is_cut_by_the_frame_deadline() {
    let (addr, handle, runner) = start(twitchy());

    // A 64-byte frame is promised, 3 bytes arrive, then silence — the bug
    // this deadline exists for: before PR 7 this parked the handler thread
    // forever.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&64u32.to_le_bytes())
        .expect("send length prefix");
    stream.write_all(&[0x02, 0x00, 0x00]).expect("send a stub");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let waited = std::time::Instant::now();
    let message = expect_error_frame(&mut stream);
    assert!(
        message.contains("frame deadline"),
        "the close says why: {message}"
    );
    assert!(
        waited.elapsed() < Duration::from_secs(5),
        "a 300 ms deadline must not take {:?}",
        waited.elapsed()
    );
    assert_eq!(
        read_raw_frame(&mut stream).expect("read to EOF"),
        None,
        "the stalled connection is closed, not left parked"
    );

    assert!(json_u64(&handle.stats_json(), "deadline_closes") >= 1);
    assert_still_serving(addr);
    handle.shutdown();
    runner.join().expect("thread").expect("serve loop");
}

#[test]
fn idle_connections_are_reaped_by_the_idle_deadline() {
    let (addr, handle, runner) = start(twitchy());

    // Connect, say nothing. The server reclaims the handler thread without
    // sending anything — idleness is not an error, just an eviction.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    assert_eq!(
        read_raw_frame(&mut stream).expect("read to EOF"),
        None,
        "an idle connection is closed cleanly"
    );

    assert!(json_u64(&handle.stats_json(), "idle_closes") >= 1);
    assert_still_serving(addr);
    handle.shutdown();
    runner.join().expect("thread").expect("serve loop");
}

#[test]
fn disconnect_storms_leave_the_server_serving() {
    let (addr, handle, runner) = start(ServerOptions::default());

    for i in 0..32 {
        let mut stream = TcpStream::connect(addr).expect("storm connect");
        match i % 3 {
            0 => {} // connect and vanish
            1 => {
                // half a length prefix, then vanish
                let _ = stream.write_all(&[0x05, 0x00]);
            }
            _ => {
                // a full prefix and a byte of payload, then vanish
                let _ = stream.write_all(&3u32.to_le_bytes());
                let _ = stream.write_all(&[0x02]);
            }
        }
        drop(stream);
        // A healthy client interleaved with the storm is served every time.
        if i % 8 == 7 {
            assert_still_serving(addr);
        }
    }

    let stats = handle.stats_json();
    assert!(json_u64(&stats, "connections") >= 32);
    assert_still_serving(addr);
    handle.shutdown();
    runner.join().expect("thread").expect("serve loop");
}
