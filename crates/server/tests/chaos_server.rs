//! Chaos tests of the full network stack: a real `Server` over a paged
//! snapshot with seeded injected faults, driven by real `Client`s over TCP.
//!
//! Covers the PING health check, transient-fault recovery that stays
//! bit-identical over the wire, partial-batch degradation under persistent
//! corruption (per-query statuses, per-cause error counters), and overload
//! shedding surfacing as `OP_BUSY` / [`ClientError::Busy`].

use effres::{EffectiveResistanceEstimator, EffresConfig};
use effres_graph::generators;
use effres_io::paged::{open_paged, open_paged_with_faults, PagedOptions, PagedSnapshot};
use effres_io::snapshot::save_snapshot;
use effres_io::{FaultPlan, RetryPolicy};
use effres_server::{
    protocol, Client, ClientError, ReconnectPolicy, ServedEngine, Server, ServerHandle,
};
use effres_service::{EngineOptions, QueryEngine};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const NODES: u64 = 256;

fn snapshot_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let graph = generators::grid_2d(16, 16, 0.5, 2.0, 11).expect("generator");
        let estimator =
            EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build");
        let dir = std::env::temp_dir().join("effres-chaos-server");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("chaos-{}.snap", std::process::id()));
        save_snapshot(&path, &estimator, None).expect("save");
        path
    })
}

fn churny_options() -> PagedOptions {
    PagedOptions {
        columns_per_page: 2,
        cache_pages: 12,
        cache_shards: 1,
        ..PagedOptions::default()
    }
}

fn engine_options() -> EngineOptions {
    EngineOptions {
        cache_capacity: 0,
        threads: 2,
        parallel_threshold: 8,
        ..EngineOptions::default()
    }
}

/// Serves `paged` on an ephemeral loopback port; returns the client-facing
/// handle trio.
fn serve(
    paged: PagedSnapshot,
    options: EngineOptions,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<String>>,
) {
    let version = paged.version;
    let engine = QueryEngine::new(Arc::new(paged), options);
    let server =
        Server::bind("127.0.0.1:0", ServedEngine::Paged(engine), Some(version)).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

/// A fault-free reference engine over the same snapshot: what the faulted
/// server must reproduce bit for bit.
fn reference_values(pairs: &[(u64, u64)]) -> Vec<f64> {
    let paged = open_paged(snapshot_path(), &churny_options()).expect("reference open");
    let engine = QueryEngine::new(Arc::new(paged), engine_options());
    let batch = effres_service::QueryBatch::from_pairs(
        pairs
            .iter()
            .map(|&(p, q)| (p as usize, q as usize))
            .collect(),
    );
    engine.execute_scheduled(&batch).expect("reference").values
}

/// Pulls `"key":<u64>` out of the hand-rendered stats JSON.
fn json_u64(stats: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = stats.find(&needle).unwrap_or_else(|| {
        panic!("stats JSON missing {key}: {stats}");
    });
    stats[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("stats key {key} is not a number: {stats}"))
}

#[test]
fn ping_reports_backend_and_uptime() {
    let paged = open_paged(snapshot_path(), &churny_options()).expect("open");
    let (addr, _handle, runner) = serve(paged, engine_options());
    let mut client = Client::connect(addr).expect("connect");
    let report = client.ping().expect("ping");
    assert!(report.paged);
    assert_eq!(report.node_count, NODES);
    assert!(report.uptime_secs >= 0.0);
    client.shutdown_server().expect("shutdown");
    runner.join().expect("thread").expect("serve loop");
}

#[test]
fn faulted_server_answers_bit_identically_and_reports_retries() {
    // ~2% of read attempts fault; retry absorbs them behind the protocol.
    let plan = FaultPlan::new(0xD15EA5E)
        .with_transient_errors(15_000)
        .with_short_reads(5_000);
    let paged = open_paged_with_faults(
        snapshot_path(),
        &churny_options().with_retry(RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_micros(1),
        }),
        plan,
    )
    .expect("faulted open");
    let (addr, _handle, runner) = serve(paged, engine_options());

    let pairs: Vec<(u64, u64)> = (0..2_000)
        .map(|i| ((i * 37 + 5) % NODES, (i * 13 + 1) % NODES))
        .collect();
    let expected = reference_values(&pairs);
    let mut client = Client::connect(addr).expect("connect");
    let served = client.query_batch(&pairs).expect("batch over faults");
    for (i, (value, reference)) in served.iter().zip(&expected).enumerate() {
        assert_eq!(
            value.to_bits(),
            reference.to_bits(),
            "pair {i} diverged under faults"
        );
    }

    let stats = client.stats_json().expect("stats");
    assert!(
        json_u64(&stats, "page_retries") > 0,
        "recovery must be observable in the stats document: {stats}"
    );
    assert!(json_u64(&stats, "page_faulted_reads") >= json_u64(&stats, "page_retries"));
    assert_eq!(
        json_u64(&stats, "store_failures"),
        0,
        "nothing failed for real"
    );
    client.shutdown_server().expect("shutdown");
    runner.join().expect("thread").expect("serve loop");
}

#[test]
fn partial_batches_over_the_wire_degrade_per_query() {
    let probe = open_paged(snapshot_path(), &churny_options()).expect("probe");
    let victim = 101;
    let offset = probe.store.column_value_byte_offset(victim) + 6;
    let poisoned_page = probe.store.page_of_column(victim);
    let columns_per_page = probe.store.columns_per_page();
    let permutation = probe.permutation.clone();
    let on_rotten_page =
        |node: u64| permutation.new(node as usize) / columns_per_page == poisoned_page;
    drop(probe);

    let plan = FaultPlan::new(0).poison(offset, 2);
    let paged = open_paged_with_faults(
        snapshot_path(),
        &churny_options().with_retry(RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(1),
        }),
        plan,
    )
    .expect("faulted open");
    let (addr, _handle, runner) = serve(paged, engine_options());

    let pairs: Vec<(u64, u64)> = (0..1_500)
        .map(|i| ((i * 37 + 5) % NODES, (i * 13 + 1) % NODES))
        .collect();
    let expected = reference_values(&pairs);

    let mut client = Client::connect(addr).expect("connect");
    // The all-or-nothing batch fails as a whole (it touches the rot)...
    match client.query_batch(&pairs) {
        Err(ClientError::Remote(message)) => {
            assert!(
                message.contains("column"),
                "the error names the store failure: {message}"
            )
        }
        other => panic!("expected a remote store failure, got {other:?}"),
    }

    // ...while the partial request degrades exactly the touching queries.
    let partial = client.query_batch_partial(&pairs).expect("partial batch");
    assert_eq!(partial.statuses.len(), pairs.len());
    assert!(partial.failed > 0, "the batch sweeps every page");
    assert!(!partial.is_complete());
    assert!(
        partial
            .first_failure
            .as_deref()
            .is_some_and(|m| m.contains("column")),
        "first failure message survives the wire: {:?}",
        partial.first_failure
    );
    for (i, (&(p, q), reference)) in pairs.iter().zip(&expected).enumerate() {
        let touches = p != q && (on_rotten_page(p) || on_rotten_page(q));
        if touches {
            assert_eq!(
                partial.statuses[i],
                protocol::STATUS_STORE_FAILURE,
                "({p}, {q}) touches the rotten page"
            );
            assert_eq!(partial.values[i], 0.0, "failed slots carry 0.0");
        } else {
            assert_eq!(partial.statuses[i], protocol::STATUS_OK);
            assert_eq!(
                partial.values[i].to_bits(),
                reference.to_bits(),
                "({p}, {q}) succeeded and must be bit-identical"
            );
        }
    }

    let stats = client.stats_json().expect("stats");
    assert!(json_u64(&stats, "store_failures") >= u64::from(partial.failed));
    assert!(json_u64(&stats, "partial_batches") >= 1);
    client.shutdown_server().expect("shutdown");
    runner.join().expect("thread").expect("serve loop");
}

#[test]
fn overloaded_server_answers_busy_over_the_wire() {
    let paged = open_paged(
        snapshot_path(),
        &PagedOptions {
            columns_per_page: 1,
            cache_pages: 6,
            cache_shards: 1,
            ..PagedOptions::default()
        },
    )
    .expect("open");
    let options = EngineOptions {
        admission_queue_depth: Some(0),
        admission_timeout: Duration::from_millis(150),
        ..engine_options()
    };
    let (addr, handle, runner) = serve(paged, options);

    // One client holds the pin lease with a huge scheduled batch...
    let holder = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("holder connect");
        let pairs: Vec<(u64, u64)> = (0..60_000)
            .map(|i| ((i * 37 + 5) % NODES, (i * 13 + 1) % NODES))
            .collect();
        client.query_batch(&pairs).expect("holder batch")
    });
    // ...and once its lease shows up in the admission stats, every other
    // batch is shed with OP_BUSY instead of queueing behind it.
    let waited = std::time::Instant::now();
    loop {
        let stats = handle.stats_json();
        if json_u64(&stats, "available") < json_u64(&stats, "budget") {
            break;
        }
        assert!(
            waited.elapsed() < Duration::from_secs(20),
            "holder never took its lease"
        );
        std::thread::yield_now();
    }

    let mut client = Client::connect_with(addr, ReconnectPolicy::default()).expect("connect");
    let pairs: Vec<(u64, u64)> = (0..2_000)
        .map(|i| ((i * 7 + 3) % NODES, (i * 29 + 11) % NODES))
        .collect();
    let mut shed = 0usize;
    while !holder.is_finished() {
        std::thread::sleep(Duration::from_millis(2));
        match client.query_batch(&pairs) {
            Err(ClientError::Busy(message)) => {
                shed += 1;
                assert!(
                    message.contains("busy"),
                    "busy replies say to back off: {message}"
                );
            }
            Ok(_) => break, // the holder drained; contention is over
            Err(other) => panic!("overload must surface as Busy, got {other}"),
        }
    }
    holder.join().expect("holder thread");
    assert!(shed > 0, "at least one request shed while the holder ran");

    // The shed connection stays usable, and the sheds are counted.
    let values = client.query_batch(&pairs).expect("after the storm");
    assert_eq!(values.len(), pairs.len());
    let stats = client.stats_json().expect("stats");
    assert!(json_u64(&stats, "busy_rejections") >= shed as u64);
    assert!(json_u64(&stats, "shed_queue_full") >= shed as u64);
    client.shutdown_server().expect("shutdown");
    runner.join().expect("thread").expect("serve loop");
}
