//! Ablation benches for the design choices of Alg. 2 / Alg. 3: the pruning
//! threshold `ε` (size of the approximate inverse vs. construction time) and
//! the fill-reducing ordering applied before the incomplete factorization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use effres::approx_inverse::SparseApproximateInverse;
use effres::prelude::*;
use effres_graph::{generators, laplacian::grounded_laplacian};
use effres_sparse::ichol::IncompleteCholesky;

fn bench_approx_inverse(c: &mut Criterion) {
    let graph = generators::grid_2d(48, 48, 0.5, 2.0, 3).expect("generator");
    let lap = grounded_laplacian(&graph, 1.0);
    let factor = IncompleteCholesky::with_drop_tolerance(&lap, 1e-3)
        .expect("factor")
        .into_factor();

    let mut group = c.benchmark_group("approx_inverse_epsilon");
    group.sample_size(10);
    for &epsilon in &[1e-2, 1e-3, 1e-4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps_{epsilon:e}")),
            &epsilon,
            |b, &eps| {
                b.iter(|| SparseApproximateInverse::from_factor(&factor, eps, 4).expect("Alg. 2"))
            },
        );
    }
    group.finish();
}

fn bench_orderings(c: &mut Criterion) {
    // Ablation of the fill-reducing ordering used before the incomplete
    // factorization (DESIGN.md design choice): end-to-end Alg. 3 build +
    // all-edge queries under each ordering.
    let graph = generators::power_grid_mesh(Default::default()).expect("generator");
    let mut group = c.benchmark_group("estimator_ordering");
    group.sample_size(10);
    for (name, ordering) in [
        ("natural", Ordering::Natural),
        ("rcm", Ordering::Rcm),
        ("min_degree", Ordering::MinimumDegree),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ordering, |b, &ord| {
            b.iter(|| {
                let config = EffresConfig::default().with_ordering(ord);
                let est = EffectiveResistanceEstimator::build(&graph, &config).expect("build");
                est.query_all_edges(&graph).expect("queries")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_approx_inverse, bench_orderings);
criterion_main!(benches);
