//! Approximate-inverse construction: sequential backward sweep vs. the
//! level-scheduled parallel build, on a ≥100k-node grid.
//!
//! This is the acceptance workload of the parallel-build subsystem: build
//! `Z̃` (Alg. 2) for the incomplete Cholesky factor of a 320×320 grid
//! Laplacian under AMD ordering (the ordering the CLI defaults to — its
//! level schedule is wide, which is what the parallel sweep exploits) and
//! compare wall-clock times at 1/2/4/8 worker threads. Every parallel run
//! is verified **bit-identical** to the sequential arena before any timing
//! is reported.
//!
//! Besides the human-readable table the bench writes
//! `BENCH_inverse_build.json` at the repository root so the perf trajectory
//! is tracked across PRs. On hosts with a single available core the speedup
//! column degenerates to ~1.0× by construction — the JSON records
//! `hardware_threads` so consumers can tell scheduling overhead from a
//! genuine regression.

use effres::approx_inverse::SparseApproximateInverse;
use effres::BuildOptions;
use effres_bench::report::{min_seconds, write_report, Json};
use effres_graph::{generators, laplacian::grounded_laplacian};
use effres_sparse::ichol::{IcholOptions, IncompleteCholesky};
use effres_sparse::{amd, LevelSchedule};

const SIDE: usize = 320; // 320 × 320 = 102 400 nodes
const EPSILON: f64 = 1e-3;
const DENSE_COLUMN_THRESHOLD: usize = 4;
const SAMPLES: usize = 3;

fn main() {
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("== inverse_build ({SIDE}x{SIDE} grid, eps {EPSILON:e}, {hardware} core(s))");

    let graph = generators::grid_2d(SIDE, SIDE, 0.5, 2.0, 7).expect("generator");
    let lap = grounded_laplacian(&graph, 1.0);
    let perm = amd::amd(&lap).expect("amd");
    let permuted = lap.permute_symmetric(&perm).expect("permute");
    let factor = IncompleteCholesky::factor(
        &permuted,
        IcholOptions {
            drop_tolerance: 1e-3,
            ..IcholOptions::default()
        },
    )
    .expect("factor");
    let l = factor.factor_l();
    let schedule = LevelSchedule::from_lower_factor(l);
    println!(
        "factor: {} nnz; schedule: {} levels, mean width {:.1}, max width {}",
        l.nnz(),
        schedule.num_levels(),
        schedule.mean_width(),
        schedule.max_width()
    );

    let build = |options: &BuildOptions| {
        SparseApproximateInverse::from_factor_with(l, EPSILON, DENSE_COLUMN_THRESHOLD, options)
            .expect("Alg. 2")
    };
    let reference = build(&BuildOptions::sequential());
    let sequential_seconds = min_seconds(SAMPLES, false, || build(&BuildOptions::sequential()));
    println!(
        "sequential: {sequential_seconds:.3}s  (inverse nnz {}, ratio {:.3})",
        reference.nnz(),
        reference.nnz_ratio()
    );

    // The parallel configurations run the production deployment shape: the
    // factor shared in one Arc (no per-build copy) on a persistent pool
    // reused across every sample.
    let shared = std::sync::Arc::new(l.clone());
    let mut parallel_reports = Vec::new();
    let mut best_speedup = 1.0f64;
    for threads in [2usize, 4, 8] {
        let pool = effres_sparse::WorkerPool::new(threads);
        let options = BuildOptions {
            threads,
            ..BuildOptions::default()
        };
        let build = |options: &BuildOptions| {
            SparseApproximateInverse::from_factor_shared(
                std::sync::Arc::clone(&shared),
                EPSILON,
                DENSE_COLUMN_THRESHOLD,
                options,
                Some(&pool),
            )
            .expect("Alg. 2")
        };
        let candidate = build(&options);
        let bit_identical = candidate.col_ptr() == reference.col_ptr()
            && candidate.arena_rows() == reference.arena_rows()
            && candidate
                .arena_values()
                .iter()
                .zip(reference.arena_values())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(
            bit_identical,
            "{threads}-thread build is not bit-identical to the sequential build"
        );
        let seconds = min_seconds(SAMPLES, false, || build(&options));
        let speedup = sequential_seconds / seconds;
        best_speedup = best_speedup.max(speedup);
        println!("{threads} threads:  {seconds:.3}s  speedup {speedup:.2}x  bit-identical yes");
        parallel_reports.push(Json::Obj(vec![
            ("threads", Json::Int(threads as u64)),
            ("seconds", Json::Num(seconds)),
            ("speedup", Json::Num(speedup)),
            ("bit_identical", Json::Bool(bit_identical)),
        ]));
    }

    let body = Json::Obj(vec![
        ("graph", Json::Str(format!("grid_2d_{SIDE}x{SIDE}"))),
        ("nodes", Json::Int((SIDE * SIDE) as u64)),
        ("epsilon", Json::Num(EPSILON)),
        ("ordering", Json::Str("amd".to_string())),
        ("factor_nnz", Json::Int(l.nnz() as u64)),
        ("inverse_nnz", Json::Int(reference.nnz() as u64)),
        // Bytes of row indices in the finished arena (u32 width — half of
        // what a usize-indexed arena would hold on 64-bit hosts).
        (
            "arena_index_bytes",
            Json::Int(reference.footprint().rows_bytes as u64),
        ),
        (
            "arena_index_width_bytes",
            Json::Int(reference.footprint().index_width_bytes as u64),
        ),
        ("schedule_levels", Json::Int(schedule.num_levels() as u64)),
        ("schedule_mean_width", Json::Num(schedule.mean_width())),
        ("hardware_threads", Json::Int(hardware as u64)),
        ("samples", Json::Int(SAMPLES as u64)),
        ("sequential_seconds", Json::Num(sequential_seconds)),
        ("parallel", Json::Arr(parallel_reports)),
        ("best_speedup", Json::Num(best_speedup)),
    ]);
    match write_report("inverse_build", body) {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
}
