//! Microbenchmarks of the sparse kernels that the effective-resistance
//! pipeline is built on: full Cholesky, incomplete Cholesky, the minimum
//! degree and RCM orderings and PCG solves.

use criterion::{criterion_group, criterion_main, Criterion};
use effres_graph::{generators, laplacian::grounded_laplacian};
use effres_sparse::cg::{pcg, CgOptions};
use effres_sparse::cholesky::CholeskyFactor;
use effres_sparse::ichol::IncompleteCholesky;
use effres_sparse::{amd, rcm};

fn bench_kernels(c: &mut Criterion) {
    let graph = generators::grid_2d(40, 40, 0.5, 2.0, 5).expect("generator");
    let lap = grounded_laplacian(&graph, 1.0);
    let n = lap.ncols();
    let rhs: Vec<f64> = (0..n).map(|i| ((i % 17) as f64 - 8.0) / 8.0).collect();

    let mut group = c.benchmark_group("sparse_kernels");
    group.sample_size(20);
    group.bench_function("cholesky_full", |b| {
        b.iter(|| CholeskyFactor::factor(&lap).expect("spd"))
    });
    group.bench_function("ichol_droptol_1e3", |b| {
        b.iter(|| IncompleteCholesky::with_drop_tolerance(&lap, 1e-3).expect("spd"))
    });
    group.bench_function("amd_ordering", |b| {
        b.iter(|| amd::amd(&lap).expect("square"))
    });
    group.bench_function("rcm_ordering", |b| {
        b.iter(|| rcm::rcm(&lap).expect("square"))
    });
    let ic = IncompleteCholesky::with_drop_tolerance(&lap, 1e-3).expect("spd");
    group.bench_function("pcg_ic_solve", |b| {
        b.iter(|| pcg(&lap, &rhs, &ic, CgOptions::default()).expect("converges"))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
