//! Batched query throughput: the single-threaded
//! `EffectiveResistanceEstimator::query_many` baseline against the
//! `effres-service` engine's batched path (precomputed column norms,
//! reusable scratch columns over a sorted batch, and — on multi-core hosts
//! — jobs on a persistent worker pool), all reading columns out of the flat
//! CSC arena with its narrowed `u32` row indices. Both now answer through
//! the hub-grouped multi-pair kernel; the `all_edges` section additionally
//! times that kernel against the plain pairwise merge on identical sorted
//! input, isolating the multi-pair gain itself.
//!
//! This is the acceptance workload of the ingestion/service subsystem: a
//! ≥ 100k-node generated graph answering tens of thousands of `(p, q)`
//! queries per invocation. Besides the human-readable table the bench
//! writes `BENCH_query_throughput.json` at the repository root so the perf
//! trajectory is tracked across PRs.
//!
//! The `paged_query` variant serves the same batch **out of core**: the
//! estimator is snapshotted to disk (v3: delta-varint rows + persisted
//! norms) and a paged engine answers straight from the file through the LRU
//! page cache, recording the cold-start (time-to-first-query) and the paged
//! vs resident throughput at two cache sizes — first in arrival order (the
//! PR-4 baseline path), then through the **locality scheduler**
//! (`paged_scheduled`): queries clustered by page pair, blocks pinned and
//! drained, the hi side swept with coalesced readahead. Bytes read,
//! readahead reads and page-cache hit rates are recorded per variant. The
//! paged answers are asserted bit-identical to the resident ones before
//! anything is timed.
//!
//! Two further sections ride the same graph: `all_edges` times the
//! spanning-edge-centrality workload (every edge as a pair — the natural
//! stress for the hub-grouped multi-pair kernel, pinned bit-identical to
//! the pairwise loop in the same run) and `value_mode` times the f32
//! narrowed arena against the f64 baseline, recording the halved value
//! stream and the measured rounding error.

use effres::prelude::*;
use effres_bench::report::{min_seconds, write_report, Json};
use effres_io::paged::{open_paged, PagedOptions};
use effres_io::snapshot::save_snapshot;
use effres_service::{EngineOptions, QueryBatch, QueryEngine};
use std::sync::Arc;
use std::time::Instant;

const SIDE: usize = 320; // 320 × 320 = 102 400 nodes
const QUERIES: usize = 20_000;
const SAMPLES: usize = 10;

fn main() {
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("== query_throughput ({SIDE}x{SIDE} grid, {QUERIES} queries, {hardware} core(s))");

    let graph = effres_graph::generators::grid_2d(SIDE, SIDE, 0.5, 2.0, 7).expect("generator");
    let estimator = Arc::new(
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build"),
    );
    let batch = QueryBatch::random(QUERIES, estimator.node_count(), 42);
    let pairs = batch.pairs().to_vec();

    let sequential_seconds = min_seconds(SAMPLES, true, || {
        estimator.query_many(&pairs).expect("in bounds")
    });
    let sequential_qps = QUERIES as f64 / sequential_seconds;
    println!("sequential query_many: {sequential_seconds:.3}s  ({sequential_qps:.0} queries/s)");

    let mut engine_reports = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        // A fresh engine per configuration: the cache must not carry answers
        // across configurations, and is disabled so the kernel itself is
        // what's measured.
        let engine = QueryEngine::new(
            Arc::clone(&estimator),
            EngineOptions {
                threads,
                cache_capacity: 0,
                parallel_threshold: if threads == 1 { usize::MAX } else { 1 },
                ..EngineOptions::default()
            },
        );
        let seconds = min_seconds(SAMPLES, true, || engine.execute(&batch).expect("in bounds"));
        let qps = QUERIES as f64 / seconds;
        println!(
            "engine_batched/{threads}_threads: {seconds:.3}s  ({qps:.0} queries/s, {:.2}x sequential)",
            sequential_seconds / seconds
        );
        engine_reports.push(Json::Obj(vec![
            ("threads", Json::Int(threads as u64)),
            ("seconds", Json::Num(seconds)),
            ("queries_per_second", Json::Num(qps)),
            (
                "speedup_vs_sequential",
                Json::Num(sequential_seconds / seconds),
            ),
        ]));
    }

    // The all-edges centrality workload: every graph edge as a query pair.
    // An edge list shares endpoints heavily, so this is the natural stress
    // for the hub-grouped multi-pair kernel — the engine sorts the batch and
    // streams each shared column once per run instead of once per pair.
    // Answers are asserted bit-identical to the pairwise merge kernel (the
    // same-run baseline) before anything is timed.
    let edge_batch = QueryBatch::all_edges(&graph);
    let edge_pairs = edge_batch.pairs().to_vec();
    let edge_queries = edge_pairs.len();

    // Kernel-vs-kernel on identical sorted input: the pairwise two-pointer
    // merge against the hub-grouped scatter, outside the engine, so the
    // multi-pair gain is isolated from sorting/dispatch overheads.
    let inverse = estimator.approximate_inverse();
    let norms_table = inverse.column_norms_squared();
    let mut sorted_edges: Vec<(usize, usize)> = edge_pairs
        .iter()
        .map(|&(p, q)| {
            let (a, b) = (
                estimator.permutation().new(p),
                estimator.permutation().new(q),
            );
            (a.min(b), a.max(b))
        })
        .collect();
    sorted_edges.sort_unstable();
    let pairwise_kernel_seconds = min_seconds(SAMPLES, true, || {
        effres::column_store::column_distances_squared_batch(
            inverse,
            &sorted_edges,
            Some(&norms_table),
        )
        .expect("resident store never fails")
    });
    let mut kernel_scratch = effres::column_store::HubScratch::new(inverse.order());
    let grouped_kernel_seconds = min_seconds(SAMPLES, true, || {
        effres::column_store::column_distances_squared_grouped(
            inverse,
            &sorted_edges,
            Some(&norms_table),
            &mut kernel_scratch,
        )
        .expect("resident store never fails")
    });
    kernel_scratch.take_stats();
    let kernel_speedup = pairwise_kernel_seconds / grouped_kernel_seconds;
    println!(
        "all_edges kernels: pairwise merge {pairwise_kernel_seconds:.3}s \
         ({:.0} q/s), grouped scatter {grouped_kernel_seconds:.3}s ({:.0} q/s, \
         {kernel_speedup:.2}x pairwise)",
        edge_queries as f64 / pairwise_kernel_seconds,
        edge_queries as f64 / grouped_kernel_seconds,
    );
    let all_edges_sequential_seconds = min_seconds(SAMPLES, true, || {
        estimator.query_many(&edge_pairs).expect("in bounds")
    });
    let all_edges_sequential_qps = edge_queries as f64 / all_edges_sequential_seconds;
    let edge_reference = estimator.query_many(&edge_pairs).expect("in bounds");
    let edge_engine = QueryEngine::new(
        Arc::clone(&estimator),
        EngineOptions {
            threads: 1,
            cache_capacity: 0,
            parallel_threshold: usize::MAX,
            ..EngineOptions::default()
        },
    );
    let edge_check = edge_engine.execute(&edge_batch).expect("in bounds");
    assert!(
        edge_check
            .values
            .iter()
            .zip(&edge_reference)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "grouped all-edges answers diverged from the pairwise loop"
    );
    let kernel = edge_check.kernel;
    let all_edges_seconds = min_seconds(SAMPLES, true, || {
        edge_engine.execute(&edge_batch).expect("in bounds")
    });
    let all_edges_qps = edge_queries as f64 / all_edges_seconds;
    let centralities =
        effres::centrality::centralities_from_resistances(&graph, &edge_check.values);
    let centrality_sum: f64 = centralities.iter().sum();
    println!(
        "all_edges ({edge_queries} edges): sequential {all_edges_sequential_seconds:.3}s \
         ({all_edges_sequential_qps:.0} q/s), grouped engine {all_edges_seconds:.3}s \
         ({all_edges_qps:.0} q/s, {:.2}x); kernel {} hub load(s) x {:.1} pair(s)/hub, \
         {} isolated, {:.1} MiB streamed; centrality sum {centrality_sum:.1} (n-1 = {})",
        all_edges_sequential_seconds / all_edges_seconds,
        kernel.hub_loads,
        kernel.pairs_per_hub_load(),
        kernel.isolated_pairs,
        kernel.bytes_streamed as f64 / (1024.0 * 1024.0),
        estimator.node_count() - 1,
    );
    let all_edges_report = Json::Obj(vec![
        ("edges", Json::Int(edge_queries as u64)),
        (
            "pairwise_kernel_seconds",
            Json::Num(pairwise_kernel_seconds),
        ),
        ("grouped_kernel_seconds", Json::Num(grouped_kernel_seconds)),
        ("kernel_speedup", Json::Num(kernel_speedup)),
        (
            "sequential_seconds",
            Json::Num(all_edges_sequential_seconds),
        ),
        (
            "sequential_queries_per_second",
            Json::Num(all_edges_sequential_qps),
        ),
        ("engine_seconds", Json::Num(all_edges_seconds)),
        ("engine_queries_per_second", Json::Num(all_edges_qps)),
        (
            "speedup_vs_sequential",
            Json::Num(all_edges_sequential_seconds / all_edges_seconds),
        ),
        ("hub_loads", Json::Int(kernel.hub_loads)),
        ("hub_pairs", Json::Int(kernel.hub_pairs)),
        ("isolated_pairs", Json::Int(kernel.isolated_pairs)),
        ("bytes_streamed", Json::Int(kernel.bytes_streamed)),
        ("centrality_sum", Json::Num(centrality_sum)),
    ]);

    // Out-of-core serving: snapshot to disk, then answer the same batch
    // straight from the file. Cold start = open (header + col_ptr only) +
    // the first answered query, measured from a fresh store.
    let snap_path = std::env::temp_dir().join("effres_bench_query_throughput.snap");
    save_snapshot(&snap_path, &estimator, None).expect("snapshot");
    let snapshot_bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "-- paged_query (snapshot {:.1} MiB at {})",
        snapshot_bytes as f64 / (1024.0 * 1024.0),
        snap_path.display()
    );

    let cold = Instant::now();
    let paged = open_paged(&snap_path, &PagedOptions::default()).expect("open paged");
    let open_seconds = cold.elapsed().as_secs_f64();
    let row_codec = match paged.store.row_codec() {
        effres_io::RowCodec::Raw => "raw",
        effres_io::RowCodec::Varint => "delta-varint",
    };
    let paged_engine = QueryEngine::new(
        Arc::new(paged),
        EngineOptions {
            threads: 1,
            cache_capacity: 0,
            parallel_threshold: usize::MAX,
            ..EngineOptions::default()
        },
    );
    let (p0, q0) = pairs[0];
    let first_value = paged_engine.query(p0, q0).expect("first query");
    let time_to_first_query = cold.elapsed().as_secs_f64();
    println!(
        "paged cold start: open {open_seconds:.4}s, first query answered after \
         {time_to_first_query:.4}s"
    );
    // Sanity before timing anything: paged must reproduce resident bits.
    let resident_first = {
        let norms = estimator.column_norms_squared();
        estimator
            .query_with_norms(p0, q0, &norms)
            .expect("in bounds")
    };
    assert_eq!(
        first_value.to_bits(),
        resident_first.to_bits(),
        "paged and resident answers diverged"
    );

    let paged_engine_options = || EngineOptions {
        threads: 1,
        cache_capacity: 0,
        parallel_threshold: usize::MAX,
        ..EngineOptions::default()
    };
    let mut paged_reports = Vec::new();
    for &cache_pages in &[64usize, PagedOptions::default().cache_pages] {
        let paged = open_paged(
            &snap_path,
            &PagedOptions::default().with_cache_pages(cache_pages),
        )
        .expect("open paged");
        let engine = QueryEngine::new(Arc::new(paged), paged_engine_options());
        // Fewer samples than the in-memory variants: each paged pass is
        // disk-bound and tens of times slower, and the min still lands on a
        // warm page cache.
        let mut last = None;
        let seconds = min_seconds(3, true, || {
            last = Some(engine.execute(&batch).expect("in bounds"));
        });
        let qps = QUERIES as f64 / seconds;
        let page = last.and_then(|r| r.page_cache).unwrap_or_default();
        println!(
            "paged_query/{cache_pages}_pages: {seconds:.3}s  ({qps:.0} queries/s, \
             {:.2}x sequential resident; per batch: {} hits / {} misses, {:.1} MiB read)",
            sequential_seconds / seconds,
            page.hits,
            page.misses,
            page.bytes_read as f64 / (1024.0 * 1024.0),
        );
        paged_reports.push(Json::Obj(vec![
            ("cache_pages", Json::Int(cache_pages as u64)),
            ("seconds", Json::Num(seconds)),
            ("queries_per_second", Json::Num(qps)),
            (
                "speedup_vs_sequential_resident",
                Json::Num(sequential_seconds / seconds),
            ),
            ("page_cache_hits", Json::Int(page.hits)),
            ("page_cache_misses", Json::Int(page.misses)),
            ("bytes_read", Json::Int(page.bytes_read)),
            ("readahead_reads", Json::Int(page.readahead_reads)),
        ]));
    }

    // The locality-scheduled paged path: same file, same batch, same
    // engine options — queries re-ordered into page-sorted clusters with
    // pinned blocks and coalesced readahead (results scattered back to
    // request order). Answers are asserted bit-identical to the resident
    // engine's batch before timing.
    let resident_reference = {
        let engine = QueryEngine::new(Arc::clone(&estimator), paged_engine_options());
        engine.execute(&batch).expect("in bounds").values
    };
    let mut scheduled_reports = Vec::new();
    for &cache_pages in &[64usize, PagedOptions::default().cache_pages] {
        let paged = open_paged(
            &snap_path,
            &PagedOptions::default().with_cache_pages(cache_pages),
        )
        .expect("open paged");
        let engine = QueryEngine::new(Arc::new(paged), paged_engine_options());
        let check = engine.execute_scheduled(&batch).expect("in bounds");
        assert!(
            check
                .values
                .iter()
                .zip(&resident_reference)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "scheduled paged answers diverged from resident"
        );
        let mut last = None;
        let seconds = min_seconds(3, false, || {
            last = Some(engine.execute_scheduled(&batch).expect("in bounds"));
        });
        let qps = QUERIES as f64 / seconds;
        let last = last.expect("at least one sample");
        let page = last.page_cache.unwrap_or_default();
        let schedule = last.schedule.unwrap_or_default();
        println!(
            "paged_scheduled/{cache_pages}_pages: {seconds:.3}s  ({qps:.0} queries/s, \
             {:.2}x sequential resident; per batch: {} hits / {} misses, {:.1} MiB read, \
             {} readahead read(s); {} cluster(s) -> {} block(s), {} window(s))",
            sequential_seconds / seconds,
            page.hits,
            page.misses,
            page.bytes_read as f64 / (1024.0 * 1024.0),
            page.readahead_reads,
            schedule.clusters,
            schedule.blocks,
            schedule.windows,
        );
        scheduled_reports.push(Json::Obj(vec![
            ("cache_pages", Json::Int(cache_pages as u64)),
            ("seconds", Json::Num(seconds)),
            ("queries_per_second", Json::Num(qps)),
            (
                "speedup_vs_sequential_resident",
                Json::Num(sequential_seconds / seconds),
            ),
            ("page_cache_hits", Json::Int(page.hits)),
            ("page_cache_misses", Json::Int(page.misses)),
            ("bytes_read", Json::Int(page.bytes_read)),
            ("readahead_reads", Json::Int(page.readahead_reads)),
            ("clusters", Json::Int(schedule.clusters as u64)),
            ("blocks", Json::Int(schedule.blocks as u64)),
            ("windows", Json::Int(schedule.windows as u64)),
        ]));
    }
    // The f32 value mode: reload the (f64-canonical) snapshot, narrow the
    // arena, and answer the same random batch. Records the halved value
    // stream, the measured narrowing error, the worst whole-query relative
    // error against the f64 answers, and the narrowed throughput.
    let narrow = effres_io::snapshot::load_snapshot(&snap_path)
        .expect("reload snapshot")
        .estimator
        .with_value_mode(ValueMode::F32)
        .expect("narrowing a healthy arena succeeds");
    let f64_vals_bytes = estimator.approximate_inverse().footprint().vals_bytes;
    let f32_vals_bytes = narrow.approximate_inverse().footprint().vals_bytes;
    let narrowing_error = narrow.approximate_inverse().narrowing_error();
    let narrow_engine = QueryEngine::new(
        Arc::new(narrow),
        EngineOptions {
            threads: 1,
            cache_capacity: 0,
            parallel_threshold: usize::MAX,
            ..EngineOptions::default()
        },
    );
    let narrow_values = narrow_engine.execute(&batch).expect("in bounds").values;
    let max_query_rel_error = narrow_values
        .iter()
        .zip(&resident_reference)
        .map(|(a, b)| (a - b).abs() / b.abs().max(1e-12))
        .fold(0.0_f64, f64::max);
    let f32_seconds = min_seconds(SAMPLES, true, || {
        narrow_engine.execute(&batch).expect("in bounds")
    });
    let f32_qps = QUERIES as f64 / f32_seconds;
    println!(
        "value_mode f32: vals {:.1} -> {:.1} MiB, narrowing error {narrowing_error:.2e}, \
         max query relative error {max_query_rel_error:.2e}, {f32_seconds:.3}s \
         ({f32_qps:.0} queries/s, {:.2}x sequential f64)",
        f64_vals_bytes as f64 / (1024.0 * 1024.0),
        f32_vals_bytes as f64 / (1024.0 * 1024.0),
        sequential_seconds / f32_seconds,
    );
    let value_mode_report = Json::Obj(vec![
        ("f64_vals_bytes", Json::Int(f64_vals_bytes as u64)),
        ("f32_vals_bytes", Json::Int(f32_vals_bytes as u64)),
        ("narrowing_error", Json::Num(narrowing_error)),
        ("max_query_relative_error", Json::Num(max_query_rel_error)),
        ("f32_seconds", Json::Num(f32_seconds)),
        ("f32_queries_per_second", Json::Num(f32_qps)),
        (
            "speedup_vs_sequential_f64",
            Json::Num(sequential_seconds / f32_seconds),
        ),
    ]);
    std::fs::remove_file(&snap_path).ok();

    let stats = estimator.stats();
    let footprint = estimator.approximate_inverse().footprint();
    let body = Json::Obj(vec![
        ("graph", Json::Str(format!("grid_2d_{SIDE}x{SIDE}"))),
        ("nodes", Json::Int(stats.node_count as u64)),
        ("inverse_nnz", Json::Int(stats.inverse_nnz as u64)),
        // Bytes of row indices the query kernels stream out of the arena —
        // halved by the usize→u32 index narrowing; `index_width_bytes`
        // records the width so the halving is visible across PRs.
        ("arena_index_bytes", Json::Int(footprint.rows_bytes as u64)),
        (
            "arena_index_width_bytes",
            Json::Int(footprint.index_width_bytes as u64),
        ),
        (
            "arena_total_bytes",
            Json::Int(footprint.total_bytes() as u64),
        ),
        ("queries", Json::Int(QUERIES as u64)),
        ("hardware_threads", Json::Int(hardware as u64)),
        ("samples", Json::Int(SAMPLES as u64)),
        ("sequential_seconds", Json::Num(sequential_seconds)),
        ("sequential_queries_per_second", Json::Num(sequential_qps)),
        ("engine", Json::Arr(engine_reports)),
        ("all_edges", all_edges_report),
        ("value_mode", value_mode_report),
        (
            "paged",
            Json::Obj(vec![
                ("snapshot_bytes", Json::Int(snapshot_bytes)),
                ("snapshot_version", Json::Int(3)),
                ("row_codec", Json::Str(row_codec.to_string())),
                (
                    "columns_per_page",
                    Json::Int(PagedOptions::default().columns_per_page as u64),
                ),
                ("open_seconds", Json::Num(open_seconds)),
                (
                    "time_to_first_query_seconds",
                    Json::Num(time_to_first_query),
                ),
                ("engine", Json::Arr(paged_reports)),
                ("scheduled", Json::Arr(scheduled_reports)),
            ]),
        ),
    ]);
    match write_report("query_throughput", body) {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
}
