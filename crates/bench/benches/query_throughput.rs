//! Batched query throughput: the naive sequential loop
//! (`EffectiveResistanceEstimator::query_many`, one full two-column merge per
//! query) against the `effres-service` engine's batched path (precomputed
//! column norms, per-thread scratch column reuse over a sorted batch, and —
//! on multi-core hosts — scoped worker threads).
//!
//! This is the acceptance workload of the ingestion/service subsystem: a
//! ≥ 100k-node generated graph answering tens of thousands of `(p, q)`
//! queries per invocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use effres::prelude::*;
use effres_graph::generators;
use effres_service::{EngineOptions, QueryBatch, QueryEngine};
use std::sync::Arc;

const QUERIES: usize = 20_000;

fn bench_query_throughput(c: &mut Criterion) {
    // 320 x 320 grid = 102 400 nodes.
    let graph = generators::grid_2d(320, 320, 0.5, 2.0, 7).expect("generator");
    let estimator = Arc::new(
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build"),
    );
    let batch = QueryBatch::random(QUERIES, estimator.node_count(), 42);
    let pairs = batch.pairs().to_vec();

    let mut group = c.benchmark_group("query_throughput_100k_nodes");
    group.sample_size(10);

    group.bench_function(
        BenchmarkId::from_parameter(format!("sequential_query_many_{QUERIES}")),
        |b| {
            b.iter(|| estimator.query_many(&pairs).expect("in bounds"));
        },
    );

    for &threads in &[1usize, 2, 4, 8] {
        // A fresh engine per configuration: the cache must not carry answers
        // across configurations, and is disabled so the kernel itself is
        // what's measured.
        let engine = QueryEngine::new(
            Arc::clone(&estimator),
            EngineOptions {
                threads,
                cache_capacity: 0,
                parallel_threshold: if threads == 1 { usize::MAX } else { 1 },
                ..EngineOptions::default()
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine_batched", format!("{threads}_threads")),
            &engine,
            |b, engine| {
                b.iter(|| engine.execute(&batch).expect("in bounds"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_throughput);
criterion_main!(benches);
