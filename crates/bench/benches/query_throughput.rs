//! Batched query throughput: the naive sequential loop
//! (`EffectiveResistanceEstimator::query_many`, one full two-column merge per
//! query) against the `effres-service` engine's batched path (precomputed
//! column norms, reusable scratch columns over a sorted batch, and — on
//! multi-core hosts — jobs on a persistent worker pool), all reading columns
//! out of the flat CSC arena with its narrowed `u32` row indices.
//!
//! This is the acceptance workload of the ingestion/service subsystem: a
//! ≥ 100k-node generated graph answering tens of thousands of `(p, q)`
//! queries per invocation. Besides the human-readable table the bench
//! writes `BENCH_query_throughput.json` at the repository root so the perf
//! trajectory is tracked across PRs.

use effres::prelude::*;
use effres_bench::report::{min_seconds, write_report, Json};
use effres_service::{EngineOptions, QueryBatch, QueryEngine};
use std::sync::Arc;

const SIDE: usize = 320; // 320 × 320 = 102 400 nodes
const QUERIES: usize = 20_000;
const SAMPLES: usize = 10;

fn main() {
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("== query_throughput ({SIDE}x{SIDE} grid, {QUERIES} queries, {hardware} core(s))");

    let graph = effres_graph::generators::grid_2d(SIDE, SIDE, 0.5, 2.0, 7).expect("generator");
    let estimator = Arc::new(
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build"),
    );
    let batch = QueryBatch::random(QUERIES, estimator.node_count(), 42);
    let pairs = batch.pairs().to_vec();

    let sequential_seconds = min_seconds(SAMPLES, true, || {
        estimator.query_many(&pairs).expect("in bounds")
    });
    let sequential_qps = QUERIES as f64 / sequential_seconds;
    println!("sequential query_many: {sequential_seconds:.3}s  ({sequential_qps:.0} queries/s)");

    let mut engine_reports = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        // A fresh engine per configuration: the cache must not carry answers
        // across configurations, and is disabled so the kernel itself is
        // what's measured.
        let engine = QueryEngine::new(
            Arc::clone(&estimator),
            EngineOptions {
                threads,
                cache_capacity: 0,
                parallel_threshold: if threads == 1 { usize::MAX } else { 1 },
                ..EngineOptions::default()
            },
        );
        let seconds = min_seconds(SAMPLES, true, || engine.execute(&batch).expect("in bounds"));
        let qps = QUERIES as f64 / seconds;
        println!(
            "engine_batched/{threads}_threads: {seconds:.3}s  ({qps:.0} queries/s, {:.2}x sequential)",
            sequential_seconds / seconds
        );
        engine_reports.push(Json::Obj(vec![
            ("threads", Json::Int(threads as u64)),
            ("seconds", Json::Num(seconds)),
            ("queries_per_second", Json::Num(qps)),
            (
                "speedup_vs_sequential",
                Json::Num(sequential_seconds / seconds),
            ),
        ]));
    }

    let stats = estimator.stats();
    let footprint = estimator.approximate_inverse().footprint();
    let body = Json::Obj(vec![
        ("graph", Json::Str(format!("grid_2d_{SIDE}x{SIDE}"))),
        ("nodes", Json::Int(stats.node_count as u64)),
        ("inverse_nnz", Json::Int(stats.inverse_nnz as u64)),
        // Bytes of row indices the query kernels stream out of the arena —
        // halved by the usize→u32 index narrowing; `index_width_bytes`
        // records the width so the halving is visible across PRs.
        ("arena_index_bytes", Json::Int(footprint.rows_bytes as u64)),
        (
            "arena_index_width_bytes",
            Json::Int(footprint.index_width_bytes as u64),
        ),
        (
            "arena_total_bytes",
            Json::Int(footprint.total_bytes() as u64),
        ),
        ("queries", Json::Int(QUERIES as u64)),
        ("hardware_threads", Json::Int(hardware as u64)),
        ("samples", Json::Int(SAMPLES as u64)),
        ("sequential_seconds", Json::Num(sequential_seconds)),
        ("sequential_queries_per_second", Json::Num(sequential_qps)),
        ("engine", Json::Arr(engine_reports)),
    ]);
    match write_report("query_throughput", body) {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
}
