//! Criterion bench backing Table II: the reduction time of the power-grid
//! reduction flow under the three effective-resistance methods.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use effres::prelude::EffresConfig;
use effres::random_projection::RandomProjectionOptions;
use effres_powergrid::generator::{synthetic_grid, SyntheticGridOptions};
use effres_powergrid::reduce::{reduce, ErMethod, ReductionOptions};

fn bench_reduction(c: &mut Criterion) {
    let grid = synthetic_grid(&SyntheticGridOptions {
        rows: 32,
        cols: 32,
        pad_count: 8,
        ..SyntheticGridOptions::default()
    })
    .expect("generator");

    let mut group = c.benchmark_group("pg_reduction");
    group.sample_size(10);
    let methods = vec![
        ("exact_er", ErMethod::Exact),
        (
            "www15_er",
            ErMethod::RandomProjection(RandomProjectionOptions::default()),
        ),
        ("alg3_er", ErMethod::ApproxInverse(EffresConfig::default())),
    ];
    for (name, method) in methods {
        group.bench_with_input(BenchmarkId::from_parameter(name), &method, |b, m| {
            b.iter(|| {
                reduce(
                    &grid,
                    &ReductionOptions {
                        er_method: m.clone(),
                        ..ReductionOptions::default()
                    },
                )
                .expect("reduction")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
