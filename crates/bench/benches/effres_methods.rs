//! Criterion bench backing Table I: end-to-end effective-resistance
//! computation (build + all-edge queries) for the paper's Alg. 3, the WWW'15
//! random-projection baseline and the exact direct method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use effres::prelude::*;
use effres::random_projection::RandomProjectionOptions;
use effres_graph::generators;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("effective_resistances_all_edges");
    group.sample_size(10);
    let cases = vec![
        (
            "grid2d_32",
            generators::grid_2d(32, 32, 0.5, 2.0, 1).expect("generator"),
        ),
        (
            "social_pa_1k",
            generators::preferential_attachment(1000, 3, 0.5, 1.5, 2).expect("generator"),
        ),
    ];
    for (name, graph) in cases {
        group.bench_with_input(BenchmarkId::new("alg3", name), &graph, |b, g| {
            b.iter(|| {
                let est = EffectiveResistanceEstimator::build(g, &EffresConfig::default())
                    .expect("build");
                est.query_all_edges(g).expect("queries")
            })
        });
        group.bench_with_input(BenchmarkId::new("www15", name), &graph, |b, g| {
            b.iter(|| {
                let est = RandomProjectionEstimator::build(g, &RandomProjectionOptions::default())
                    .expect("build");
                est.query_all_edges(g).expect("queries")
            })
        });
        group.bench_with_input(BenchmarkId::new("exact", name), &graph, |b, g| {
            b.iter(|| {
                let est = ExactEffectiveResistance::build(g, 1.0).expect("build");
                est.query_all_edges(g).expect("queries")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
