//! End-to-end throughput of the network front-end: real TCP clients against
//! an in-process `effres-server`, resident and paged, at 1/2/4/8 concurrent
//! connections.
//!
//! The request shape follows each backend's serving model. Resident
//! connections split one 20 000-query workload evenly and *stream* their
//! shares as 1 000-pair requests — the kernels don't care how a batch
//! arrives. Paged connections each drive their *own* full-size 20 000-pair
//! scheduled batch (total work scales with the connection count): the
//! locality scheduler amortizes page IO across the batch it is given, so
//! the sustained aggregate rate of full batches queuing through cross-batch
//! admission control is the served counterpart of
//! `BENCH_query_throughput.json`'s `paged.scheduled` row (the admission
//! ledger grants each batch the full pin budget FIFO — the exact solo plan
//! — so concurrency must not multiply IO; shredding the workload into
//! fragments would benchmark cache thrash instead). The direct (no-wire)
//! batched throughput is measured in the same run, so `ratio_vs_direct`
//! records how much the transport and admission queueing cost: every paged
//! row must stay within ~20% of the direct scheduled path.
//!
//! Per-request latency is recorded client-side into the service crate's
//! streaming histogram; p50/p99 go into the JSON. On small containers note
//! `hardware_threads`: clients, connection handlers and the engine's worker
//! pool all share those cores, so concurrency scaling flattens once the
//! host is saturated — the interesting signal is that throughput *holds*
//! under concurrency, not that it multiplies.
//!
//! Writes `BENCH_server_throughput.json` at the repository root.

use effres::prelude::*;
use effres_bench::report::{write_report, Json};
use effres_io::paged::{open_paged, PagedOptions};
use effres_io::snapshot::save_snapshot;
use effres_server::{Client, ClientError, ServedEngine, Server};
use effres_service::{EngineOptions, LatencyHistogram, QueryBatch, QueryEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SIDE: usize = 320; // 320 × 320 = 102 400 nodes, same graph as query_throughput
const QUERIES: usize = 20_000;
const REQUEST_PAIRS: usize = 1_000; // pairs per wire batch request (resident)
const CONNECTIONS: [usize; 4] = [1, 2, 4, 8];
const SAMPLES: usize = 3;

fn main() {
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "== server_throughput ({SIDE}x{SIDE} grid, {QUERIES} queries, \
         {REQUEST_PAIRS}-pair requests, {hardware} core(s))"
    );

    let graph = effres_graph::generators::grid_2d(SIDE, SIDE, 0.5, 2.0, 7).expect("generator");
    let estimator = Arc::new(
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build"),
    );
    let node_count = estimator.node_count();
    let batch = QueryBatch::random(QUERIES, node_count, 42);

    // Engines mirror the query_throughput bench: pair cache off so the
    // kernel (not memoization) is measured.
    let engine_options = || EngineOptions {
        cache_capacity: 0,
        ..EngineOptions::default()
    };

    // ---- resident ----
    let direct = QueryEngine::new(Arc::clone(&estimator), engine_options());
    let direct_seconds = min_wall(SAMPLES, || {
        direct.execute(&batch).expect("in bounds");
    });
    let resident_direct_qps = QUERIES as f64 / direct_seconds;
    println!("resident direct batched: {direct_seconds:.3}s  ({resident_direct_qps:.0} queries/s)");
    let mut resident_rows = Vec::new();
    for &connections in &CONNECTIONS {
        let engine = QueryEngine::new(Arc::clone(&estimator), engine_options());
        // Round-robin split of the one workload into streamed requests.
        let chunks: Vec<Vec<(u64, u64)>> = batch
            .pairs()
            .chunks(REQUEST_PAIRS)
            .map(|chunk| chunk.iter().map(|&(p, q)| (p as u64, q as u64)).collect())
            .collect();
        let per_connection: Vec<Vec<Vec<(u64, u64)>>> = (0..connections)
            .map(|c| {
                chunks
                    .iter()
                    .skip(c)
                    .step_by(connections)
                    .cloned()
                    .collect()
            })
            .collect();
        let row = serve_and_load(
            ServedEngine::Resident(engine),
            None,
            REQUEST_PAIRS,
            &per_connection,
            resident_direct_qps,
            "resident",
        );
        resident_rows.push(row);
    }

    // ---- paged (locality scheduler + admission control behind the wire) ----
    let snap_path = std::env::temp_dir().join("effres_bench_server_throughput.snap");
    save_snapshot(&snap_path, &estimator, None).expect("snapshot");
    // Pull the file through the OS page cache once so every paged config
    // measures the engine, not the backing store's first-touch latency.
    let _ = std::fs::read(&snap_path).expect("prewarm");
    let paged_options = PagedOptions::default();
    let cache_pages = paged_options.cache_pages;
    let direct_snapshot = Arc::new(open_paged(&snap_path, &paged_options).expect("open"));
    let direct_paged = QueryEngine::new(Arc::clone(&direct_snapshot), engine_options());
    let direct_paged_seconds = min_wall(SAMPLES, || {
        direct_paged.execute_scheduled(&batch).expect("in bounds");
    });
    let paged_direct_qps = QUERIES as f64 / direct_paged_seconds;
    println!(
        "paged direct scheduled:  {direct_paged_seconds:.3}s  ({paged_direct_qps:.0} queries/s)"
    );
    let probe = direct_paged.execute_scheduled(&batch).expect("in bounds");
    if let (Some(page), Some(plan)) = (&probe.page_cache, &probe.schedule) {
        println!(
            "paged direct IO/plan:    {} misses, {:.1} MiB read, {} readahead read(s); \
             {} cluster(s) -> {} block(s), {} window(s)",
            page.misses,
            page.bytes_read as f64 / (1024.0 * 1024.0),
            page.readahead_reads,
            plan.clusters,
            plan.blocks,
            plan.windows
        );
    }
    let (recycled, fresh) = direct_snapshot.store.buffer_pool_stats();
    println!("paged direct buffer pool: {recycled} recycled, {fresh} fresh decode(s)");
    drop(direct_paged);
    drop(direct_snapshot);
    drop(direct);
    drop(estimator);
    let mut paged_rows = Vec::new();
    for &connections in &CONNECTIONS {
        let engine = QueryEngine::new(
            Arc::new(open_paged(&snap_path, &paged_options).expect("open")),
            engine_options(),
        );
        // Each connection drives its own full-size scheduled batch: the
        // admission-control workload (total work = connections × QUERIES).
        let per_connection: Vec<Vec<Vec<(u64, u64)>>> = (0..connections)
            .map(|c| {
                let own = QueryBatch::random(QUERIES, node_count, 42 + c as u64);
                vec![own
                    .pairs()
                    .iter()
                    .map(|&(p, q)| (p as u64, q as u64))
                    .collect()]
            })
            .collect();
        let row = serve_and_load(
            ServedEngine::Paged(engine),
            Some(3),
            QUERIES,
            &per_connection,
            paged_direct_qps,
            "paged",
        );
        paged_rows.push(row);
    }

    // ---- deadline: live goodput under an overload storm, on vs off ----
    std::fs::remove_file(&snap_path).ok();
    let deadline_report = deadline_goodput();

    let body = Json::Obj(vec![
        ("graph", Json::Str(format!("grid_2d_{SIDE}x{SIDE}"))),
        ("nodes", Json::Int(node_count as u64)),
        ("queries", Json::Int(QUERIES as u64)),
        ("resident_request_pairs", Json::Int(REQUEST_PAIRS as u64)),
        ("hardware_threads", Json::Int(hardware as u64)),
        ("samples", Json::Int(SAMPLES as u64)),
        (
            "resident",
            Json::Obj(vec![
                ("direct_queries_per_second", Json::Num(resident_direct_qps)),
                ("connections", Json::Arr(resident_rows)),
            ]),
        ),
        (
            "paged",
            Json::Obj(vec![
                ("cache_pages", Json::Int(cache_pages as u64)),
                (
                    "direct_scheduled_queries_per_second",
                    Json::Num(paged_direct_qps),
                ),
                ("connections", Json::Arr(paged_rows)),
            ]),
        ),
        ("deadline", deadline_report),
    ]);
    match write_report("server_throughput", body) {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
}

/// Pulls `"key":<u64>` out of the hand-rendered stats JSON.
fn stats_u64(stats: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    stats[stats.find(&needle).expect("stats key") + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("stats number")
}

/// Measures what a well-behaved client gets out of an overloaded server:
/// one live connection streams small batches while a storm connection
/// hammers full-size batches it will never wait for. With the legacy
/// opcode (cancellation off) every storm batch grinds to completion,
/// monopolizing the page cache and the core; with 1 ms deadlines
/// (cancellation on) the service-time EWMA sheds the doomed batches
/// before they take a queue slot and the brownout controller keeps the
/// engine lean. The ratio of live goodput between the two modes is the
/// payoff of the deadline-aware lifecycle.
///
/// Runs in the cache-starved regime where overload actually bites — a
/// 16×16 grid served through a 6-page cache, one column per page, the
/// same setup the `deadline_lifecycle` chaos test pins at ≥2× (the
/// big-snapshot rows above have cache to spare, so a storm there
/// interleaves at block granularity instead of starving anyone). Each
/// measured phase starts only once the storm demonstrably has hold:
/// a lease taken (off) or brownout engaged (on).
fn deadline_goodput() -> Json {
    const GRID: usize = 16;
    const NODES: u64 = (GRID * GRID) as u64;
    const LIVE_REQUESTS: u64 = 4;
    const LIVE_PAIRS: u64 = 100;
    const STORM_PAIRS: u64 = 20_000;

    let graph = effres_graph::generators::grid_2d(GRID, GRID, 0.5, 2.0, 11).expect("generator");
    let estimator =
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build");
    let snap_path = std::env::temp_dir().join("effres_bench_deadline_storm.snap");
    save_snapshot(&snap_path, &estimator, None).expect("snapshot");
    drop(estimator);
    let engine = QueryEngine::new(
        Arc::new(
            open_paged(
                &snap_path,
                &PagedOptions {
                    columns_per_page: 1,
                    cache_pages: 6,
                    cache_shards: 1,
                    ..PagedOptions::default()
                },
            )
            .expect("open"),
        ),
        EngineOptions {
            cache_capacity: 0,
            threads: 2,
            parallel_threshold: 8,
            admission_queue_depth: Some(8),
            admission_timeout: Duration::from_secs(60),
            ..EngineOptions::default()
        },
    );
    let server = Server::bind("127.0.0.1:0", ServedEngine::Paged(engine), Some(3)).expect("bind");
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run());

    let live_pairs: Vec<(u64, u64)> = (0..LIVE_PAIRS)
        .map(|i| ((i * 7 + 3) % NODES, (i * 29 + 11) % NODES))
        .collect();
    let storm_pairs: Vec<(u64, u64)> = (0..STORM_PAIRS)
        .map(|i| ((i * 37 + 5) % NODES, (i * 13 + 1) % NODES))
        .collect();

    let mut live = Client::connect(addr).expect("live connect");
    // Seed the service-time EWMA so the deadline run can judge storm
    // batches doomed before they queue.
    live.query_batch(&live_pairs).expect("seed batch");

    let mut run_mode = |deadline: Option<Duration>| -> f64 {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let storm_pairs = storm_pairs.clone();
        let storm = std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("storm connect");
            while !flag.load(Ordering::Relaxed) {
                match deadline {
                    Some(budget) => match client.query_batch_deadline(&storm_pairs, budget) {
                        Ok(_) | Err(ClientError::DeadlineExceeded(_)) => {}
                        Err(other) => panic!("storm must be shed cleanly: {other}"),
                    },
                    None => {
                        client.query_batch(&storm_pairs).expect("legacy storm");
                    }
                }
            }
        });
        // Measure only once the storm demonstrably has hold of the engine.
        let waited = Instant::now();
        loop {
            let stats = live.stats_json().expect("stats");
            let storm_holds = match deadline {
                None => stats_u64(&stats, "available") < stats_u64(&stats, "budget"),
                Some(_) => stats_u64(&stats, "brownout_entries") >= 1,
            };
            if storm_holds {
                break;
            }
            assert!(
                waited.elapsed() < Duration::from_secs(30),
                "storm never took hold: {stats}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let begun = Instant::now();
        for _ in 0..LIVE_REQUESTS {
            live.query_batch(&live_pairs).expect("live batch");
        }
        let seconds = begun.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        storm.join().expect("storm thread");
        seconds
    };

    let off_seconds = run_mode(None);
    let off_qps = (LIVE_REQUESTS * LIVE_PAIRS) as f64 / off_seconds;
    println!("deadline storm, cancellation off: {off_seconds:.3}s  ({off_qps:.0} live queries/s)");
    let on_seconds = run_mode(Some(Duration::from_millis(1)));
    let on_qps = (LIVE_REQUESTS * LIVE_PAIRS) as f64 / on_seconds;
    println!("deadline storm, cancellation on:  {on_seconds:.3}s  ({on_qps:.0} live queries/s)");
    println!(
        "deadline storm goodput ratio:     {:.1}x with cancellation",
        on_qps / off_qps
    );

    let stats = live.stats_json().expect("stats");
    let counter = |key: &str| -> u64 { stats_u64(&stats, key) };
    let report = Json::Obj(vec![
        ("graph", Json::Str(format!("grid_2d_{GRID}x{GRID}"))),
        ("cache_pages", Json::Int(6)),
        ("storm_pairs", Json::Int(STORM_PAIRS)),
        ("live_requests", Json::Int(LIVE_REQUESTS)),
        ("live_request_pairs", Json::Int(LIVE_PAIRS)),
        (
            "cancellation_off",
            Json::Obj(vec![
                ("live_seconds", Json::Num(off_seconds)),
                ("live_queries_per_second", Json::Num(off_qps)),
            ]),
        ),
        (
            "cancellation_on",
            Json::Obj(vec![
                ("live_seconds", Json::Num(on_seconds)),
                ("live_queries_per_second", Json::Num(on_qps)),
                ("deadline_exceeded", Json::Int(counter("deadline_exceeded"))),
                ("abandoned_pairs", Json::Int(counter("abandoned_pairs"))),
                ("shed_doomed", Json::Int(counter("shed_doomed"))),
                ("brownout_entries", Json::Int(counter("brownout_entries"))),
                ("brownout_exits", Json::Int(counter("brownout_exits"))),
            ]),
        ),
        ("goodput_ratio", Json::Num(on_qps / off_qps)),
    ]);

    live.shutdown_server().expect("shutdown");
    runner.join().expect("server thread").expect("serve loop");
    std::fs::remove_file(&snap_path).ok();
    report
}

/// Minimum wall time over `samples` runs after one warm-up pass.
fn min_wall(samples: usize, mut work: impl FnMut()) -> f64 {
    let warmup = Instant::now();
    work();
    print!("  [warmup {:.3}s", warmup.elapsed().as_secs_f64());
    let min = (0..samples)
        .map(|_| {
            let started = Instant::now();
            work();
            let seconds = started.elapsed().as_secs_f64();
            print!(", sample {seconds:.3}s");
            seconds
        })
        .fold(f64::INFINITY, f64::min);
    println!("]");
    min
}

/// Serves `engine` on an ephemeral port, drives each connection's request
/// chunks through its own TCP client concurrently, and returns the JSON
/// row. `request_pairs` only labels the row; the chunks carry the pairs.
fn serve_and_load(
    engine: ServedEngine,
    snapshot_version: Option<u32>,
    request_pairs: usize,
    per_connection: &[Vec<Vec<(u64, u64)>>],
    direct_qps: f64,
    label: &str,
) -> Json {
    let server = Server::bind("127.0.0.1:0", engine, snapshot_version).expect("bind");
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run());

    let connections = per_connection.len();
    let total_queries: usize = per_connection
        .iter()
        .flat_map(|chunks| chunks.iter().map(Vec::len))
        .sum();
    let latency = Arc::new(LatencyHistogram::new());
    let run_once = || {
        std::thread::scope(|scope| {
            for chunks in per_connection {
                let latency = Arc::clone(&latency);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for chunk in chunks {
                        let sent = Instant::now();
                        client.query_batch(chunk).expect("batch request");
                        latency.record(sent.elapsed());
                    }
                });
            }
        });
    };
    let seconds = min_wall(SAMPLES, run_once);
    let qps = total_queries as f64 / seconds;
    let snapshot = latency.snapshot();
    let p50 = snapshot.quantile_micros(0.50);
    let p99 = snapshot.quantile_micros(0.99);
    println!(
        "{label}/{connections}_connections ({request_pairs}-pair requests): \
         {seconds:.3}s  ({qps:.0} queries/s, {:.2}x direct; \
         request p50 {p50} µs, p99 {p99} µs)",
        qps / direct_qps
    );

    Client::connect(addr)
        .expect("closer")
        .shutdown_server()
        .expect("shutdown");
    let final_stats = runner.join().expect("server thread").expect("serve loop");
    println!("{label}/{connections}_connections final: {final_stats}");

    Json::Obj(vec![
        ("connections", Json::Int(connections as u64)),
        ("request_pairs", Json::Int(request_pairs as u64)),
        ("total_queries", Json::Int(total_queries as u64)),
        ("seconds", Json::Num(seconds)),
        ("queries_per_second", Json::Num(qps)),
        ("ratio_vs_direct", Json::Num(qps / direct_qps)),
        ("request_p50_micros", Json::Int(p50)),
        ("request_p99_micros", Json::Int(p99)),
        ("request_max_micros", Json::Int(snapshot.max_micros)),
    ])
}
