//! Regenerates Table II (upper): power-grid reduction + transient analysis.
//!
//! For a suite of synthetic IBM-like power grids, the binary compares the
//! original grid against three reduced models that differ only in how the
//! effective resistances of the reduction flow are computed: exactly, with
//! the WWW'15 random-projection baseline, and with the paper's Alg. 3. It
//! reports the reduced sizes, reduction time `Tred`, transient time `Ttr`,
//! and the average/relative port-voltage error of the transient solution.
//!
//! Usage: `cargo run -p effres-bench --bin table2_transient --release [scale]`

use effres::prelude::EffresConfig;
use effres::random_projection::RandomProjectionOptions;
use effres_bench::secs;
use effres_powergrid::analysis::{transient_solve, LoadScale, TransientOptions};
use effres_powergrid::generator::{synthetic_grid, SyntheticGridOptions};
use effres_powergrid::reduce::{reduce, ErMethod, ReductionOptions};
use effres_powergrid::PowerGrid;
use std::time::Instant;

fn transient_options() -> TransientOptions {
    TransientOptions {
        time_step: 1e-11,
        steps: 1000,
        record_nodes: Vec::new(),
        load_scale: LoadScale::Pulse {
            period: 2e-9,
            duty: 0.5,
        },
    }
}

struct MethodResult {
    nodes: usize,
    resistors: usize,
    reduction_time: f64,
    transient_time: f64,
    error_mv: f64,
    relative_percent: f64,
}

fn run_method(grid: &PowerGrid, original_avg: &[f64], method: ErMethod) -> MethodResult {
    let options = ReductionOptions {
        er_method: method,
        ..ReductionOptions::default()
    };
    let reduced = reduce(grid, &options).expect("reduction");
    let tr_start = Instant::now();
    let solution = transient_solve(&reduced.grid, &transient_options()).expect("transient");
    let transient_time = tr_start.elapsed().as_secs_f64();
    let supply = grid.supply_voltage();
    let max_drop = original_avg
        .iter()
        .fold(0.0_f64, |m, &v| m.max(supply - v))
        .max(f64::MIN_POSITIVE);
    let mut sum = 0.0;
    let mut count = 0;
    for &port in &grid.port_nodes() {
        if let Some(node) = reduced.node_map[port] {
            sum += (original_avg[port] - solution.average_voltages[node]).abs();
            count += 1;
        }
    }
    let err = if count == 0 { 0.0 } else { sum / count as f64 };
    MethodResult {
        nodes: reduced.stats.reduced_nodes,
        resistors: reduced.stats.reduced_resistors,
        reduction_time: reduced.stats.total_time.as_secs_f64(),
        transient_time,
        error_mv: err * 1e3,
        relative_percent: err / max_drop * 100.0,
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let sizes: Vec<(&str, usize)> = vec![
        ("pg-small", (32.0 * scale.sqrt()) as usize),
        ("pg-medium", (48.0 * scale.sqrt()) as usize),
        ("pg-large", (64.0 * scale.sqrt()) as usize),
    ];
    println!("Table II (upper): graph-sparsification-based PG reduction for transient analysis\n");
    println!(
        "{:<10} {:>16} {:>9} | {:>22} | {:>22} | {:>22}",
        "case", "orig |V|(|R|)", "Ttr(s)", "Acc. ER", "App. ER (WWW15)", "App. ER (Alg.3)"
    );
    println!(
        "{:<10} {:>16} {:>9} | {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6}",
        "", "", "", "Tred", "Ttr", "Rel%", "Tred", "Ttr", "Rel%", "Tred", "Ttr", "Rel%"
    );

    let mut speedups_tred = Vec::new();
    let mut speedups_total = Vec::new();
    for (name, side) in sizes {
        let grid = synthetic_grid(&SyntheticGridOptions {
            rows: side.max(16),
            cols: side.max(16),
            pad_count: (side / 4).max(4),
            ..SyntheticGridOptions::default()
        })
        .expect("generator");

        let orig_start = Instant::now();
        let original = transient_solve(&grid, &transient_options()).expect("transient");
        let orig_time = orig_start.elapsed().as_secs_f64();

        let acc = run_method(&grid, &original.average_voltages, ErMethod::Exact);
        let rp = run_method(
            &grid,
            &original.average_voltages,
            ErMethod::RandomProjection(RandomProjectionOptions::default()),
        );
        let alg3 = run_method(
            &grid,
            &original.average_voltages,
            ErMethod::ApproxInverse(EffresConfig::default()),
        );

        println!(
            "{:<10} {:>9}({:>6}) {:>9.3} | {:>7.3} {:>7.3} {:>6.2} | {:>7.3} {:>7.3} {:>6.2} | {:>7.3} {:>7.3} {:>6.2}",
            name,
            grid.node_count(),
            grid.resistor_count(),
            orig_time,
            acc.reduction_time,
            acc.transient_time,
            acc.relative_percent,
            rp.reduction_time,
            rp.transient_time,
            rp.relative_percent,
            alg3.reduction_time,
            alg3.transient_time,
            alg3.relative_percent,
        );
        println!(
            "{:<10} reduced |V|(|R|): acc {}({})  www15 {}({})  alg3 {}({})   Err(mV): acc {:.3} www15 {:.3} alg3 {:.3}",
            "",
            acc.nodes,
            acc.resistors,
            rp.nodes,
            rp.resistors,
            alg3.nodes,
            alg3.resistors,
            acc.error_mv,
            rp.error_mv,
            alg3.error_mv,
        );
        speedups_tred.push(acc.reduction_time / alg3.reduction_time.max(1e-9));
        speedups_total.push(
            (acc.reduction_time + acc.transient_time)
                / (alg3.reduction_time + alg3.transient_time).max(1e-9),
        );
    }
    println!();
    println!(
        "average reduction-time speedup of Alg. 3 over accurate effective resistances: {:.1}x \
         (paper: 6.4x)",
        effres::stats::geometric_mean(&speedups_tred)
    );
    println!(
        "average total-time speedup (reduction + transient): {:.1}x (paper: 1.7x)",
        effres::stats::geometric_mean(&speedups_total)
    );
    let _ = secs(std::time::Duration::ZERO);
}
