//! Regenerates Fig. 1: transient waveforms of a load node, original grid vs.
//! reduced grid.
//!
//! The binary prints the two waveforms as CSV (`time_ns, v_original,
//! v_reduced`) for a heavily-loaded node and for a lightly-loaded node, plus
//! their maximum absolute deviation, and writes the same data to
//! `fig1_waveforms.csv` in the working directory.
//!
//! Usage: `cargo run -p effres-bench --bin fig1 --release`

use effres::prelude::EffresConfig;
use effres_powergrid::analysis::{transient_solve, LoadScale, TransientOptions};
use effres_powergrid::generator::{synthetic_grid, SyntheticGridOptions};
use effres_powergrid::reduce::{reduce, ErMethod, ReductionOptions};
use std::fmt::Write as _;

fn main() {
    let grid = synthetic_grid(&SyntheticGridOptions::default()).expect("generator");
    // Pick the most heavily loaded node and one far from it as the two
    // recorded nodes (the paper records one VDD node and one GND node of
    // ibmpg3t; our single-net model records two contrasting load nodes).
    let mut loads: Vec<(usize, f64)> = grid.loads().iter().map(|l| (l.node, l.amps)).collect();
    loads.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite currents"));
    let heavy = loads.first().expect("grid has loads").0;
    let light = loads.last().expect("grid has loads").0;

    let options = TransientOptions {
        time_step: 1e-11,
        steps: 1000,
        record_nodes: vec![heavy, light],
        load_scale: LoadScale::Pulse {
            period: 2e-9,
            duty: 0.5,
        },
    };
    let original = transient_solve(&grid, &options).expect("transient");

    let reduced = reduce(
        &grid,
        &ReductionOptions {
            er_method: ErMethod::ApproxInverse(EffresConfig::default()),
            ..ReductionOptions::default()
        },
    )
    .expect("reduction");
    let reduced_heavy = reduced.node_map[heavy].expect("load node is a port");
    let reduced_light = reduced.node_map[light].expect("load node is a port");
    let reduced_options = TransientOptions {
        record_nodes: vec![reduced_heavy, reduced_light],
        ..options.clone()
    };
    let reduced_solution =
        transient_solve(&reduced.grid, &reduced_options).expect("reduced transient");

    let mut csv =
        String::from("time_ns,v_heavy_original,v_heavy_reduced,v_light_original,v_light_reduced\n");
    for i in 0..original.waveforms[0].times.len() {
        let _ = writeln!(
            csv,
            "{:.4},{:.6},{:.6},{:.6},{:.6}",
            original.waveforms[0].times[i] * 1e9,
            original.waveforms[0].values[i],
            reduced_solution.waveforms[0].values[i],
            original.waveforms[1].values[i],
            reduced_solution.waveforms[1].values[i],
        );
    }
    let heavy_dev = original.waveforms[0].max_abs_difference(&reduced_solution.waveforms[0]);
    let light_dev = original.waveforms[1].max_abs_difference(&reduced_solution.waveforms[1]);

    println!("Fig. 1: transient waveforms, original vs. reduced power grid");
    println!("heavily loaded node {heavy}: max |v_orig - v_red| = {heavy_dev:.3e} V");
    println!("lightly loaded node {light}: max |v_orig - v_red| = {light_dev:.3e} V");
    println!();
    // Print a decimated preview (every 50th sample) so the series is visible
    // in the terminal; the full data goes to the CSV file.
    println!("time_ns  v_heavy_orig  v_heavy_red  v_light_orig  v_light_red");
    for i in (0..original.waveforms[0].times.len()).step_by(50) {
        println!(
            "{:7.3}  {:12.6}  {:11.6}  {:12.6}  {:11.6}",
            original.waveforms[0].times[i] * 1e9,
            original.waveforms[0].values[i],
            reduced_solution.waveforms[0].values[i],
            original.waveforms[1].values[i],
            reduced_solution.waveforms[1].values[i],
        );
    }
    match std::fs::write("fig1_waveforms.csv", csv) {
        Ok(()) => println!("\nfull waveforms written to fig1_waveforms.csv"),
        Err(e) => println!("\ncould not write fig1_waveforms.csv: {e}"),
    }
}
