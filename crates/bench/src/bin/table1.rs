//! Regenerates Table I: computing effective resistances on large graphs.
//!
//! For every case of the synthetic suite the binary reports, for the WWW'15
//! random-projection baseline and for the paper's Alg. 3: runtime for all
//! edge queries, average (`Ea`) and maximum (`Em`) relative error against
//! exact effective resistances on up to 1000 sampled edges, and the density
//! figure `nnz / (n log2 n)`. The `dpt` column is the maximum filled-graph
//! depth of the incomplete factor.
//!
//! Usage: `cargo run -p effres-bench --bin table1 --release [scale]`
//! where `scale` multiplies the case sizes (default 1.0).

use effres::prelude::*;
use effres::random_projection::RandomProjectionOptions;
use effres::stats::{geometric_mean, relative_errors, sample_edges};
use effres_bench::{sci, secs, table1_suite};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("Table I: results for computing effective resistances on large graphs");
    println!("(synthetic suite, scale {scale}; see DESIGN.md for the substitutions)\n");
    println!(
        "{:<10} {:>8} {:>9} {:>5} | {:>9} {:>8} {:>8} {:>8} | {:>9} {:>8} {:>8} {:>8}",
        "case",
        "|V|",
        "|E|",
        "dpt",
        "T_rp(s)",
        "Ea_rp",
        "Em_rp",
        "nnzQ/nlg",
        "T_a3(s)",
        "Ea_a3",
        "Em_a3",
        "nnzZ/nlg"
    );

    let mut speedups = Vec::new();
    let mut error_ratios = Vec::new();
    for case in table1_suite(scale) {
        let graph = &case.graph;
        let n = graph.node_count();
        let m = graph.edge_count();

        // Ground truth on up to 1000 random edges (the paper's protocol).
        let exact = ExactEffectiveResistance::build(graph, 1.0).expect("exact factorization");
        let sample = sample_edges(graph, 1000, 99);
        let truth = exact.query_many(&sample).expect("exact queries");

        // WWW'15 random-projection baseline.
        let rp_start = Instant::now();
        let rp = RandomProjectionEstimator::build(graph, &RandomProjectionOptions::default())
            .expect("baseline build");
        let _all_rp = rp.query_all_edges(graph).expect("baseline queries");
        let rp_time = rp_start.elapsed();
        let rp_sampled = rp.query_many(&sample).expect("baseline queries");
        let (rp_ea, rp_em) = relative_errors(&rp_sampled, &truth);

        // Alg. 3.
        let a3_start = Instant::now();
        let estimator = EffectiveResistanceEstimator::build(graph, &EffresConfig::default())
            .expect("Alg. 3 build");
        let _all_a3 = estimator.query_all_edges(graph).expect("Alg. 3 queries");
        let a3_time = a3_start.elapsed();
        let a3_sampled = estimator.query_many(&sample).expect("Alg. 3 queries");
        let (a3_ea, a3_em) = relative_errors(&a3_sampled, &truth);

        let stats = estimator.stats();
        println!(
            "{:<10} {:>8} {:>9} {:>5} | {:>9} {:>8} {:>8} {:>8.2} | {:>9} {:>8} {:>8} {:>8.2}",
            case.name,
            n,
            m,
            stats.max_depth,
            secs(rp_time),
            sci(rp_ea),
            sci(rp_em),
            rp.nnz_ratio(),
            secs(a3_time),
            sci(a3_ea),
            sci(a3_em),
            stats.inverse_nnz_ratio,
        );
        speedups.push(rp_time.as_secs_f64() / a3_time.as_secs_f64().max(1e-9));
        if a3_ea > 0.0 {
            error_ratios.push(rp_ea / a3_ea);
        }
    }
    println!();
    println!(
        "geometric-mean speedup of Alg. 3 over the random-projection baseline: {:.1}x",
        geometric_mean(&speedups)
    );
    println!(
        "geometric-mean improvement in average relative error: {:.1}x",
        geometric_mean(&error_ratios)
    );
    println!(
        "(the paper reports 168x average speedup and 1-2 orders of magnitude error improvement \
         on benchmark graphs that are 10-1000x larger)"
    );
}
