//! Regenerates Table II (lower): DC incremental analysis.
//!
//! Starting from a fully reduced grid, 10% of the blocks are modified (an
//! ECO-style perturbation), only those blocks are re-reduced, and the
//! reduced model is re-solved. The experiment is repeated for the three
//! effective-resistance methods and compared against solving the modified
//! grid directly.
//!
//! Usage: `cargo run -p effres-bench --bin table2_incremental --release [scale]`

use effres::prelude::EffresConfig;
use effres::random_projection::RandomProjectionOptions;
use effres_powergrid::analysis::dc_solve;
use effres_powergrid::generator::{synthetic_grid, SyntheticGridOptions};
use effres_powergrid::incremental::{run_incremental_experiment, IncrementalReducer};
use effres_powergrid::reduce::{ErMethod, ReductionOptions};
use std::time::Instant;

struct MethodResult {
    reduction_time: f64,
    solve_time: f64,
    error_mv: f64,
    relative_percent: f64,
}

fn run_method(grid: &effres_powergrid::PowerGrid, method: ErMethod) -> MethodResult {
    let mut reducer = IncrementalReducer::new(
        grid.clone(),
        ReductionOptions {
            er_method: method,
            ..ReductionOptions::default()
        },
    )
    .expect("initial reduction");
    let run = run_incremental_experiment(&mut reducer, 0.10, 777).expect("incremental run");
    MethodResult {
        reduction_time: run.reduction_time.as_secs_f64(),
        solve_time: run.solve_time.as_secs_f64(),
        error_mv: run.average_error * 1e3,
        relative_percent: run.relative_error * 100.0,
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let sizes: Vec<(&str, usize)> = vec![
        ("pg-small", (32.0 * scale.sqrt()) as usize),
        ("pg-medium", (48.0 * scale.sqrt()) as usize),
        ("pg-large", (64.0 * scale.sqrt()) as usize),
    ];
    println!("Table II (lower): DC incremental analysis (10% of blocks modified)\n");
    println!(
        "{:<10} {:>16} {:>9} | {:>22} | {:>22} | {:>22}",
        "case", "orig |V|(|R|)", "Tinc(s)", "Acc. ER", "App. ER (WWW15)", "App. ER (Alg.3)"
    );
    println!(
        "{:<10} {:>16} {:>9} | {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6}",
        "", "", "", "Tred", "Tinc", "Rel%", "Tred", "Tinc", "Rel%", "Tred", "Tinc", "Rel%"
    );

    let mut speedups_total = Vec::new();
    for (name, side) in sizes {
        let grid = synthetic_grid(&SyntheticGridOptions {
            rows: side.max(16),
            cols: side.max(16),
            pad_count: (side / 4).max(4),
            ..SyntheticGridOptions::default()
        })
        .expect("generator");

        // Direct re-solve of the modified grid ("Original" column).
        let direct_start = Instant::now();
        let _ = dc_solve(&grid).expect("dc");
        let direct_time = direct_start.elapsed().as_secs_f64();

        let acc = run_method(&grid, ErMethod::Exact);
        let rp = run_method(
            &grid,
            ErMethod::RandomProjection(RandomProjectionOptions::default()),
        );
        let alg3 = run_method(&grid, ErMethod::ApproxInverse(EffresConfig::default()));

        println!(
            "{:<10} {:>9}({:>6}) {:>9.3} | {:>7.3} {:>7.3} {:>6.2} | {:>7.3} {:>7.3} {:>6.2} | {:>7.3} {:>7.3} {:>6.2}",
            name,
            grid.node_count(),
            grid.resistor_count(),
            direct_time,
            acc.reduction_time,
            acc.solve_time,
            acc.relative_percent,
            rp.reduction_time,
            rp.solve_time,
            rp.relative_percent,
            alg3.reduction_time,
            alg3.solve_time,
            alg3.relative_percent,
        );
        println!(
            "{:<10} Err(mV): acc {:.3}  www15 {:.3}  alg3 {:.3}",
            "", acc.error_mv, rp.error_mv, alg3.error_mv
        );
        speedups_total.push(
            (acc.reduction_time + acc.solve_time)
                / (alg3.reduction_time + alg3.solve_time).max(1e-9),
        );
    }
    println!();
    println!(
        "average total-time speedup of Alg. 3 over accurate effective resistances: {:.1}x \
         (paper: 2.5x)",
        effres::stats::geometric_mean(&speedups_total)
    );
}
