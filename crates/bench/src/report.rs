//! Machine-readable benchmark reports.
//!
//! Every perf-critical bench binary emits a `BENCH_<name>.json` file at the
//! repository root alongside its human-readable output, so the performance
//! trajectory of the workspace can be tracked across PRs by diffing or
//! collecting those files. The format is plain JSON built from
//! [`Json`] values — no external dependencies, deterministic key order.

use std::io::Write;
use std::path::{Path, PathBuf};

/// A minimal JSON value: everything the bench reports need, nothing more.
#[derive(Debug, Clone)]
pub enum Json {
    /// A floating-point number (must be finite; NaN/∞ render as `null`).
    Num(f64),
    /// An unsigned integer (node counts, nnz, thread counts).
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with keys in insertion order.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Num(v) if v.is_finite() => out.push_str(&format!("{v:?}")),
            Json::Num(_) => out.push_str("null"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str((*key).to_string()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root")
        .to_path_buf()
}

/// Writes `BENCH_<name>.json` at the repository root, wrapping `body` with
/// the bench name and a capture timestamp. Returns the path written.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn write_report(name: &str, body: Json) -> std::io::Result<PathBuf> {
    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let report = Json::Obj(vec![
        ("bench", Json::Str(name.to_string())),
        ("unix_seconds", Json::Int(unix_seconds)),
        ("report", body),
    ]);
    let path = repo_root().join(format!("BENCH_{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(report.render().as_bytes())?;
    file.write_all(b"\n")?;
    Ok(path)
}

/// Times `routine` for `samples` runs (after one warm-up when `warm_up` is
/// set) and returns the minimum wall-clock seconds — the usual low-noise
/// point estimate for throughput-style benches.
pub fn min_seconds<O>(samples: usize, warm_up: bool, mut routine: impl FnMut() -> O) -> f64 {
    if warm_up {
        std::hint::black_box(routine());
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = std::time::Instant::now();
        std::hint::black_box(routine());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_compact_and_escaped() {
        let value = Json::Obj(vec![
            ("name", Json::Str("a\"b\\c\n".to_string())),
            ("count", Json::Int(3)),
            ("ratio", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
            ("bad", Json::Num(f64::NAN)),
            ("items", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            value.render(),
            r#"{"name":"a\"b\\c\n","count":3,"ratio":0.5,"ok":true,"bad":null,"items":[1,2]}"#
        );
    }

    #[test]
    fn repo_root_contains_the_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").is_file());
        assert!(repo_root().join("crates/bench").is_dir());
    }

    #[test]
    fn min_seconds_times_something() {
        let s = min_seconds(2, true, || (0..1000u64).sum::<u64>());
        assert!((0.0..1.0).contains(&s));
    }
}
