//! Benchmark suite definitions and report helpers.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figure:
//!
//! * `table1` — Table I: effective resistances on large graphs, Alg. 3 vs.
//!   the WWW'15 random-projection baseline;
//! * `table2_transient` — Table II (upper): power-grid reduction + transient
//!   analysis;
//! * `table2_incremental` — Table II (lower): DC incremental analysis;
//! * `fig1` — Fig. 1: transient waveforms of a load node, original vs.
//!   reduced model.
//!
//! The graph suite mirrors the structural regimes of the paper's test cases
//! (social networks, finite-element meshes, circuit meshes) with synthetic
//! generators at laptop scale; see `DESIGN.md` for the substitution notes.

pub mod report;

use effres_graph::generators;
use effres_graph::Graph;

/// One entry of the Table I graph suite.
#[derive(Debug, Clone)]
pub struct SuiteCase {
    /// Short case name (patterned after the paper's case names).
    pub name: &'static str,
    /// The generated graph.
    pub graph: Graph,
}

/// Builds the Table I graph suite.
///
/// `scale` multiplies the case sizes; `1.0` is the default laptop-scale suite
/// (thousands of nodes), larger values approach the paper's sizes at the cost
/// of runtime.
///
/// # Panics
///
/// Panics only if the built-in generator parameters are invalid, which would
/// be a bug in this crate.
pub fn table1_suite(scale: f64) -> Vec<SuiteCase> {
    let s = |base: usize| ((base as f64 * scale).round() as usize).max(64);
    vec![
        SuiteCase {
            name: "social-pa",
            graph: generators::preferential_attachment(s(3000), 3, 0.5, 1.5, 11)
                .expect("valid generator parameters"),
        },
        SuiteCase {
            name: "social-sw",
            graph: generators::small_world(s(3000), 3, 0.05, 0.5, 1.5, 12)
                .expect("valid generator parameters"),
        },
        SuiteCase {
            name: "fe-mesh3d",
            graph: {
                let side = (((s(2200)) as f64).powf(1.0 / 3.0).round() as usize).max(6);
                generators::fe_mesh(side, side, side, 0.5, 2.0, 13)
                    .expect("valid generator parameters")
            },
        },
        SuiteCase {
            name: "grid3d",
            graph: {
                let side = (((s(2700)) as f64).powf(1.0 / 3.0).round() as usize).max(6);
                generators::grid_3d(side, side, side, 0.5, 2.0, 14)
                    .expect("valid generator parameters")
            },
        },
        SuiteCase {
            name: "pg-mesh",
            graph: {
                let side = ((s(4096) as f64).sqrt().round() as usize).max(16);
                generators::power_grid_mesh(effres_graph::generators::PowerGridMeshOptions {
                    rows: side,
                    cols: side,
                    seed: 15,
                    ..Default::default()
                })
                .expect("valid generator parameters")
            },
        },
        SuiteCase {
            name: "grid2d",
            graph: {
                let side = ((s(4096) as f64).sqrt().round() as usize).max(16);
                generators::grid_2d(side, side, 0.5, 2.0, 16).expect("valid generator parameters")
            },
        },
    ]
}

/// Formats a floating-point value in the compact scientific style of the
/// paper's tables (e.g. `2.6E-2`).
pub fn sci(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    format!("{value:.1E}")
}

/// Formats a duration in seconds with three decimal digits.
pub fn secs(duration: std::time::Duration) -> String {
    format!("{:.3}", duration.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_nonempty_and_connected_enough() {
        let suite = table1_suite(0.1);
        assert_eq!(suite.len(), 6);
        for case in &suite {
            assert!(case.graph.node_count() >= 64, "{} too small", case.name);
            assert!(case.graph.edge_count() > case.graph.node_count() / 2);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(sci(0.0), "0");
        assert!(sci(0.026).starts_with("2.6E"));
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
