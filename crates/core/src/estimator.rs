//! The end-to-end effective-resistance estimator (Alg. 3 of the paper).
//!
//! The pipeline is:
//!
//! 1. build the grounded Laplacian of the graph;
//! 2. apply a fill-reducing ordering;
//! 3. compute an incomplete Cholesky factorization `L Lᵀ ≈ P L_G Pᵀ` with a
//!    drop tolerance (1e-3 in the paper's experiments);
//! 4. run Alg. 2 to obtain the sparse approximate inverse `Z̃ ≈ L⁻¹`;
//! 5. answer each query `(p, q)` as `R(p, q) ≈ ‖z̃_{π(p)} − z̃_{π(q)}‖²`.

use crate::approx_inverse::{SparseApproximateInverse, ValueMode};
use crate::column_store::{column_distances_squared_grouped, HubScratch};
use crate::config::{EffresConfig, Ordering};
use crate::depth::FilledGraphDepth;
use crate::error::EffresError;
use effres_graph::laplacian::grounded_laplacian;
use effres_graph::Graph;
use effres_sparse::ichol::{IcholOptions, IncompleteCholesky};
use effres_sparse::{amd, rcm, CscMatrix, Permutation};

/// Summary of the data structures built by the estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorStats {
    /// Number of nodes.
    pub node_count: usize,
    /// Nonzeros in the incomplete Cholesky factor.
    pub factor_nnz: usize,
    /// Nonzeros in the approximate inverse `Z̃`.
    pub inverse_nnz: usize,
    /// `nnz(Z̃) / (n log₂ n)` — the density column of Table I.
    pub inverse_nnz_ratio: f64,
    /// Maximum filled-graph depth (the `dpt` column of Table I).
    pub max_depth: usize,
    /// Entries dropped by the incomplete factorization.
    pub ichol_dropped: usize,
    /// Entries pruned by Alg. 2.
    pub pruned_entries: usize,
}

/// Effective-resistance estimator based on the sparse approximate inverse of
/// the (incomplete) Cholesky factor.
#[derive(Debug, Clone)]
pub struct EffectiveResistanceEstimator {
    inverse: SparseApproximateInverse,
    permutation: Permutation,
    stats: EstimatorStats,
    /// Memoized `‖z̃_j‖²` table (permuted domain). Computed lazily on first
    /// use, or primed from a snapshot's persisted norms block — the two are
    /// bit-identical because the snapshot writer sums in the same index
    /// order. `Arc`-shared so query engines borrow the one copy instead of
    /// cloning `8n` bytes per consumer.
    norms: std::sync::OnceLock<std::sync::Arc<Vec<f64>>>,
}

impl EffectiveResistanceEstimator {
    /// Builds the estimator for a weighted undirected graph (Alg. 3, steps 1–2).
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::InvalidConfig`] for invalid configuration and
    /// [`EffresError::Sparse`] if a factorization step fails.
    pub fn build(graph: &Graph, config: &EffresConfig) -> Result<Self, EffresError> {
        config.validate()?;
        let lap = grounded_laplacian(graph, config.ground_conductance);
        Self::build_from_laplacian(&lap, config)
    }

    /// Builds the estimator from an already-grounded SDD matrix (used by the
    /// power-grid reduction flow, whose reduced blocks are conductance
    /// matrices rather than graphs).
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::InvalidConfig`] for invalid configuration and
    /// [`EffresError::Sparse`] if a factorization step fails.
    pub fn build_from_laplacian(
        matrix: &CscMatrix,
        config: &EffresConfig,
    ) -> Result<Self, EffresError> {
        config.validate()?;
        let permutation = match config.ordering {
            Ordering::Natural => Permutation::identity(matrix.ncols()),
            Ordering::Rcm => rcm::rcm(matrix)?,
            Ordering::MinimumDegree => amd::amd(matrix)?,
        };
        let permuted = if permutation.is_identity() {
            matrix.clone()
        } else {
            matrix.permute_symmetric(&permutation)?
        };
        let ichol = IncompleteCholesky::factor(
            &permuted,
            IcholOptions {
                drop_tolerance: config.drop_tolerance,
                ..IcholOptions::default()
            },
        )?;
        let factor_nnz = ichol.nnz();
        let ichol_dropped = ichol.stats().dropped;
        // Hand the factor to the build as an owned Arc: the level-scheduled
        // sweep runs on persistent pool workers (the config's shared pool
        // when set), and shared ownership lets it do so without copying the
        // factor.
        let factor = std::sync::Arc::new(ichol.into_factor());
        let depth = FilledGraphDepth::from_factor(&factor);
        let inverse = SparseApproximateInverse::from_factor_shared(
            factor,
            config.epsilon,
            config.dense_column_threshold,
            &config.build,
            config.worker_pool.as_ref(),
        )?
        // The build always runs in full precision; an f32 deployment
        // narrows the finished arena (so the narrowing error is a single
        // rounding per value, never compounded through the sweep).
        .with_value_mode(config.value_mode)?;
        let stats = EstimatorStats {
            node_count: matrix.ncols(),
            factor_nnz,
            inverse_nnz: inverse.nnz(),
            inverse_nnz_ratio: inverse.nnz_ratio(),
            max_depth: depth.max_depth(),
            ichol_dropped,
            pruned_entries: inverse.stats().pruned_entries,
        };
        Ok(EffectiveResistanceEstimator {
            inverse,
            permutation,
            stats,
            norms: std::sync::OnceLock::new(),
        })
    }

    /// Number of nodes covered by the estimator.
    pub fn node_count(&self) -> usize {
        self.stats.node_count
    }

    /// Build statistics (factor size, inverse size, maximum depth, ...).
    pub fn stats(&self) -> EstimatorStats {
        self.stats
    }

    /// Approximate effective resistance between `p` and `q` (Eq. (22)).
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] for invalid node indices.
    pub fn query(&self, p: usize, q: usize) -> Result<f64, EffresError> {
        self.check(p)?;
        self.check(q)?;
        if p == q {
            return Ok(0.0);
        }
        let pp = self.permutation.new(p);
        let qq = self.permutation.new(q);
        Ok(self.inverse.column_distance_squared(pp, qq))
    }

    /// Approximate effective resistances for a batch of queries.
    ///
    /// Every node index is validated *before* any resistance is computed, so
    /// a malformed pair deep inside a large batch fails fast instead of
    /// wasting work (or panicking mid-batch); `p == q` pairs short-circuit
    /// to `0.0`.
    ///
    /// The batch is answered by the grouped multi-pair kernel
    /// ([`crate::column_store::column_distances_squared_grouped`]): pairs
    /// are sorted by their (permuted) endpoints so queries sharing a column
    /// stream that column's rows/vals once, and each pair is evaluated with
    /// the memoized norm table. Answers are returned in the caller's order.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] naming the first invalid
    /// node; in that case no query has been evaluated.
    pub fn query_many(&self, queries: &[(usize, usize)]) -> Result<Vec<f64>, EffresError> {
        for &(p, q) in queries {
            self.check(p)?;
            self.check(q)?;
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        // Permute and normalize to (min, max) endpoints, then sort so every
        // cluster sharing a smaller endpoint becomes one hub run.
        let permuted: Vec<(usize, usize)> = queries
            .iter()
            .map(|&(p, q)| {
                let pp = self.permutation.new(p);
                let qq = self.permutation.new(q);
                (pp.min(qq), pp.max(qq))
            })
            .collect();
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_by_key(|&slot| permuted[slot]);
        let sorted: Vec<(usize, usize)> = order.iter().map(|&slot| permuted[slot]).collect();
        let norms = self.column_norms_shared();
        let mut scratch = HubScratch::new(self.inverse.order());
        let values =
            column_distances_squared_grouped(&self.inverse, &sorted, Some(&norms), &mut scratch)?;
        let mut out = vec![0.0; queries.len()];
        for (&slot, value) in order.iter().zip(values) {
            out[slot] = value;
        }
        Ok(out)
    }

    /// Approximate effective resistances of every edge of `graph`, in edge-id
    /// order. This is the `Q_r = E` workload of Table I, and it runs on the
    /// same grouped multi-pair kernel as
    /// [`EffectiveResistanceEstimator::query_many`] — all-edges batches are
    /// exactly the hub-heavy workload the kernel amortizes best.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] — detected up front, before
    /// any query runs — if the graph has more nodes than the estimator.
    pub fn query_all_edges(&self, graph: &Graph) -> Result<Vec<f64>, EffresError> {
        if graph.node_count() > self.stats.node_count {
            return Err(EffresError::NodeOutOfBounds {
                node: graph.node_count() - 1,
                node_count: self.stats.node_count,
            });
        }
        let pairs: Vec<(usize, usize)> = graph.edges().map(|(_, e)| (e.u, e.v)).collect();
        self.query_many(&pairs)
    }

    /// Converts the arena's value storage (see [`ValueMode`] and
    /// [`SparseApproximateInverse::with_value_mode`]). The memoized norm
    /// table is dropped: in f32 mode the norms must be recomputed from the
    /// *narrowed* values so they stay bit-consistent with what the query
    /// kernels stream, so a table primed from an f64 snapshot cannot be
    /// carried over.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::InvalidConfig`] if a stored value overflows
    /// `f32` when narrowing.
    pub fn with_value_mode(self, mode: ValueMode) -> Result<Self, EffresError> {
        if self.inverse.value_mode() == mode {
            return Ok(self);
        }
        Ok(EffectiveResistanceEstimator {
            inverse: self.inverse.with_value_mode(mode)?,
            permutation: self.permutation,
            stats: self.stats,
            norms: std::sync::OnceLock::new(),
        })
    }

    /// Approximate effective resistance using squared column norms
    /// precomputed by [`EffectiveResistanceEstimator::column_norms_squared`].
    /// This halves the per-query sparse work and is the kernel the
    /// `effres-service` query engine runs on its hot path.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] for invalid node indices.
    pub fn query_with_norms(
        &self,
        p: usize,
        q: usize,
        norms_squared: &[f64],
    ) -> Result<f64, EffresError> {
        self.check(p)?;
        self.check(q)?;
        if p == q {
            return Ok(0.0);
        }
        let pp = self.permutation.new(p);
        let qq = self.permutation.new(q);
        Ok(self
            .inverse
            .column_distance_squared_with_norms(pp, qq, norms_squared))
    }

    /// Squared Euclidean norms of the approximate-inverse columns, indexed in
    /// the *permuted* domain expected by
    /// [`EffectiveResistanceEstimator::query_with_norms`].
    ///
    /// The table is memoized: the first call sweeps the arena once (or uses
    /// a table primed from a snapshot's persisted norms block via
    /// [`EffectiveResistanceEstimator::prime_column_norms`]); later calls
    /// clone the cached table.
    pub fn column_norms_squared(&self) -> Vec<f64> {
        self.column_norms_shared().to_vec()
    }

    /// The memoized table behind a shared handle: consumers that keep the
    /// table around (query engines) clone the `Arc`, not the `8n` bytes.
    pub fn column_norms_shared(&self) -> std::sync::Arc<Vec<f64>> {
        std::sync::Arc::clone(
            self.norms
                .get_or_init(|| std::sync::Arc::new(self.inverse.column_norms_squared())),
        )
    }

    /// The memoized `‖z̃_j‖²` table, if it has been computed or primed.
    pub fn cached_column_norms(&self) -> Option<&[f64]> {
        self.norms.get().map(|table| table.as_slice())
    }

    /// Primes the memoized norm table with values derived at snapshot write
    /// time, so loading skips the full arena sweep. The caller asserts the
    /// table was produced by summing `v·v` over each column in index order
    /// (the snapshot writer does exactly that, making the primed table
    /// bit-identical to a recomputed one). A table that is already cached is
    /// left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::InvalidConfig`] if the table length disagrees
    /// with the node count or contains a non-finite entry.
    pub fn prime_column_norms(&self, norms: Vec<f64>) -> Result<(), EffresError> {
        if norms.len() != self.stats.node_count {
            return Err(EffresError::InvalidConfig {
                name: "norms",
                message: format!(
                    "norm table has {} entries for {} nodes",
                    norms.len(),
                    self.stats.node_count
                ),
            });
        }
        if !norms.iter().all(|v| v.is_finite() && *v >= 0.0) {
            return Err(EffresError::InvalidConfig {
                name: "norms",
                message: "norm table contains a non-finite or negative entry".to_string(),
            });
        }
        // Lost race / already computed: the resident table wins.
        let _ = self.norms.set(std::sync::Arc::new(norms));
        Ok(())
    }

    /// Access to the underlying approximate inverse (for diagnostics).
    pub fn approximate_inverse(&self) -> &SparseApproximateInverse {
        &self.inverse
    }

    /// The fill-reducing permutation applied before factorization (maps
    /// original node ids to the row/column order of the approximate inverse).
    pub fn permutation(&self) -> &Permutation {
        &self.permutation
    }

    /// Reassembles an estimator from parts produced by a snapshot (see the
    /// `effres-io` crate): the approximate inverse, the fill-reducing
    /// permutation and the recorded build statistics.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::InvalidConfig`] if the permutation length, the
    /// inverse order and `stats.node_count` disagree.
    pub fn from_parts(
        inverse: SparseApproximateInverse,
        permutation: Permutation,
        stats: EstimatorStats,
    ) -> Result<Self, EffresError> {
        if permutation.len() != inverse.order() || stats.node_count != inverse.order() {
            return Err(EffresError::InvalidConfig {
                name: "snapshot",
                message: format!(
                    "inconsistent sizes: inverse order {}, permutation length {}, recorded node count {}",
                    inverse.order(),
                    permutation.len(),
                    stats.node_count
                ),
            });
        }
        Ok(EffectiveResistanceEstimator {
            inverse,
            permutation,
            stats,
            norms: std::sync::OnceLock::new(),
        })
    }

    fn check(&self, node: usize) -> Result<(), EffresError> {
        if node >= self.stats.node_count {
            Err(EffresError::NodeOutOfBounds {
                node,
                node_count: self.stats.node_count,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactEffectiveResistance;
    use crate::stats::relative_errors;
    use effres_graph::generators;

    fn build_pair(
        graph: &Graph,
        config: &EffresConfig,
    ) -> (EffectiveResistanceEstimator, ExactEffectiveResistance) {
        let approx = EffectiveResistanceEstimator::build(graph, config).expect("build");
        let exact =
            ExactEffectiveResistance::build(graph, config.ground_conductance).expect("build");
        (approx, exact)
    }

    #[test]
    fn matches_exact_on_small_mesh() {
        let g = generators::grid_2d(10, 10, 0.5, 2.0, 11).expect("valid");
        let config = EffresConfig::default();
        let (approx, exact) = build_pair(&g, &config);
        let queries: Vec<(usize, usize)> = g.edges().map(|(_, e)| (e.u, e.v)).collect();
        let a = approx.query_many(&queries).expect("in bounds");
        let b = exact.query_many(&queries).expect("in bounds");
        let (avg, max) = relative_errors(&a, &b);
        assert!(avg < 1e-2, "average relative error {avg}");
        assert!(max < 1e-1, "max relative error {max}");
    }

    #[test]
    fn matches_exact_on_social_like_graph() {
        let g = generators::preferential_attachment(300, 3, 0.5, 1.5, 2).expect("valid");
        let config = EffresConfig::default();
        let (approx, exact) = build_pair(&g, &config);
        let queries: Vec<(usize, usize)> = g.edges().map(|(_, e)| (e.u, e.v)).take(200).collect();
        let a = approx.query_many(&queries).expect("in bounds");
        let b = exact.query_many(&queries).expect("in bounds");
        let (avg, max) = relative_errors(&a, &b);
        assert!(avg < 2e-2, "average relative error {avg}");
        assert!(max < 2e-1, "max relative error {max}");
    }

    #[test]
    fn error_scales_roughly_linearly_with_epsilon() {
        // Eq. (26): the relative error is bounded by alpha * epsilon, so
        // shrinking epsilon by 100x should shrink the observed error by a
        // comparable factor (we allow slack because the bound is not tight).
        let g = generators::grid_2d(12, 12, 1.0, 1.0, 3).expect("valid");
        let queries: Vec<(usize, usize)> = g.edges().map(|(_, e)| (e.u, e.v)).collect();
        let exact = ExactEffectiveResistance::build(&g, 1e-6).expect("build");
        let truth = exact.query_many(&queries).expect("in bounds");
        // Use exact factorization (drop tolerance 0) to isolate the epsilon error.
        let loose_cfg = EffresConfig::default()
            .with_drop_tolerance(0.0)
            .with_epsilon(1e-2);
        let tight_cfg = EffresConfig::default()
            .with_drop_tolerance(0.0)
            .with_epsilon(1e-4);
        let loose = EffectiveResistanceEstimator::build(&g, &loose_cfg).expect("build");
        let tight = EffectiveResistanceEstimator::build(&g, &tight_cfg).expect("build");
        let (avg_loose, _) = relative_errors(&loose.query_many(&queries).expect("ok"), &truth);
        let (avg_tight, _) = relative_errors(&tight.query_many(&queries).expect("ok"), &truth);
        assert!(
            avg_tight < avg_loose / 5.0,
            "tight {avg_tight} not much better than loose {avg_loose}"
        );
    }

    #[test]
    fn zero_epsilon_and_zero_drop_is_exact() {
        let g = generators::random_connected(60, 80, 0.5, 2.0, 7).expect("valid");
        let cfg = EffresConfig::default()
            .with_drop_tolerance(0.0)
            .with_epsilon(0.0);
        let (approx, exact) = build_pair(&g, &cfg);
        for &(p, q) in &[(0, 59), (5, 40), (13, 27)] {
            let a = approx.query(p, q).expect("in bounds");
            let b = exact.query(p, q).expect("in bounds");
            assert!((a - b).abs() / b < 1e-9, "({p},{q}): {a} vs {b}");
        }
    }

    #[test]
    fn orderings_give_consistent_results() {
        let g = generators::grid_2d(8, 8, 1.0, 2.0, 5).expect("valid");
        let exact = ExactEffectiveResistance::build(&g, 1e-6).expect("build");
        for ordering in [Ordering::Natural, Ordering::Rcm, Ordering::MinimumDegree] {
            let cfg = EffresConfig::default().with_ordering(ordering);
            let approx = EffectiveResistanceEstimator::build(&g, &cfg).expect("build");
            let a = approx.query(0, 63).expect("in bounds");
            let b = exact.query(0, 63).expect("in bounds");
            assert!((a - b).abs() / b < 0.1, "{ordering:?}: {a} vs {b}");
        }
    }

    #[test]
    fn symmetry_and_identity_of_queries() {
        let g = generators::grid_2d(6, 6, 1.0, 1.0, 0).expect("valid");
        let approx =
            EffectiveResistanceEstimator::build(&g, &EffresConfig::default()).expect("build");
        assert_eq!(approx.query(4, 4).expect("in bounds"), 0.0);
        let a = approx.query(2, 30).expect("in bounds");
        let b = approx.query(30, 2).expect("in bounds");
        assert!((a - b).abs() < 1e-14);
    }

    #[test]
    fn stats_are_populated() {
        let g = generators::grid_2d(12, 12, 1.0, 1.0, 0).expect("valid");
        let approx =
            EffectiveResistanceEstimator::build(&g, &EffresConfig::default()).expect("build");
        let s = approx.stats();
        assert_eq!(s.node_count, 144);
        assert!(s.factor_nnz >= 144);
        assert!(s.inverse_nnz >= 144);
        assert!(s.max_depth > 0);
        assert!(s.inverse_nnz_ratio > 0.0);
    }

    #[test]
    fn out_of_bounds_and_bad_config_rejected() {
        let g = generators::grid_2d(3, 3, 1.0, 1.0, 0).expect("valid");
        let approx =
            EffectiveResistanceEstimator::build(&g, &EffresConfig::default()).expect("build");
        assert!(approx.query(0, 100).is_err());
        assert!(EffectiveResistanceEstimator::build(
            &g,
            &EffresConfig::default().with_epsilon(2.0)
        )
        .is_err());
    }

    #[test]
    fn query_many_validates_the_whole_batch_up_front() {
        let g = generators::grid_2d(4, 4, 1.0, 1.0, 0).expect("valid");
        let approx =
            EffectiveResistanceEstimator::build(&g, &EffresConfig::default()).expect("build");
        // A bad pair deep in the batch fails the whole call...
        let batch = vec![(0, 1), (2, 3), (1, 999), (4, 5)];
        assert!(matches!(
            approx.query_many(&batch),
            Err(EffresError::NodeOutOfBounds { node: 999, .. })
        ));
        // ...while p == q pairs short-circuit to exactly 0.
        let values = approx
            .query_many(&[(7, 7), (0, 15), (3, 3)])
            .expect("valid");
        assert_eq!(values[0], 0.0);
        assert_eq!(values[2], 0.0);
        assert!(values[1] > 0.0);
    }

    #[test]
    fn query_all_edges_rejects_oversized_graphs_up_front() {
        let small = generators::grid_2d(3, 3, 1.0, 1.0, 0).expect("valid");
        let approx =
            EffectiveResistanceEstimator::build(&small, &EffresConfig::default()).expect("build");
        let big = generators::grid_2d(4, 4, 1.0, 1.0, 0).expect("valid");
        assert!(matches!(
            approx.query_all_edges(&big),
            Err(EffresError::NodeOutOfBounds { .. })
        ));
        assert_eq!(
            approx.query_all_edges(&small).expect("valid").len(),
            small.edge_count()
        );
    }

    #[test]
    fn query_with_norms_matches_plain_query() {
        let g = generators::grid_2d(8, 8, 0.5, 2.0, 1).expect("valid");
        let approx =
            EffectiveResistanceEstimator::build(&g, &EffresConfig::default()).expect("build");
        let norms = approx.column_norms_squared();
        for &(p, q) in &[(0, 63), (5, 40), (13, 27), (9, 9)] {
            let a = approx.query(p, q).expect("in bounds");
            let b = approx.query_with_norms(p, q, &norms).expect("in bounds");
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "({p},{q}): {a} vs {b}"
            );
        }
        assert!(approx.query_with_norms(0, 999, &norms).is_err());
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let g = generators::grid_2d(6, 6, 1.0, 1.0, 2).expect("valid");
        let approx =
            EffectiveResistanceEstimator::build(&g, &EffresConfig::default()).expect("build");
        let rebuilt = EffectiveResistanceEstimator::from_parts(
            approx.approximate_inverse().clone(),
            approx.permutation().clone(),
            approx.stats(),
        )
        .expect("consistent parts");
        assert_eq!(
            rebuilt.query(0, 35).expect("in bounds"),
            approx.query(0, 35).expect("in bounds")
        );
        // Mismatched permutation length must be rejected.
        let bad = EffectiveResistanceEstimator::from_parts(
            approx.approximate_inverse().clone(),
            effres_sparse::Permutation::identity(3),
            approx.stats(),
        );
        assert!(matches!(bad, Err(EffresError::InvalidConfig { .. })));
    }

    #[test]
    fn norm_table_is_memoized_and_primable() {
        let g = generators::grid_2d(8, 8, 0.5, 2.0, 3).expect("valid");
        let approx =
            EffectiveResistanceEstimator::build(&g, &EffresConfig::default()).expect("build");
        assert!(approx.cached_column_norms().is_none());
        let computed = approx.column_norms_squared();
        assert_eq!(approx.cached_column_norms(), Some(computed.as_slice()));

        // Priming a fresh estimator with a write-time table short-circuits
        // the arena sweep but must serve the same bits.
        let fresh = EffectiveResistanceEstimator::from_parts(
            approx.approximate_inverse().clone(),
            approx.permutation().clone(),
            approx.stats(),
        )
        .expect("consistent parts");
        fresh
            .prime_column_norms(computed.clone())
            .expect("valid table");
        let primed = fresh.column_norms_squared();
        assert!(computed
            .iter()
            .zip(&primed)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        for &(p, q) in &[(0, 63), (5, 40), (13, 27)] {
            assert_eq!(
                approx
                    .query_with_norms(p, q, &computed)
                    .expect("in bounds")
                    .to_bits(),
                fresh
                    .query_with_norms(p, q, &primed)
                    .expect("in bounds")
                    .to_bits()
            );
        }

        // Hostile tables are rejected.
        assert!(fresh.prime_column_norms(vec![1.0; 3]).is_err());
        let mut bad = computed.clone();
        bad[0] = f64::NAN;
        assert!(approx.prime_column_norms(bad).is_err());
        // An already-cached table is left untouched by a later prime.
        fresh
            .prime_column_norms(vec![0.0; fresh.node_count()])
            .expect("valid shape");
        assert_eq!(fresh.cached_column_norms(), Some(primed.as_slice()));
    }

    #[test]
    fn disconnected_graphs_are_supported() {
        // Two disjoint squares; queries within a component behave normally.
        let mut g = Graph::new(8);
        for &(u, v) in &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 4),
        ] {
            g.add_edge(u, v, 1.0).expect("valid");
        }
        let approx =
            EffectiveResistanceEstimator::build(&g, &EffresConfig::default()).expect("build");
        let exact = ExactEffectiveResistance::build(&g, 1e-6).expect("build");
        let a = approx.query(0, 2).expect("in bounds");
        let b = exact.query(0, 2).expect("in bounds");
        assert!((a - b).abs() / b < 0.05);
    }
}
