//! Exact effective resistances through a full sparse Cholesky factorization.
//!
//! `R(p, q) = (e_p − e_q)ᵀ L_G⁻¹ (e_p − e_q)` where `L_G` is the grounded
//! Laplacian (Eq. (3) of the paper). Each query requires one sparse solve;
//! this is the "Acc. Eff. Res." reference of the paper's experiments and the
//! ground truth for the error columns of Table I.

use crate::config::Ordering;
use crate::error::EffresError;
use effres_graph::laplacian::grounded_laplacian;
use effres_graph::Graph;
use effres_sparse::cholesky::CholeskyFactor;
use effres_sparse::{amd, rcm, CscMatrix, Permutation};

/// Exact effective-resistance oracle backed by a full sparse Cholesky
/// factorization of the grounded Laplacian.
#[derive(Debug, Clone)]
pub struct ExactEffectiveResistance {
    factorization: CholeskyFactor,
    node_count: usize,
}

impl ExactEffectiveResistance {
    /// Builds the oracle for a weighted graph, grounding each connected
    /// component with `ground_conductance` and ordering with minimum degree.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::Sparse`] if the factorization fails (which for
    /// a valid grounded Laplacian indicates numerical breakdown).
    pub fn build(graph: &Graph, ground_conductance: f64) -> Result<Self, EffresError> {
        let lap = grounded_laplacian(graph, ground_conductance);
        Self::build_from_matrix(&lap, Ordering::MinimumDegree)
    }

    /// Builds the oracle from an already-grounded SDD matrix.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::Sparse`] on factorization failure.
    pub fn build_from_matrix(matrix: &CscMatrix, ordering: Ordering) -> Result<Self, EffresError> {
        let perm = match ordering {
            Ordering::Natural => Permutation::identity(matrix.ncols()),
            Ordering::Rcm => rcm::rcm(matrix)?,
            Ordering::MinimumDegree => amd::amd(matrix)?,
        };
        let factorization = CholeskyFactor::factor_permuted(matrix, perm)?;
        Ok(ExactEffectiveResistance {
            node_count: matrix.ncols(),
            factorization,
        })
    }

    /// Number of nodes the oracle covers.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of nonzeros in the Cholesky factor.
    pub fn factor_nnz(&self) -> usize {
        self.factorization.nnz()
    }

    /// Exact effective resistance between `p` and `q`.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] for invalid node indices.
    pub fn query(&self, p: usize, q: usize) -> Result<f64, EffresError> {
        self.check(p)?;
        self.check(q)?;
        if p == q {
            return Ok(0.0);
        }
        let mut rhs = vec![0.0; self.node_count];
        rhs[p] = 1.0;
        rhs[q] = -1.0;
        let x = self.factorization.solve(&rhs);
        Ok(x[p] - x[q])
    }

    /// Exact effective resistances for a batch of queries.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by [`ExactEffectiveResistance::query`].
    pub fn query_many(&self, queries: &[(usize, usize)]) -> Result<Vec<f64>, EffresError> {
        queries.iter().map(|&(p, q)| self.query(p, q)).collect()
    }

    /// Exact effective resistances of every edge of `graph`, in edge-id order.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] if the graph has more nodes
    /// than the oracle.
    pub fn query_all_edges(&self, graph: &Graph) -> Result<Vec<f64>, EffresError> {
        graph.edges().map(|(_, e)| self.query(e.u, e.v)).collect()
    }

    fn check(&self, node: usize) -> Result<(), EffresError> {
        if node >= self.node_count {
            Err(EffresError::NodeOutOfBounds {
                node,
                node_count: self.node_count,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres_graph::generators;

    #[test]
    fn series_resistors_add() {
        // Path 0-1-2 with conductances 2 and 4: R(0,2) = 1/2 + 1/4 = 0.75.
        let g = Graph::from_edges(3, vec![(0, 1, 2.0), (1, 2, 4.0)]).expect("valid");
        let exact = ExactEffectiveResistance::build(&g, 1e-9).expect("spd");
        let r = exact.query(0, 2).expect("in bounds");
        assert!((r - 0.75).abs() < 1e-6);
        assert_eq!(exact.query(1, 1).expect("in bounds"), 0.0);
    }

    #[test]
    fn parallel_resistors_combine() {
        // Two parallel unit resistors between 0 and 1: R = 0.5.
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0).expect("valid");
        g.add_edge(0, 1, 1.0).expect("valid");
        let exact = ExactEffectiveResistance::build(&g, 1e-9).expect("spd");
        assert!((exact.query(0, 1).expect("in bounds") - 0.5).abs() < 1e-6);
    }

    #[test]
    fn symmetry_of_queries() {
        let g = generators::grid_2d(5, 5, 0.5, 2.0, 3).expect("valid");
        let exact = ExactEffectiveResistance::build(&g, 1e-6).expect("spd");
        let a = exact.query(0, 24).expect("in bounds");
        let b = exact.query(24, 0).expect("in bounds");
        assert!((a - b).abs() < 1e-10);
        assert!(a > 0.0);
    }

    #[test]
    fn ordering_does_not_change_results() {
        let g = generators::grid_2d(4, 4, 1.0, 1.0, 0).expect("valid");
        let lap = grounded_laplacian(&g, 1e-6);
        let nat =
            ExactEffectiveResistance::build_from_matrix(&lap, Ordering::Natural).expect("spd");
        let rcm = ExactEffectiveResistance::build_from_matrix(&lap, Ordering::Rcm).expect("spd");
        let amd = ExactEffectiveResistance::build_from_matrix(&lap, Ordering::MinimumDegree)
            .expect("spd");
        for &(p, q) in &[(0, 15), (3, 12), (5, 10)] {
            let r0 = nat.query(p, q).expect("in bounds");
            let r1 = rcm.query(p, q).expect("in bounds");
            let r2 = amd.query(p, q).expect("in bounds");
            assert!((r0 - r1).abs() < 1e-9);
            assert!((r0 - r2).abs() < 1e-9);
        }
    }

    #[test]
    fn effective_resistance_bounded_by_shortest_path_resistance() {
        // Rayleigh monotonicity: adding parallel paths can only lower the
        // resistance, so R(p,q) <= shortest-path resistance.
        let g = generators::grid_2d(6, 6, 1.0, 1.0, 1).expect("valid");
        let exact = ExactEffectiveResistance::build(&g, 1e-8).expect("spd");
        let d = effres_graph::traversal::resistance_distances(&g, 0);
        for q in [5, 17, 35] {
            let r = exact.query(0, q).expect("in bounds");
            assert!(r <= d[q] + 1e-9, "R {r} > path {p}", p = d[q]);
        }
    }

    #[test]
    fn query_all_edges_matches_individual_queries() {
        let g = generators::random_connected(30, 30, 0.5, 1.5, 5).expect("valid");
        let exact = ExactEffectiveResistance::build(&g, 1e-6).expect("spd");
        let all = exact.query_all_edges(&g).expect("in bounds");
        assert_eq!(all.len(), g.edge_count());
        for (id, e) in g.edges().take(5) {
            assert!((all[id] - exact.query(e.u, e.v).expect("in bounds")).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_bounds_rejected() {
        let g = Graph::from_edges(2, vec![(0, 1, 1.0)]).expect("valid");
        let exact = ExactEffectiveResistance::build(&g, 1e-6).expect("spd");
        assert!(exact.query(0, 5).is_err());
        assert!(exact.query_many(&[(0, 1), (9, 0)]).is_err());
    }
}
