//! Error type of the effective-resistance algorithms.

use effres_graph::GraphError;
use effres_sparse::SparseError;
use std::fmt;

/// Errors produced by the effective-resistance estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum EffresError {
    /// A failure in the underlying sparse linear algebra.
    Sparse(SparseError),
    /// A failure in graph construction or a graph algorithm.
    Graph(GraphError),
    /// A query referenced a node that does not exist.
    NodeOutOfBounds {
        /// The offending node index.
        node: usize,
        /// Number of nodes of the graph the estimator was built for.
        node_count: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the parameter.
        name: &'static str,
        /// Constraint description.
        message: String,
    },
    /// The problem exceeds the `u32` index space of the flat CSC arena.
    ///
    /// The arena stores row indices as `u32` (half the memory traffic of
    /// `usize` on 64-bit hosts), which caps the supported order at
    /// `u32::MAX` rows/columns. Building or loading anything larger is a
    /// typed error — never a silent index truncation.
    IndexOverflow {
        /// The requested number of rows/columns.
        node_count: usize,
    },
    /// A column store backend failed to produce a column.
    ///
    /// Resident (in-memory) stores never emit this; it is the typed error of
    /// out-of-core backends — the backing file erred, or a page failed
    /// validation while being decoded (corrupt row indices, non-finite
    /// values). The serving layer propagates it instead of panicking a
    /// worker thread.
    StoreFailure {
        /// Column whose fetch failed.
        column: usize,
        /// Description of the failure.
        message: String,
    },
    /// The serving layer shed the request instead of queueing it.
    ///
    /// Overload is a *policy* outcome, not a fault: the admission queue was
    /// at its depth bound, or the request waited out its lease timeout
    /// without capacity freeing. Callers should back off and retry; nothing
    /// about the request itself was wrong.
    Busy {
        /// Why the request was shed.
        reason: BusyReason,
    },
    /// The request was cancelled before it finished: its deadline passed,
    /// its client went away, or admission judged the deadline unmeetable
    /// up front. Distinct from [`EffresError::Busy`] — retrying the same
    /// request with the same deadline would meet the same fate; the caller
    /// should relax the deadline (or give up), not just back off.
    DeadlineExceeded {
        /// Why the request was cancelled.
        reason: CancelReason,
    },
}

/// Why an [`EffresError::DeadlineExceeded`] request was cancelled (see
/// `CancelToken` in `effres-service`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The wall-clock deadline passed while the request waited or ran.
    DeadlineExpired,
    /// The client disconnected while the request was being computed.
    Disconnected,
    /// Rejected before queueing: the estimated service time already
    /// exceeded the request's deadline, so running it could only waste
    /// capacity that live requests need.
    Unmeetable,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::DeadlineExpired => write!(f, "deadline expired"),
            CancelReason::Disconnected => write!(f, "client disconnected"),
            CancelReason::Unmeetable => {
                write!(f, "deadline unmeetable at admission")
            }
        }
    }
}

/// Why an [`EffresError::Busy`] request was shed (see
/// `AdmissionLedger::lease_within` in `effres-service`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// The admission queue was already at its configured depth bound.
    QueueFull,
    /// The request queued but timed out before capacity was granted.
    LeaseTimeout,
}

impl fmt::Display for BusyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusyReason::QueueFull => write!(f, "admission queue full"),
            BusyReason::LeaseTimeout => write!(f, "lease timed out"),
        }
    }
}

impl fmt::Display for EffresError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EffresError::Sparse(e) => write!(f, "sparse linear algebra error: {e}"),
            EffresError::Graph(e) => write!(f, "graph error: {e}"),
            EffresError::NodeOutOfBounds { node, node_count } => {
                write!(f, "query node {node} out of bounds for {node_count} nodes")
            }
            EffresError::InvalidConfig { name, message } => {
                write!(f, "invalid configuration `{name}`: {message}")
            }
            EffresError::IndexOverflow { node_count } => {
                write!(
                    f,
                    "{node_count} rows/columns exceed the u32 index space of the CSC arena \
                     (max {})",
                    u32::MAX
                )
            }
            EffresError::StoreFailure { column, message } => {
                write!(
                    f,
                    "column store failed to produce column {column}: {message}"
                )
            }
            EffresError::Busy { reason } => {
                write!(f, "service busy ({reason}); back off and retry")
            }
            EffresError::DeadlineExceeded { reason } => {
                write!(f, "request cancelled ({reason}); remaining work abandoned")
            }
        }
    }
}

impl std::error::Error for EffresError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EffresError::Sparse(e) => Some(e),
            EffresError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for EffresError {
    fn from(e: SparseError) -> Self {
        EffresError::Sparse(e)
    }
}

impl From<GraphError> for EffresError {
    fn from(e: GraphError) -> Self {
        EffresError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let s: EffresError = SparseError::NotSquare { nrows: 1, ncols: 2 }.into();
        assert!(s.to_string().contains("sparse"));
        let g: EffresError = GraphError::SelfLoop { node: 3 }.into();
        assert!(g.to_string().contains("graph"));
        let q = EffresError::NodeOutOfBounds {
            node: 9,
            node_count: 4,
        };
        assert!(q.to_string().contains("9"));
    }

    #[test]
    fn source_chains_are_preserved() {
        use std::error::Error;
        let s: EffresError = SparseError::NotSquare { nrows: 1, ncols: 2 }.into();
        assert!(s.source().is_some());
        let q = EffresError::NodeOutOfBounds {
            node: 0,
            node_count: 0,
        };
        assert!(q.source().is_none());
    }
}
