//! Configuration of the effective-resistance estimator.

use crate::approx_inverse::ValueMode;
use crate::error::EffresError;
use effres_sparse::WorkerPool;

/// Fill-reducing ordering applied before factoring the grounded Laplacian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Natural ordering (no permutation).
    Natural,
    /// Reverse Cuthill–McKee: cheap, effective on mesh-like graphs.
    #[default]
    Rcm,
    /// Minimum degree: better fill reduction on irregular graphs, slower to
    /// compute.
    MinimumDegree,
}

/// Knobs of the approximate-inverse construction (Alg. 2), independent of
/// the numerical parameters: how the backward column sweep is executed.
///
/// The parallel build partitions each level of the factor's
/// [`effres_sparse::LevelSchedule`] across the workers of a persistent
/// [`effres_sparse::WorkerPool`] (a shared one when configured, a transient
/// one otherwise). It is
/// **bit-identical** to the sequential build — every column is assembled
/// from the same already-pruned columns with the same floating-point
/// operation order — so these options trade wall-clock time only, never
/// results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Worker threads for the level-scheduled build; `0` means one per
    /// available core, `1` forces the sequential path.
    pub threads: usize,
    /// Factors with fewer columns than this run sequentially regardless of
    /// `threads`: spawning and synchronizing workers costs more than the
    /// sweep itself on small problems.
    pub parallel_threshold: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            threads: 0,
            parallel_threshold: 1 << 12,
        }
    }
}

impl BuildOptions {
    /// Options forcing the sequential reference path.
    pub fn sequential() -> Self {
        BuildOptions {
            threads: 1,
            ..BuildOptions::default()
        }
    }

    /// Sets the worker-thread count (`0` = one per core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Configuration of [`crate::EffectiveResistanceEstimator`] (Alg. 3).
///
/// The defaults reproduce the parameters of the paper's experiments:
/// incomplete-Cholesky drop tolerance `1e-3` and pruning threshold
/// `epsilon = 1e-3`.
#[derive(Debug, Clone, PartialEq)]
pub struct EffresConfig {
    /// Drop tolerance of the incomplete Cholesky factorization (Section III-C).
    pub drop_tolerance: f64,
    /// Column pruning threshold `ε` of Alg. 2: each approximate column
    /// satisfies `‖z̃_j − z*_j‖₁ ≤ ε · ‖z*_j‖₁`.
    pub epsilon: f64,
    /// Conductance of the implicit ground edge added to one node per
    /// connected component (Section II-A).
    ///
    /// Because the net current of every effective-resistance query is zero,
    /// the computed resistance is independent of this value; choosing a
    /// conductance comparable to the edge weights (the default of `1.0`)
    /// keeps the columns of `L⁻¹` well scaled, which is what makes the
    /// `ε`-pruning of Alg. 2 accurate.
    pub ground_conductance: f64,
    /// Fill-reducing ordering.
    pub ordering: Ordering,
    /// Columns with at most `max(dense_column_threshold, log n)` nonzeros are
    /// kept exactly (step 3 of Alg. 2). The paper uses `log n`; the floor lets
    /// tiny graphs behave sensibly.
    pub dense_column_threshold: usize,
    /// Execution options of the approximate-inverse build (thread count and
    /// the sequential-fallback threshold). Results are bit-identical across
    /// all settings.
    pub build: BuildOptions,
    /// A persistent [`WorkerPool`] for the level-scheduled build. `None`
    /// (the default) spawns a transient pool per parallel build; a
    /// build-then-serve deployment sets a shared pool here (and on the query
    /// engine's options) so both stages reuse one set of workers instead of
    /// churning threads. Two configs compare equal on this field iff they
    /// share the *same* pool. Results are bit-identical either way.
    pub worker_pool: Option<WorkerPool>,
    /// Decoded-page budget of a *paged* (out-of-core) column store, in
    /// pages, when the deployment serves straight from a v2 snapshot file
    /// instead of a resident arena (`effres_io::PagedColumnStore`,
    /// `effres-cli --paged`). Resident serving ignores it. Carried here so a
    /// build-then-serve deployment configures both stages from one config;
    /// answers are bit-identical for every cache size — the knob trades
    /// disk reads only.
    pub page_cache_pages: usize,
    /// Width of the stored arena values (see
    /// [`ValueMode`]). The default `F64` is bit-identical
    /// to every release so far; `F32` halves the value stream the query
    /// kernels read (the estimator narrows the arena after the f64 build,
    /// recording the worst relative rounding error in
    /// [`crate::SparseApproximateInverse::narrowing_error`]). Snapshots
    /// stay f64-canonical regardless.
    pub value_mode: ValueMode,
}

impl Default for EffresConfig {
    fn default() -> Self {
        EffresConfig {
            drop_tolerance: 1e-3,
            epsilon: 1e-3,
            ground_conductance: 1.0,
            ordering: Ordering::default(),
            dense_column_threshold: 4,
            build: BuildOptions::default(),
            worker_pool: None,
            page_cache_pages: DEFAULT_PAGE_CACHE_PAGES,
            value_mode: ValueMode::default(),
        }
    }
}

/// Default decoded-page budget of a paged column store (see
/// [`EffresConfig::page_cache_pages`]): with the default page geometry of 64
/// columns per page this keeps the hot ~65k columns resident.
pub const DEFAULT_PAGE_CACHE_PAGES: usize = 1024;

impl EffresConfig {
    /// Creates the default configuration (the paper's parameters).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pruning threshold `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the incomplete-Cholesky drop tolerance.
    pub fn with_drop_tolerance(mut self, drop_tolerance: f64) -> Self {
        self.drop_tolerance = drop_tolerance;
        self
    }

    /// Sets the fill-reducing ordering.
    pub fn with_ordering(mut self, ordering: Ordering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets the ground conductance.
    pub fn with_ground_conductance(mut self, ground_conductance: f64) -> Self {
        self.ground_conductance = ground_conductance;
        self
    }

    /// Sets the approximate-inverse build options.
    pub fn with_build_options(mut self, build: BuildOptions) -> Self {
        self.build = build;
        self
    }

    /// Sets the worker-thread count of the approximate-inverse build
    /// (`0` = one per core, `1` = sequential).
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.build.threads = threads;
        self
    }

    /// Shares a persistent [`WorkerPool`] with the build (see
    /// [`EffresConfig::worker_pool`]).
    pub fn with_worker_pool(mut self, pool: WorkerPool) -> Self {
        self.worker_pool = Some(pool);
        self
    }

    /// Sets the decoded-page budget of a paged column store (see
    /// [`EffresConfig::page_cache_pages`]). Clamped to at least one page at
    /// the store, never here.
    pub fn with_page_cache_pages(mut self, pages: usize) -> Self {
        self.page_cache_pages = pages;
        self
    }

    /// Sets the stored value width (see [`EffresConfig::value_mode`]).
    pub fn with_value_mode(mut self, value_mode: ValueMode) -> Self {
        self.value_mode = value_mode;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::InvalidConfig`] when a parameter is out of range.
    pub fn validate(&self) -> Result<(), EffresError> {
        if !(self.drop_tolerance >= 0.0) || !self.drop_tolerance.is_finite() {
            return Err(EffresError::InvalidConfig {
                name: "drop_tolerance",
                message: "must be finite and nonnegative".to_string(),
            });
        }
        if !(self.epsilon >= 0.0) || !(self.epsilon < 1.0) {
            return Err(EffresError::InvalidConfig {
                name: "epsilon",
                message: "must lie in [0, 1)".to_string(),
            });
        }
        if !(self.ground_conductance > 0.0) || !self.ground_conductance.is_finite() {
            return Err(EffresError::InvalidConfig {
                name: "ground_conductance",
                message: "must be positive and finite".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = EffresConfig::default();
        assert_eq!(c.drop_tolerance, 1e-3);
        assert_eq!(c.epsilon, 1e-3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods_chain() {
        let c = EffresConfig::new()
            .with_epsilon(1e-2)
            .with_drop_tolerance(1e-4)
            .with_ordering(Ordering::MinimumDegree)
            .with_ground_conductance(1e-3)
            .with_build_threads(3);
        assert_eq!(c.epsilon, 1e-2);
        assert_eq!(c.drop_tolerance, 1e-4);
        assert_eq!(c.ordering, Ordering::MinimumDegree);
        assert_eq!(c.ground_conductance, 1e-3);
        assert_eq!(c.build.threads, 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn build_options_defaults_and_builders() {
        let d = BuildOptions::default();
        assert_eq!(d.threads, 0, "default resolves to one thread per core");
        assert!(d.parallel_threshold > 0);
        assert_eq!(BuildOptions::sequential().threads, 1);
        assert_eq!(BuildOptions::default().with_threads(8).threads, 8);
        let c = EffresConfig::new().with_build_options(BuildOptions::sequential());
        assert_eq!(c.build, BuildOptions::sequential());
    }

    #[test]
    fn worker_pool_is_shared_not_copied() {
        let pool = WorkerPool::new(2);
        let c = EffresConfig::new().with_worker_pool(pool.clone());
        assert_eq!(c.worker_pool.as_ref(), Some(&pool));
        // Clones of the config refer to the same pool.
        let d = c.clone();
        assert_eq!(c, d);
        // A different pool makes configs unequal even with equal scalars.
        let e = EffresConfig::new().with_worker_pool(WorkerPool::new(2));
        assert_ne!(c, e);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert!(EffresConfig::new().with_epsilon(1.5).validate().is_err());
        assert!(EffresConfig::new().with_epsilon(-0.1).validate().is_err());
        assert!(EffresConfig::new()
            .with_drop_tolerance(f64::NAN)
            .validate()
            .is_err());
        assert!(EffresConfig::new()
            .with_ground_conductance(0.0)
            .validate()
            .is_err());
    }
}
