//! Configuration of the effective-resistance estimator.

use crate::error::EffresError;

/// Fill-reducing ordering applied before factoring the grounded Laplacian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Natural ordering (no permutation).
    Natural,
    /// Reverse Cuthill–McKee: cheap, effective on mesh-like graphs.
    #[default]
    Rcm,
    /// Minimum degree: better fill reduction on irregular graphs, slower to
    /// compute.
    MinimumDegree,
}

/// Configuration of [`crate::EffectiveResistanceEstimator`] (Alg. 3).
///
/// The defaults reproduce the parameters of the paper's experiments:
/// incomplete-Cholesky drop tolerance `1e-3` and pruning threshold
/// `epsilon = 1e-3`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffresConfig {
    /// Drop tolerance of the incomplete Cholesky factorization (Section III-C).
    pub drop_tolerance: f64,
    /// Column pruning threshold `ε` of Alg. 2: each approximate column
    /// satisfies `‖z̃_j − z*_j‖₁ ≤ ε · ‖z*_j‖₁`.
    pub epsilon: f64,
    /// Conductance of the implicit ground edge added to one node per
    /// connected component (Section II-A).
    ///
    /// Because the net current of every effective-resistance query is zero,
    /// the computed resistance is independent of this value; choosing a
    /// conductance comparable to the edge weights (the default of `1.0`)
    /// keeps the columns of `L⁻¹` well scaled, which is what makes the
    /// `ε`-pruning of Alg. 2 accurate.
    pub ground_conductance: f64,
    /// Fill-reducing ordering.
    pub ordering: Ordering,
    /// Columns with at most `max(dense_column_threshold, log n)` nonzeros are
    /// kept exactly (step 3 of Alg. 2). The paper uses `log n`; the floor lets
    /// tiny graphs behave sensibly.
    pub dense_column_threshold: usize,
}

impl Default for EffresConfig {
    fn default() -> Self {
        EffresConfig {
            drop_tolerance: 1e-3,
            epsilon: 1e-3,
            ground_conductance: 1.0,
            ordering: Ordering::default(),
            dense_column_threshold: 4,
        }
    }
}

impl EffresConfig {
    /// Creates the default configuration (the paper's parameters).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pruning threshold `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the incomplete-Cholesky drop tolerance.
    pub fn with_drop_tolerance(mut self, drop_tolerance: f64) -> Self {
        self.drop_tolerance = drop_tolerance;
        self
    }

    /// Sets the fill-reducing ordering.
    pub fn with_ordering(mut self, ordering: Ordering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets the ground conductance.
    pub fn with_ground_conductance(mut self, ground_conductance: f64) -> Self {
        self.ground_conductance = ground_conductance;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::InvalidConfig`] when a parameter is out of range.
    pub fn validate(&self) -> Result<(), EffresError> {
        if !(self.drop_tolerance >= 0.0) || !self.drop_tolerance.is_finite() {
            return Err(EffresError::InvalidConfig {
                name: "drop_tolerance",
                message: "must be finite and nonnegative".to_string(),
            });
        }
        if !(self.epsilon >= 0.0) || !(self.epsilon < 1.0) {
            return Err(EffresError::InvalidConfig {
                name: "epsilon",
                message: "must lie in [0, 1)".to_string(),
            });
        }
        if !(self.ground_conductance > 0.0) || !self.ground_conductance.is_finite() {
            return Err(EffresError::InvalidConfig {
                name: "ground_conductance",
                message: "must be positive and finite".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = EffresConfig::default();
        assert_eq!(c.drop_tolerance, 1e-3);
        assert_eq!(c.epsilon, 1e-3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods_chain() {
        let c = EffresConfig::new()
            .with_epsilon(1e-2)
            .with_drop_tolerance(1e-4)
            .with_ordering(Ordering::MinimumDegree)
            .with_ground_conductance(1e-3);
        assert_eq!(c.epsilon, 1e-2);
        assert_eq!(c.drop_tolerance, 1e-4);
        assert_eq!(c.ordering, Ordering::MinimumDegree);
        assert_eq!(c.ground_conductance, 1e-3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert!(EffresConfig::new().with_epsilon(1.5).validate().is_err());
        assert!(EffresConfig::new().with_epsilon(-0.1).validate().is_err());
        assert!(EffresConfig::new()
            .with_drop_tolerance(f64::NAN)
            .validate()
            .is_err());
        assert!(EffresConfig::new()
            .with_ground_conductance(0.0)
            .validate()
            .is_err());
    }
}
