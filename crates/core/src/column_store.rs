//! The `ColumnStore` abstraction: where the columns of `Z̃` live.
//!
//! The paper's query kernel needs exactly one capability from its data
//! structure — *give me column `j` of the approximate inverse as sorted
//! parallel `u32`/`f64` slices* — yet until this module existed the kernels
//! were welded to the in-memory flat CSC arena of
//! [`SparseApproximateInverse`]. [`ColumnStore`] is that capability as a
//! trait, and the effective-resistance kernels ([`column_dot`],
//! [`column_norms_squared`], [`column_distance_squared`],
//! [`column_distance_squared_with_norms`]) are generic over it, so the same
//! code serves:
//!
//! * the **resident** backend — [`SparseApproximateInverse`]'s arena, where a
//!   column is two slice borrows and access can never fail; and
//! * **out-of-core** backends — `effres_io::PagedColumnStore` decodes
//!   columns on demand from a v2 snapshot file behind a page cache, where a
//!   fetch can fail (I/O error, corruption discovered while decoding a page)
//!   and borrowed access must be scoped to a closure because the page a view
//!   points into is owned by the cache, not the caller.
//!
//! Those two constraints shape the trait: column access is
//! [`ColumnStore::with_column`] — *call this closure with a borrowed
//! [`ColumnView`]* — and it returns a `Result` so disk-backed stores can
//! surface a typed [`EffresError::StoreFailure`] instead of panicking the
//! serving thread. For the in-memory store the closure compiles down to the
//! direct slice access it always was.

use crate::approx_inverse::{ColumnView, SparseApproximateInverse};
use crate::error::EffresError;
use effres_sparse::vecops;

/// A source of the columns of the approximate inverse `Z̃`.
///
/// Implementations must present each column `j` as strictly increasing `u32`
/// indices with parallel `f64` values, supported on `j..order()` (the
/// lower-triangular invariant the suffix-restricted kernels rely on — see
/// [`column_dot`]). Columns must be stable: two fetches of the same column
/// observe the same bits, so every kernel is deterministic regardless of
/// caching or paging underneath.
///
/// Access is scoped: [`ColumnStore::with_column`] lends the view to a
/// closure instead of returning it, so backends whose column storage is
/// transient (a cache page, a decode buffer) can hand out borrows without
/// copying. Fetches are fallible for the same reason — an out-of-core
/// backend can hit I/O errors or detect corruption lazily; in-memory
/// backends simply never return `Err`.
pub trait ColumnStore {
    /// Number of columns (the order of the factor).
    fn order(&self) -> usize;

    /// Total number of stored nonzeros across all columns.
    fn nnz(&self) -> usize;

    /// Calls `f` with a borrowed view of column `j` and returns its result.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::StoreFailure`] when the backend cannot produce
    /// the column (I/O failure, page-validation failure). In-memory stores
    /// are infallible.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.order()` — like slice indexing, an out-of-bounds
    /// column is a caller bug, not a store failure.
    fn with_column<R>(
        &self,
        j: usize,
        f: impl FnOnce(ColumnView<'_>) -> R,
    ) -> Result<R, EffresError>;

    /// Squared Euclidean norm `‖z̃_j‖²` of column `j`, summed in index order.
    ///
    /// The default fetches the column and sums `v·v` front to back; backends
    /// that decode columns in batches (pages) may serve a cached value, but
    /// it must be **bit-identical** to the default — the norm table is part
    /// of the query result, and resident and paged backends are pinned to
    /// agree bitwise.
    ///
    /// # Errors
    ///
    /// See [`ColumnStore::with_column`].
    fn column_norm_squared(&self, j: usize) -> Result<f64, EffresError> {
        self.with_column(j, |column| column.norm2_squared())
    }
}

impl ColumnStore for SparseApproximateInverse {
    fn order(&self) -> usize {
        SparseApproximateInverse::order(self)
    }

    fn nnz(&self) -> usize {
        SparseApproximateInverse::nnz(self)
    }

    fn with_column<R>(
        &self,
        j: usize,
        f: impl FnOnce(ColumnView<'_>) -> R,
    ) -> Result<R, EffresError> {
        Ok(f(self.column(j)))
    }
}

/// Stores behind shared references are stores (lets kernels and engines take
/// `&S` or smart pointers interchangeably).
impl<S: ColumnStore + ?Sized> ColumnStore for &S {
    fn order(&self) -> usize {
        (**self).order()
    }

    fn nnz(&self) -> usize {
        (**self).nnz()
    }

    fn with_column<R>(
        &self,
        j: usize,
        f: impl FnOnce(ColumnView<'_>) -> R,
    ) -> Result<R, EffresError> {
        (**self).with_column(j, f)
    }

    fn column_norm_squared(&self, j: usize) -> Result<f64, EffresError> {
        (**self).column_norm_squared(j)
    }
}

/// Inner product `⟨z̃_p, z̃_q⟩` of two columns of a store.
///
/// Columns of the inverse of a lower-triangular factor are themselves
/// lower-triangular — column `j` is supported on indices `≥ j` — so the
/// intersection of columns `p` and `q` lies entirely in `max(p, q)..n`. The
/// merge therefore starts at that bound (found by binary search), which
/// skips most of the longer column and is what makes the norm-table query
/// kernel of [`column_distance_squared_with_norms`] cheaper than the full
/// union merge of [`column_distance_squared`].
///
/// # Errors
///
/// Propagates the store's fetch errors (see [`ColumnStore::with_column`]).
///
/// # Panics
///
/// Panics if either index is out of bounds.
pub fn column_dot<S: ColumnStore + ?Sized>(
    store: &S,
    p: usize,
    q: usize,
) -> Result<f64, EffresError> {
    let bound = p.max(q) as u32;
    store.with_column(p, |a| {
        store.with_column(q, |b| suffix_dot_views(a, b, bound))
    })?
}

/// The suffix-restricted two-pointer merge shared by [`column_dot`]'s
/// nested-fetch path (where both views are alive at once).
fn suffix_dot_views(a: ColumnView<'_>, b: ColumnView<'_>, bound: u32) -> f64 {
    let (ai, av) = (a.indices(), a.values());
    let (bi, bv) = (b.indices(), b.values());
    let mut i = ai.partition_point(|&row| row < bound);
    let mut j = bi.partition_point(|&row| row < bound);
    let mut sum = 0.0;
    while i < ai.len() && j < bi.len() {
        match ai[i].cmp(&bi[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                sum += av[i] * bv[j];
                i += 1;
                j += 1;
            }
        }
    }
    sum
}

/// Squared Euclidean distance between two columns — the effective-resistance
/// kernel `‖z̃_p − z̃_q‖²` of Eq. (22), as a full union merge (no norm table
/// needed).
///
/// # Errors
///
/// Propagates the store's fetch errors.
///
/// # Panics
///
/// Panics if either index is out of bounds.
pub fn column_distance_squared<S: ColumnStore + ?Sized>(
    store: &S,
    p: usize,
    q: usize,
) -> Result<f64, EffresError> {
    store.with_column(p, |a| {
        store.with_column(q, |b| {
            vecops::sparse_distance_squared(a.indices(), a.values(), b.indices(), b.values())
        })
    })?
}

/// The effective-resistance kernel evaluated with precomputed column norms
/// (see [`column_norms_squared`]): one suffix-restricted sparse dot product
/// instead of a full two-column merge.
///
/// # Errors
///
/// Propagates the store's fetch errors.
///
/// # Panics
///
/// Panics if either index is out of bounds or `norms_squared` is shorter
/// than the store's order.
pub fn column_distance_squared_with_norms<S: ColumnStore + ?Sized>(
    store: &S,
    p: usize,
    q: usize,
    norms_squared: &[f64],
) -> Result<f64, EffresError> {
    let dot = column_dot(store, p, q)?;
    // Clamp: cancellation can produce a tiny negative value when the columns
    // are nearly identical, and resistances are nonnegative.
    Ok((norms_squared[p] + norms_squared[q] - 2.0 * dot).max(0.0))
}

/// Batched form of the effective-resistance kernel: answers every (permuted)
/// pair of `pairs` in order, using the norm table when one is provided and
/// per-column norms off the store otherwise (bit-identical by the
/// [`ColumnStore::column_norm_squared`] contract).
///
/// This is the store-generic entry point batch schedulers build on: callers
/// that reorder queries for locality (the `effres-service` paged scheduler)
/// evaluate each pair through exactly this arithmetic, so any evaluation
/// order produces the same bits as this in-order reference.
///
/// # Errors
///
/// Propagates the store's fetch errors; on error some prefix of the batch
/// may have been evaluated but nothing is returned.
///
/// # Panics
///
/// Panics if any index is out of bounds or `norms_squared` is `Some` but
/// shorter than the store's order.
pub fn column_distances_squared_batch<S: ColumnStore + ?Sized>(
    store: &S,
    pairs: &[(usize, usize)],
    norms_squared: Option<&[f64]>,
) -> Result<Vec<f64>, EffresError> {
    pairs
        .iter()
        .map(|&(p, q)| {
            if p == q {
                return Ok(0.0);
            }
            let dot = column_dot(store, p, q)?;
            let (np, nq) = match norms_squared {
                Some(table) => (table[p], table[q]),
                None => (store.column_norm_squared(p)?, store.column_norm_squared(q)?),
            };
            // Same clamp as the scalar kernel: cancellation can dip below 0.
            Ok((np + nq - 2.0 * dot).max(0.0))
        })
        .collect()
}

/// Squared Euclidean norms `‖z̃_j‖²` of every column, in column order.
///
/// Query services over resident stores precompute this once so a query
/// reduces to one sparse dot product; out-of-core services skip the table
/// (computing it would stream the whole file at boot) and use
/// [`ColumnStore::column_norm_squared`] per query instead — the two are
/// bit-identical by contract.
///
/// # Errors
///
/// Propagates the store's fetch errors.
pub fn column_norms_squared<S: ColumnStore + ?Sized>(store: &S) -> Result<Vec<f64>, EffresError> {
    (0..store.order())
        .map(|j| store.column_norm_squared(j))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres_sparse::cholesky::CholeskyFactor;
    use effres_sparse::TripletMatrix;

    fn sample_inverse() -> SparseApproximateInverse {
        let rows = 6;
        let cols = 6;
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_laplacian_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    t.add_laplacian_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        t.push(0, 0, 1e-3);
        let chol = CholeskyFactor::factor(&t.to_csc()).expect("spd");
        SparseApproximateInverse::from_factor(chol.factor_l(), 1e-3, 2).expect("valid")
    }

    #[test]
    fn generic_kernels_match_the_arena_inherent_methods() {
        let z = sample_inverse();
        let norms_inherent = z.column_norms_squared();
        let norms_generic = column_norms_squared(&z).expect("infallible");
        assert_eq!(norms_inherent.len(), norms_generic.len());
        for (a, b) in norms_inherent.iter().zip(&norms_generic) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for &(p, q) in &[(0, 35), (3, 3), (10, 20), (34, 35), (0, 1)] {
            assert_eq!(
                column_dot(&z, p, q).expect("infallible").to_bits(),
                z.column_dot(p, q).to_bits(),
                "dot ({p},{q})"
            );
            assert_eq!(
                column_distance_squared(&z, p, q)
                    .expect("infallible")
                    .to_bits(),
                z.column_distance_squared(p, q).to_bits(),
                "distance ({p},{q})"
            );
            assert_eq!(
                column_distance_squared_with_norms(&z, p, q, &norms_generic)
                    .expect("infallible")
                    .to_bits(),
                z.column_distance_squared_with_norms(p, q, &norms_inherent)
                    .to_bits(),
                "norm-table distance ({p},{q})"
            );
        }
    }

    #[test]
    fn batched_kernel_matches_the_scalar_kernels_bitwise() {
        let z = sample_inverse();
        let norms = z.column_norms_squared();
        let pairs = [(0, 35), (3, 3), (10, 20), (34, 35), (0, 1), (20, 10)];
        let with_table =
            column_distances_squared_batch(&z, &pairs, Some(&norms)).expect("infallible");
        let without_table = column_distances_squared_batch(&z, &pairs, None).expect("infallible");
        assert_eq!(with_table.len(), pairs.len());
        for (slot, &(p, q)) in pairs.iter().enumerate() {
            let scalar = if p == q {
                0.0
            } else {
                z.column_distance_squared_with_norms(p, q, &norms)
            };
            assert_eq!(with_table[slot].to_bits(), scalar.to_bits(), "({p},{q})");
            assert_eq!(without_table[slot].to_bits(), scalar.to_bits(), "({p},{q})");
        }
    }

    #[test]
    fn with_column_borrows_the_arena() {
        let z = sample_inverse();
        let (nnz, first) = z
            .with_column(0, |column| {
                (column.nnz(), column.indices().first().copied())
            })
            .expect("infallible");
        assert_eq!(nnz, z.column(0).nnz());
        assert_eq!(first, z.column(0).indices().first().copied());
        assert_eq!(ColumnStore::order(&z), z.order());
        assert_eq!(ColumnStore::nnz(&z), z.nnz());
    }

    #[test]
    fn reference_impl_forwards() {
        let z = sample_inverse();
        let by_ref: &SparseApproximateInverse = &z;
        assert_eq!(ColumnStore::order(&by_ref), z.order());
        assert_eq!(
            column_dot(&by_ref, 0, 10).expect("infallible").to_bits(),
            z.column_dot(0, 10).to_bits()
        );
    }

    #[test]
    fn default_norm_matches_view_norm() {
        let z = sample_inverse();
        for j in 0..z.order() {
            assert_eq!(
                z.column_norm_squared(j).expect("infallible").to_bits(),
                z.column(j).norm2_squared().to_bits()
            );
        }
    }
}
