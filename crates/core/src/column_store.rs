//! The `ColumnStore` abstraction: where the columns of `Z̃` live.
//!
//! The paper's query kernel needs exactly one capability from its data
//! structure — *give me column `j` of the approximate inverse as sorted
//! parallel `u32`/`f64` slices* — yet until this module existed the kernels
//! were welded to the in-memory flat CSC arena of
//! [`SparseApproximateInverse`]. [`ColumnStore`] is that capability as a
//! trait, and the effective-resistance kernels ([`column_dot`],
//! [`column_norms_squared`], [`column_distance_squared`],
//! [`column_distance_squared_with_norms`]) are generic over it, so the same
//! code serves:
//!
//! * the **resident** backend — [`SparseApproximateInverse`]'s arena, where a
//!   column is two slice borrows and access can never fail; and
//! * **out-of-core** backends — `effres_io::PagedColumnStore` decodes
//!   columns on demand from a v2 snapshot file behind a page cache, where a
//!   fetch can fail (I/O error, corruption discovered while decoding a page)
//!   and borrowed access must be scoped to a closure because the page a view
//!   points into is owned by the cache, not the caller.
//!
//! Those two constraints shape the trait: column access is
//! [`ColumnStore::with_column`] — *call this closure with a borrowed
//! [`ColumnView`]* — and it returns a `Result` so disk-backed stores can
//! surface a typed [`EffresError::StoreFailure`] instead of panicking the
//! serving thread. For the in-memory store the closure compiles down to the
//! direct slice access it always was.

use crate::approx_inverse::{ColumnView, SparseApproximateInverse, ValuesView};
use crate::error::EffresError;
use effres_sparse::vecops;
use effres_sparse::vecops::ScalarValue;

/// A source of the columns of the approximate inverse `Z̃`.
///
/// Implementations must present each column `j` as strictly increasing `u32`
/// indices with parallel `f64` values, supported on `j..order()` (the
/// lower-triangular invariant the suffix-restricted kernels rely on — see
/// [`column_dot`]). Columns must be stable: two fetches of the same column
/// observe the same bits, so every kernel is deterministic regardless of
/// caching or paging underneath.
///
/// Access is scoped: [`ColumnStore::with_column`] lends the view to a
/// closure instead of returning it, so backends whose column storage is
/// transient (a cache page, a decode buffer) can hand out borrows without
/// copying. Fetches are fallible for the same reason — an out-of-core
/// backend can hit I/O errors or detect corruption lazily; in-memory
/// backends simply never return `Err`.
pub trait ColumnStore {
    /// Number of columns (the order of the factor).
    fn order(&self) -> usize;

    /// Total number of stored nonzeros across all columns.
    fn nnz(&self) -> usize;

    /// Calls `f` with a borrowed view of column `j` and returns its result.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::StoreFailure`] when the backend cannot produce
    /// the column (I/O failure, page-validation failure). In-memory stores
    /// are infallible.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.order()` — like slice indexing, an out-of-bounds
    /// column is a caller bug, not a store failure.
    fn with_column<R>(
        &self,
        j: usize,
        f: impl FnOnce(ColumnView<'_>) -> R,
    ) -> Result<R, EffresError>;

    /// Squared Euclidean norm `‖z̃_j‖²` of column `j`, summed in index order.
    ///
    /// The default fetches the column and sums `v·v` front to back; backends
    /// that decode columns in batches (pages) may serve a cached value, but
    /// it must be **bit-identical** to the default — the norm table is part
    /// of the query result, and resident and paged backends are pinned to
    /// agree bitwise.
    ///
    /// # Errors
    ///
    /// See [`ColumnStore::with_column`].
    fn column_norm_squared(&self, j: usize) -> Result<f64, EffresError> {
        self.with_column(j, |column| column.norm2_squared())
    }
}

impl ColumnStore for SparseApproximateInverse {
    fn order(&self) -> usize {
        SparseApproximateInverse::order(self)
    }

    fn nnz(&self) -> usize {
        SparseApproximateInverse::nnz(self)
    }

    fn with_column<R>(
        &self,
        j: usize,
        f: impl FnOnce(ColumnView<'_>) -> R,
    ) -> Result<R, EffresError> {
        Ok(f(self.column(j)))
    }
}

/// Stores behind shared references are stores (lets kernels and engines take
/// `&S` or smart pointers interchangeably).
impl<S: ColumnStore + ?Sized> ColumnStore for &S {
    fn order(&self) -> usize {
        (**self).order()
    }

    fn nnz(&self) -> usize {
        (**self).nnz()
    }

    fn with_column<R>(
        &self,
        j: usize,
        f: impl FnOnce(ColumnView<'_>) -> R,
    ) -> Result<R, EffresError> {
        (**self).with_column(j, f)
    }

    fn column_norm_squared(&self, j: usize) -> Result<f64, EffresError> {
        (**self).column_norm_squared(j)
    }
}

/// Inner product `⟨z̃_p, z̃_q⟩` of two columns of a store.
///
/// Columns of the inverse of a lower-triangular factor are themselves
/// lower-triangular — column `j` is supported on indices `≥ j` — so the
/// intersection of columns `p` and `q` lies entirely in `max(p, q)..n`. The
/// merge therefore starts at that bound (found by binary search), which
/// skips most of the longer column and is what makes the norm-table query
/// kernel of [`column_distance_squared_with_norms`] cheaper than the full
/// union merge of [`column_distance_squared`].
///
/// # Errors
///
/// Propagates the store's fetch errors (see [`ColumnStore::with_column`]).
///
/// # Panics
///
/// Panics if either index is out of bounds.
pub fn column_dot<S: ColumnStore + ?Sized>(
    store: &S,
    p: usize,
    q: usize,
) -> Result<f64, EffresError> {
    let bound = p.max(q) as u32;
    store.with_column(p, |a| {
        store.with_column(q, |b| suffix_dot_views(a, b, bound))
    })?
}

/// The suffix-restricted two-pointer merge shared by [`column_dot`]'s
/// nested-fetch path (where both views are alive at once). Dispatches on
/// the views' value widths; every arm accumulates in `f64` via the shared
/// `vecops` merge, so the all-`f64` arm is bit-identical to the historical
/// `&[f64]`-only loop.
fn suffix_dot_views(a: ColumnView<'_>, b: ColumnView<'_>, bound: u32) -> f64 {
    match (a.values_view(), b.values_view()) {
        (ValuesView::F64(av), ValuesView::F64(bv)) => {
            suffix_merge_dot(a.indices(), av, b.indices(), bv, bound)
        }
        (ValuesView::F64(av), ValuesView::F32(bv)) => {
            suffix_merge_dot(a.indices(), av, b.indices(), bv, bound)
        }
        (ValuesView::F32(av), ValuesView::F64(bv)) => {
            suffix_merge_dot(a.indices(), av, b.indices(), bv, bound)
        }
        (ValuesView::F32(av), ValuesView::F32(bv)) => {
            suffix_merge_dot(a.indices(), av, b.indices(), bv, bound)
        }
    }
}

/// Binary-searches both operands to the `bound..` suffix, then runs the
/// shared sorted-merge dot product (f64 accumulation for any value width).
fn suffix_merge_dot<A: ScalarValue, B: ScalarValue>(
    ai: &[u32],
    av: &[A],
    bi: &[u32],
    bv: &[B],
    bound: u32,
) -> f64 {
    let i = ai.partition_point(|&row| row < bound);
    let j = bi.partition_point(|&row| row < bound);
    vecops::sparse_dot(&ai[i..], &av[i..], &bi[j..], &bv[j..])
}

/// Squared Euclidean distance between two columns — the effective-resistance
/// kernel `‖z̃_p − z̃_q‖²` of Eq. (22), as a full union merge (no norm table
/// needed).
///
/// # Errors
///
/// Propagates the store's fetch errors.
///
/// # Panics
///
/// Panics if either index is out of bounds.
pub fn column_distance_squared<S: ColumnStore + ?Sized>(
    store: &S,
    p: usize,
    q: usize,
) -> Result<f64, EffresError> {
    store.with_column(p, |a| {
        store.with_column(q, |b| match (a.values_view(), b.values_view()) {
            (ValuesView::F64(av), ValuesView::F64(bv)) => {
                vecops::sparse_distance_squared(a.indices(), av, b.indices(), bv)
            }
            (ValuesView::F64(av), ValuesView::F32(bv)) => {
                vecops::sparse_distance_squared(a.indices(), av, b.indices(), bv)
            }
            (ValuesView::F32(av), ValuesView::F64(bv)) => {
                vecops::sparse_distance_squared(a.indices(), av, b.indices(), bv)
            }
            (ValuesView::F32(av), ValuesView::F32(bv)) => {
                vecops::sparse_distance_squared(a.indices(), av, b.indices(), bv)
            }
        })
    })?
}

/// The effective-resistance kernel evaluated with precomputed column norms
/// (see [`column_norms_squared`]): one suffix-restricted sparse dot product
/// instead of a full two-column merge.
///
/// # Errors
///
/// Propagates the store's fetch errors.
///
/// # Panics
///
/// Panics if either index is out of bounds or `norms_squared` is shorter
/// than the store's order.
pub fn column_distance_squared_with_norms<S: ColumnStore + ?Sized>(
    store: &S,
    p: usize,
    q: usize,
    norms_squared: &[f64],
) -> Result<f64, EffresError> {
    let dot = column_dot(store, p, q)?;
    // Clamp: cancellation can produce a tiny negative value when the columns
    // are nearly identical, and resistances are nonnegative.
    Ok((norms_squared[p] + norms_squared[q] - 2.0 * dot).max(0.0))
}

/// Batched form of the effective-resistance kernel: answers every (permuted)
/// pair of `pairs` in order, using the norm table when one is provided and
/// per-column norms off the store otherwise (bit-identical by the
/// [`ColumnStore::column_norm_squared`] contract).
///
/// This is the store-generic entry point batch schedulers build on: callers
/// that reorder queries for locality (the `effres-service` paged scheduler)
/// evaluate each pair through exactly this arithmetic, so any evaluation
/// order produces the same bits as this in-order reference.
///
/// # Errors
///
/// Propagates the store's fetch errors; on error some prefix of the batch
/// may have been evaluated but nothing is returned.
///
/// # Panics
///
/// Panics if any index is out of bounds or `norms_squared` is `Some` but
/// shorter than the store's order.
pub fn column_distances_squared_batch<S: ColumnStore + ?Sized>(
    store: &S,
    pairs: &[(usize, usize)],
    norms_squared: Option<&[f64]>,
) -> Result<Vec<f64>, EffresError> {
    pairs
        .iter()
        .map(|&(p, q)| {
            if p == q {
                return Ok(0.0);
            }
            let dot = column_dot(store, p, q)?;
            let (np, nq) = match norms_squared {
                Some(table) => (table[p], table[q]),
                None => (store.column_norm_squared(p)?, store.column_norm_squared(q)?),
            };
            // Same clamp as the scalar kernel: cancellation can dip below 0.
            Ok((np + nq - 2.0 * dot).max(0.0))
        })
        .collect()
}

/// Byte-level counters of what the multi-pair kernels actually streamed —
/// the observability half of the batched path: `bytes_streamed / pairs()`
/// is the bytes-per-query figure the kernels exist to shrink, and
/// `hub_pairs / hub_loads` is how many pairs each hub-column load was
/// amortized over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Hub columns scattered into a dense scratch (each streams the hub's
    /// rows/vals exactly once, however many pairs follow).
    pub hub_loads: u64,
    /// Pairs answered against a resident hub (only the partner's suffix is
    /// streamed).
    pub hub_pairs: u64,
    /// Pairs answered by the plain two-column suffix merge (no neighbour
    /// shared a hub, so batching had nothing to amortize).
    pub isolated_pairs: u64,
    /// Approximate arena bytes the kernels read (row indices + values, at
    /// the store's value width), excluding norm-table lookups.
    pub bytes_streamed: u64,
}

impl KernelStats {
    /// Total pairs answered.
    pub fn pairs(&self) -> u64 {
        self.hub_pairs + self.isolated_pairs
    }

    /// Mean pairs amortized over each hub-column load (`0` when no hub was
    /// ever loaded).
    pub fn pairs_per_hub_load(&self) -> f64 {
        if self.hub_loads == 0 {
            0.0
        } else {
            self.hub_pairs as f64 / self.hub_loads as f64
        }
    }

    /// Accumulates `other` into `self` (for summing per-worker or
    /// per-window counters into a batch total).
    pub fn merge(&mut self, other: KernelStats) {
        self.hub_loads += other.hub_loads;
        self.hub_pairs += other.hub_pairs;
        self.isolated_pairs += other.isolated_pairs;
        self.bytes_streamed += other.bytes_streamed;
    }
}

/// Reusable state for the batched multi-pair kernels: one dense scatter of
/// a pinned "hub" column, so every pair sharing that hub streams only its
/// partner's suffix instead of re-merging the hub's rows/vals.
///
/// The scatter trades the two-pointer merge for indexed loads
/// `dense[row] · v` over the partner's entries. Positions the hub does not
/// store hold `0.0`, so the extra terms are exact zeros; with the
/// nonnegative columns of a Laplacian factor (Lemma 1 of the paper, pinned
/// by the build tests) adding them never flips the accumulator's sign bit,
/// making the scatter path **bit-identical** to [`column_dot`]'s merge —
/// the property the grouped kernels are pinned to.
///
/// The scratch is `O(order)` memory and is meant to be pooled and reused
/// across batches; [`HubScratch::load`] is a no-op when the hub is already
/// resident, and the scatter is cleaned eagerly via the recorded indices
/// (not a full `O(order)` wipe). A scratch identifies its resident hub by
/// column index only, so reuse it against a **single store** — pools are
/// per-engine, never shared across backends.
#[derive(Debug, Default)]
pub struct HubScratch {
    dense: Vec<f64>,
    loaded_indices: Vec<u32>,
    hub: Option<usize>,
    /// First row the resident scatter covers: rows `loaded_from..` of the
    /// hub are in `dense`, rows below it were skipped (suffix load).
    loaded_from: u32,
    stats: KernelStats,
}

impl HubScratch {
    /// A scratch ready for stores of `order` columns (it grows on demand,
    /// so `new(0)` is a valid lazy initializer for pools).
    pub fn new(order: usize) -> Self {
        HubScratch {
            dense: vec![0.0; order],
            loaded_indices: Vec::new(),
            hub: None,
            loaded_from: 0,
            stats: KernelStats::default(),
        }
    }

    /// The column currently scattered into the dense buffer, if any.
    pub fn hub(&self) -> Option<usize> {
        self.hub
    }

    /// Counters accumulated since construction or the last
    /// [`HubScratch::take_stats`].
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Returns the accumulated counters and resets them to zero (the
    /// per-batch reporting hook: pool the scratch, drain its counters).
    pub fn take_stats(&mut self) -> KernelStats {
        std::mem::take(&mut self.stats)
    }

    /// Scatters column `hub` of `store` into the dense buffer (a no-op if
    /// it is already resident). On error the scratch is left empty, never
    /// holding a stale or partial column.
    ///
    /// # Errors
    ///
    /// Propagates the store's fetch errors.
    ///
    /// # Panics
    ///
    /// Panics if `hub >= store.order()`.
    pub fn load<S: ColumnStore + ?Sized>(
        &mut self,
        store: &S,
        hub: usize,
    ) -> Result<(), EffresError> {
        self.load_suffix(store, hub, 0)
    }

    /// Scatters only rows `from_row..` of column `hub` into the dense
    /// buffer — the part the suffix dots can ever read. A no-op when the
    /// hub is already resident with a covering suffix
    /// (`loaded_from <= from_row`); a resident hub whose suffix starts too
    /// late is re-scattered from the new bound. On error the scratch is
    /// left empty, never holding a stale or partial column.
    ///
    /// This is what makes the hub path pay from the second pair of a run
    /// on: callers sorted by `(min, max)` endpoint see ascending bounds, so
    /// the scatter streams exactly the hub suffix the *first* pairwise
    /// merge would have read, and every later pair in the run skips its hub
    /// suffix stream entirely.
    ///
    /// # Errors
    ///
    /// Propagates the store's fetch errors.
    ///
    /// # Panics
    ///
    /// Panics if `hub >= store.order()`.
    pub fn load_suffix<S: ColumnStore + ?Sized>(
        &mut self,
        store: &S,
        hub: usize,
        from_row: u32,
    ) -> Result<(), EffresError> {
        if self.hub == Some(hub) && self.loaded_from <= from_row {
            return Ok(());
        }
        for &i in &self.loaded_indices {
            self.dense[i as usize] = 0.0;
        }
        self.loaded_indices.clear();
        self.hub = None;
        if self.dense.len() < store.order() {
            self.dense.resize(store.order(), 0.0);
        }
        let dense = &mut self.dense;
        let loaded_indices = &mut self.loaded_indices;
        let bytes = store.with_column(hub, |column| {
            let start = column.indices().partition_point(|&row| row < from_row);
            // Record the indices before scattering so a store that fails
            // after running the closure still leaves a cleanable scratch.
            let indices = &column.indices()[start..];
            loaded_indices.extend_from_slice(indices);
            match column.values_view() {
                ValuesView::F64(values) => {
                    for (&i, &v) in indices.iter().zip(&values[start..]) {
                        dense[i as usize] = v;
                    }
                }
                ValuesView::F32(values) => {
                    for (&i, &v) in indices.iter().zip(&values[start..]) {
                        dense[i as usize] = f64::from(v);
                    }
                }
            }
            (column.nnz() - start) * column.entry_bytes()
        })?;
        self.hub = Some(hub);
        self.loaded_from = from_row;
        self.stats.hub_loads += 1;
        self.stats.bytes_streamed += bytes as u64;
        Ok(())
    }

    /// Inner product of the resident hub column with column `partner`,
    /// restricted (like [`column_dot`]) to the `max(hub, partner)..` suffix
    /// — only the partner's suffix is streamed. If the resident suffix does
    /// not cover this pair's bound (a [`HubScratch::load_suffix`] with a
    /// larger bound), the hub is re-scattered from the needed bound first,
    /// so the answer is always the full suffix dot.
    ///
    /// # Errors
    ///
    /// Propagates the store's fetch errors.
    ///
    /// # Panics
    ///
    /// Panics if no hub is loaded or `partner >= store.order()`.
    pub fn suffix_dot<S: ColumnStore + ?Sized>(
        &mut self,
        store: &S,
        partner: usize,
    ) -> Result<f64, EffresError> {
        let hub = self
            .hub
            .expect("HubScratch::suffix_dot without a loaded hub");
        let bound = hub.max(partner) as u32;
        if self.loaded_from > bound {
            self.hub = None;
            self.load_suffix(store, hub, bound)?;
        }
        let dense = &self.dense;
        let (dot, bytes) = store.with_column(partner, |column| {
            let start = column.indices().partition_point(|&row| row < bound);
            (
                column.suffix_dot_dense(dense, bound),
                (column.nnz() - start) * column.entry_bytes(),
            )
        })?;
        self.stats.hub_pairs += 1;
        self.stats.bytes_streamed += bytes as u64;
        Ok(dot)
    }

    /// The plain two-column suffix merge of [`column_dot`], counted as an
    /// isolated pair (the grouped kernels fall back to this when no
    /// neighbouring pair shares a hub, leaving any resident hub untouched).
    ///
    /// # Errors
    ///
    /// Propagates the store's fetch errors.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn isolated_dot<S: ColumnStore + ?Sized>(
        &mut self,
        store: &S,
        p: usize,
        q: usize,
    ) -> Result<f64, EffresError> {
        let bound = p.max(q) as u32;
        let (dot, bytes) = store.with_column(p, |a| {
            store.with_column(q, |b| {
                let start_a = a.indices().partition_point(|&row| row < bound);
                let start_b = b.indices().partition_point(|&row| row < bound);
                (
                    suffix_dot_views(a, b, bound),
                    (a.nnz() - start_a) * a.entry_bytes() + (b.nnz() - start_b) * b.entry_bytes(),
                )
            })
        })??;
        self.stats.isolated_pairs += 1;
        self.stats.bytes_streamed += bytes as u64;
        Ok(dot)
    }
}

/// Batched multi-pair dot products against one pinned hub column: loads
/// `hub` once into `scratch` and answers `⟨z̃_hub, z̃_partner⟩` for every
/// partner, streaming the hub's rows/vals a single time however many
/// partners follow. Each dot is bit-identical to
/// [`column_dot`]`(store, hub, partner)` (see [`HubScratch`] for why the
/// scatter preserves bits).
///
/// # Errors
///
/// Propagates the store's fetch errors; on error some prefix of the
/// partners may have been evaluated but nothing is returned.
///
/// # Panics
///
/// Panics if `hub` or any partner is out of bounds.
pub fn column_dots_hub<S: ColumnStore + ?Sized>(
    store: &S,
    hub: usize,
    partners: &[usize],
    scratch: &mut HubScratch,
) -> Result<Vec<f64>, EffresError> {
    if partners.is_empty() {
        return Ok(Vec::new());
    }
    // One scatter covering every partner's bound: the smallest bound over
    // the set is all the suffix dots can ever read below.
    let from_row = partners
        .iter()
        .map(|&partner| hub.max(partner) as u32)
        .min()
        .expect("partners is non-empty");
    scratch.load_suffix(store, hub, from_row)?;
    partners
        .iter()
        .map(|&partner| scratch.suffix_dot(store, partner))
        .collect()
}

/// The grouped form of [`column_distances_squared_batch`]: answers every
/// (permuted) pair of `pairs` in order, but runs consecutive pairs that
/// share their smaller endpoint through the hub-scatter kernel so the
/// shared column is streamed once per run instead of once per pair.
/// Callers that sort their batch by `(min, max)` endpoint — the service
/// engine and the paged scheduler already do — turn every hub cluster into
/// one load.
///
/// Answers are **bit-identical** to the pairwise batch kernel for any pair
/// order: each pair evaluates the same suffix-restricted dot (see
/// [`HubScratch`]) and the same norm identity with the same clamp.
///
/// # Errors
///
/// Propagates the store's fetch errors; on error some prefix of the batch
/// may have been evaluated but nothing is returned.
///
/// # Panics
///
/// Panics if any index is out of bounds or `norms_squared` is `Some` but
/// shorter than the store's order.
pub fn column_distances_squared_grouped<S: ColumnStore + ?Sized>(
    store: &S,
    pairs: &[(usize, usize)],
    norms_squared: Option<&[f64]>,
    scratch: &mut HubScratch,
) -> Result<Vec<f64>, EffresError> {
    let mut out = Vec::with_capacity(pairs.len());
    for (slot, &(p, q)) in pairs.iter().enumerate() {
        if p == q {
            out.push(0.0);
            continue;
        }
        let hub = p.min(q);
        let partner = p.max(q);
        // Scatter the hub only when it amortizes: it is already resident,
        // or the next pair shares it.
        let shares_hub = |other: &(usize, usize)| other.0.min(other.1) == hub;
        let batched = scratch.hub() == Some(hub) || pairs.get(slot + 1).is_some_and(shares_hub);
        let dot = if batched {
            // Suffix-bounded scatter: on a batch sorted by `(min, max)` the
            // run's first pair has the smallest bound, so later pairs no-op
            // here and the hub streams exactly once, from that bound on.
            scratch.load_suffix(store, hub, partner as u32)?;
            scratch.suffix_dot(store, partner)?
        } else {
            scratch.isolated_dot(store, p, q)?
        };
        let (np, nq) = match norms_squared {
            Some(table) => (table[p], table[q]),
            None => (store.column_norm_squared(p)?, store.column_norm_squared(q)?),
        };
        // Same clamp as the scalar kernel: cancellation can dip below 0.
        out.push((np + nq - 2.0 * dot).max(0.0));
    }
    Ok(out)
}

/// Squared Euclidean norms `‖z̃_j‖²` of every column, in column order.
///
/// Query services over resident stores precompute this once so a query
/// reduces to one sparse dot product; out-of-core services skip the table
/// (computing it would stream the whole file at boot) and use
/// [`ColumnStore::column_norm_squared`] per query instead — the two are
/// bit-identical by contract.
///
/// # Errors
///
/// Propagates the store's fetch errors.
pub fn column_norms_squared<S: ColumnStore + ?Sized>(store: &S) -> Result<Vec<f64>, EffresError> {
    (0..store.order())
        .map(|j| store.column_norm_squared(j))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres_sparse::cholesky::CholeskyFactor;
    use effres_sparse::TripletMatrix;

    fn sample_inverse() -> SparseApproximateInverse {
        let rows = 6;
        let cols = 6;
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_laplacian_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    t.add_laplacian_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        t.push(0, 0, 1e-3);
        let chol = CholeskyFactor::factor(&t.to_csc()).expect("spd");
        SparseApproximateInverse::from_factor(chol.factor_l(), 1e-3, 2).expect("valid")
    }

    #[test]
    fn generic_kernels_match_the_arena_inherent_methods() {
        let z = sample_inverse();
        let norms_inherent = z.column_norms_squared();
        let norms_generic = column_norms_squared(&z).expect("infallible");
        assert_eq!(norms_inherent.len(), norms_generic.len());
        for (a, b) in norms_inherent.iter().zip(&norms_generic) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for &(p, q) in &[(0, 35), (3, 3), (10, 20), (34, 35), (0, 1)] {
            assert_eq!(
                column_dot(&z, p, q).expect("infallible").to_bits(),
                z.column_dot(p, q).to_bits(),
                "dot ({p},{q})"
            );
            assert_eq!(
                column_distance_squared(&z, p, q)
                    .expect("infallible")
                    .to_bits(),
                z.column_distance_squared(p, q).to_bits(),
                "distance ({p},{q})"
            );
            assert_eq!(
                column_distance_squared_with_norms(&z, p, q, &norms_generic)
                    .expect("infallible")
                    .to_bits(),
                z.column_distance_squared_with_norms(p, q, &norms_inherent)
                    .to_bits(),
                "norm-table distance ({p},{q})"
            );
        }
    }

    #[test]
    fn batched_kernel_matches_the_scalar_kernels_bitwise() {
        let z = sample_inverse();
        let norms = z.column_norms_squared();
        let pairs = [(0, 35), (3, 3), (10, 20), (34, 35), (0, 1), (20, 10)];
        let with_table =
            column_distances_squared_batch(&z, &pairs, Some(&norms)).expect("infallible");
        let without_table = column_distances_squared_batch(&z, &pairs, None).expect("infallible");
        assert_eq!(with_table.len(), pairs.len());
        for (slot, &(p, q)) in pairs.iter().enumerate() {
            let scalar = if p == q {
                0.0
            } else {
                z.column_distance_squared_with_norms(p, q, &norms)
            };
            assert_eq!(with_table[slot].to_bits(), scalar.to_bits(), "({p},{q})");
            assert_eq!(without_table[slot].to_bits(), scalar.to_bits(), "({p},{q})");
        }
    }

    #[test]
    fn hub_kernel_matches_column_dot_bitwise() {
        let z = sample_inverse();
        let mut scratch = HubScratch::new(z.order());
        for hub in [0usize, 7, 20, 35] {
            let partners: Vec<usize> = vec![hub, 0, 5, 20, 35, 35];
            let dots = column_dots_hub(&z, hub, &partners, &mut scratch).expect("infallible");
            for (&partner, dot) in partners.iter().zip(&dots) {
                assert_eq!(
                    dot.to_bits(),
                    z.column_dot(hub, partner).to_bits(),
                    "hub {hub} partner {partner}"
                );
            }
        }
        // Empty partner sets are answered without touching the store.
        let loads_before = scratch.stats().hub_loads;
        assert!(column_dots_hub(&z, 3, &[], &mut scratch)
            .expect("infallible")
            .is_empty());
        assert_eq!(scratch.stats().hub_loads, loads_before);
    }

    #[test]
    fn grouped_kernel_matches_batched_kernel_bitwise() {
        let z = sample_inverse();
        let norms = z.column_norms_squared();
        // Mixed workload: hub runs, isolated pairs, self pairs, reversed
        // endpoints sharing a hub.
        let pairs = [
            (0, 35),
            (0, 12),
            (12, 0),
            (3, 3),
            (10, 20),
            (34, 35),
            (5, 9),
            (9, 5),
            (35, 9),
        ];
        let mut scratch = HubScratch::new(z.order());
        for norms_arg in [Some(norms.as_slice()), None] {
            let grouped = column_distances_squared_grouped(&z, &pairs, norms_arg, &mut scratch)
                .expect("infallible");
            let batched =
                column_distances_squared_batch(&z, &pairs, norms_arg).expect("infallible");
            for (slot, (g, b)) in grouped.iter().zip(&batched).enumerate() {
                assert_eq!(g.to_bits(), b.to_bits(), "pair {:?}", pairs[slot]);
            }
        }
        let stats = scratch.take_stats();
        assert_eq!(stats.pairs(), 2 * (pairs.len() as u64 - 1)); // self pair excluded
        assert!(stats.hub_pairs > 0 && stats.isolated_pairs > 0);
        assert!(stats.bytes_streamed > 0);
        assert!(stats.pairs_per_hub_load() > 1.0);
        assert_eq!(scratch.stats(), KernelStats::default());
    }

    #[test]
    fn failed_kernel_stats_merge_adds_counters() {
        let mut a = KernelStats {
            hub_loads: 1,
            hub_pairs: 2,
            isolated_pairs: 3,
            bytes_streamed: 4,
        };
        a.merge(KernelStats {
            hub_loads: 10,
            hub_pairs: 20,
            isolated_pairs: 30,
            bytes_streamed: 40,
        });
        assert_eq!(a.hub_loads, 11);
        assert_eq!(a.hub_pairs, 22);
        assert_eq!(a.isolated_pairs, 33);
        assert_eq!(a.bytes_streamed, 44);
        assert_eq!(a.pairs(), 55);
    }

    #[test]
    fn with_column_borrows_the_arena() {
        let z = sample_inverse();
        let (nnz, first) = z
            .with_column(0, |column| {
                (column.nnz(), column.indices().first().copied())
            })
            .expect("infallible");
        assert_eq!(nnz, z.column(0).nnz());
        assert_eq!(first, z.column(0).indices().first().copied());
        assert_eq!(ColumnStore::order(&z), z.order());
        assert_eq!(ColumnStore::nnz(&z), z.nnz());
    }

    #[test]
    fn reference_impl_forwards() {
        let z = sample_inverse();
        let by_ref: &SparseApproximateInverse = &z;
        assert_eq!(ColumnStore::order(&by_ref), z.order());
        assert_eq!(
            column_dot(&by_ref, 0, 10).expect("infallible").to_bits(),
            z.column_dot(0, 10).to_bits()
        );
    }

    #[test]
    fn default_norm_matches_view_norm() {
        let z = sample_inverse();
        for j in 0..z.order() {
            assert_eq!(
                z.column_norm_squared(j).expect("infallible").to_bits(),
                z.column(j).norm2_squared().to_bits()
            );
        }
    }
}
