//! Centrality measures built on effective resistances.
//!
//! The paper's introduction motivates effective resistances with graph
//! data-mining applications; the two classic ones are implemented here on
//! top of the Alg. 3 estimator:
//!
//! * **Spanning-edge centrality** (the WWW'15 application): the probability
//!   `w_e · R(u, v)` that edge `e = (u, v)` appears in a uniformly random
//!   spanning tree. Edges whose removal disconnects the graph (bridges) have
//!   centrality exactly 1.
//! * **Current-flow closeness centrality** (also known as information
//!   centrality): the reciprocal of the average effective resistance from a
//!   node to all other nodes, `(n - 1) / Σ_q R(v, q)`. Nodes that are
//!   electrically close to the rest of the graph score high.

use crate::config::EffresConfig;
use crate::error::EffresError;
use crate::estimator::EffectiveResistanceEstimator;
use effres_graph::Graph;

/// Spanning-edge centralities of every edge, in edge-id order.
///
/// Uses the Alg. 3 estimator with the given configuration; pass
/// [`EffresConfig::default`] for the paper's parameters.
///
/// # Errors
///
/// Propagates estimator construction and query errors.
pub fn spanning_edge_centralities(
    graph: &Graph,
    config: &EffresConfig,
) -> Result<Vec<f64>, EffresError> {
    let estimator = EffectiveResistanceEstimator::build(graph, config)?;
    spanning_edge_centralities_with(&estimator, graph)
}

/// Spanning-edge centralities of every edge against an already-built
/// estimator — the entry point for deployments that serve many workloads
/// from one estimator (the CLI `centrality` command, the query engine's
/// all-edges path). Queries run through the grouped multi-pair kernel of
/// [`EffectiveResistanceEstimator::query_all_edges`].
///
/// # Errors
///
/// Propagates query errors, including [`EffresError::NodeOutOfBounds`] if
/// the graph has more nodes than the estimator.
pub fn spanning_edge_centralities_with(
    estimator: &EffectiveResistanceEstimator,
    graph: &Graph,
) -> Result<Vec<f64>, EffresError> {
    let resistances = estimator.query_all_edges(graph)?;
    Ok(centralities_from_resistances(graph, &resistances))
}

/// Maps per-edge effective resistances (in edge-id order, as returned by
/// `query_all_edges` or an engine batch built from
/// `QueryBatch::all_edges`-style pairs) to spanning-edge centralities
/// `min(w_e · R_e, 1)`. The clamp absorbs approximation error on bridges,
/// whose exact centrality is 1.
///
/// # Panics
///
/// Panics if `resistances` is shorter than the graph's edge count.
pub fn centralities_from_resistances(graph: &Graph, resistances: &[f64]) -> Vec<f64> {
    assert!(
        resistances.len() >= graph.edge_count(),
        "resistances cover {} of {} edges",
        resistances.len(),
        graph.edge_count()
    );
    graph
        .edges()
        .zip(resistances)
        .map(|((_, e), &r)| (e.weight * r).min(1.0))
        .collect()
}

/// Current-flow closeness centrality of the listed nodes.
///
/// For each requested node `v` the value is `(n - 1) / Σ_{q ≠ v} R(v, q)`.
/// The sum runs over all other nodes, so this costs `O(n)` queries per
/// requested node; with the approximate inverse each query is `O(log n)` on
/// average, keeping the total near-linear per node.
///
/// # Errors
///
/// Propagates estimator construction and query errors, including
/// [`EffresError::NodeOutOfBounds`] for invalid requested nodes.
pub fn current_flow_closeness(
    graph: &Graph,
    nodes: &[usize],
    config: &EffresConfig,
) -> Result<Vec<f64>, EffresError> {
    let estimator = EffectiveResistanceEstimator::build(graph, config)?;
    let n = graph.node_count();
    let mut out = Vec::with_capacity(nodes.len());
    for &v in nodes {
        if v >= n {
            return Err(EffresError::NodeOutOfBounds {
                node: v,
                node_count: n,
            });
        }
        let mut total = 0.0;
        for q in 0..n {
            if q != v {
                total += estimator.query(v, q)?;
            }
        }
        if total == 0.0 {
            out.push(0.0);
        } else {
            out.push((n as f64 - 1.0) / total);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres_graph::generators;

    fn exact_config() -> EffresConfig {
        EffresConfig::default()
            .with_drop_tolerance(0.0)
            .with_epsilon(0.0)
    }

    #[test]
    fn bridge_edges_have_centrality_one() {
        // Two triangles connected by a single bridge edge.
        let graph = Graph::from_edges(
            6,
            vec![
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (2, 3, 2.0), // the bridge
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
            ],
        )
        .expect("valid");
        let centralities = spanning_edge_centralities(&graph, &exact_config()).expect("build");
        assert!(
            (centralities[3] - 1.0).abs() < 1e-9,
            "bridge centrality {}",
            centralities[3]
        );
        for (id, &c) in centralities.iter().enumerate() {
            assert!(c > 0.0 && c <= 1.0 + 1e-12, "edge {id}: {c}");
            if id != 3 {
                assert!(
                    c < 0.99,
                    "non-bridge edge {id} should not look like a bridge"
                );
            }
        }
    }

    #[test]
    fn centralities_sum_to_n_minus_components() {
        // Σ_e w_e R_e equals n - (number of spanning trees' components),
        // i.e. n - 1 for a connected graph — the matrix-tree identity the
        // WWW'15 paper exploits.
        let graph = generators::random_connected(60, 80, 0.5, 2.0, 3).expect("generator");
        let centralities = spanning_edge_centralities(&graph, &exact_config()).expect("build");
        let sum: f64 = centralities.iter().sum();
        assert!(
            (sum - (graph.node_count() as f64 - 1.0)).abs() < 1e-6,
            "sum {sum} vs {}",
            graph.node_count() - 1
        );
    }

    #[test]
    fn approximate_centralities_track_exact_ones() {
        let graph = generators::grid_2d(12, 12, 0.5, 2.0, 5).expect("generator");
        let exact = spanning_edge_centralities(&graph, &exact_config()).expect("build");
        let approx = spanning_edge_centralities(&graph, &EffresConfig::default()).expect("build");
        let worst = exact
            .iter()
            .zip(&approx)
            .map(|(e, a)| ((e - a) / e).abs())
            .fold(0.0_f64, f64::max);
        assert!(worst < 0.15, "worst relative deviation {worst}");
    }

    #[test]
    fn star_center_has_highest_closeness() {
        let mut graph = Graph::new(6);
        for leaf in 1..6 {
            graph.add_edge(0, leaf, 1.0).expect("valid");
        }
        let values =
            current_flow_closeness(&graph, &[0, 1, 2, 3, 4, 5], &exact_config()).expect("build");
        for leaf in 1..6 {
            assert!(values[0] > values[leaf], "center must beat leaf {leaf}");
        }
        // Closeness of the center: (n-1) / sum_q R(0,q) = 5 / 5 = 1.
        assert!((values[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_nodes_rejected() {
        let graph = Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]).expect("valid");
        assert!(current_flow_closeness(&graph, &[7], &exact_config()).is_err());
    }
}
