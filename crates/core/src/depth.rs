//! Depth of nodes in the filled graph (Eq. 11 of the paper).
//!
//! The filled graph `G_L = (V, F)` is the undirected graph of the Cholesky
//! factor pattern, `F = {(i, j) | i ≠ j and L(i, j) ≠ 0}`. The depth of a
//! node `p` is
//!
//! ```text
//! depth(p) = 0                                   if L(p+1..n, p) = 0
//! depth(p) = 1 + max { depth(i) : i > p, L(i, p) ≠ 0 }   otherwise
//! ```
//!
//! Theorem 1 bounds the relative 1-norm error of the approximate inverse's
//! column `p` by `depth(p) · ε`, so the maximum depth (the `dpt` column of
//! Table I) is the key structural quantity of the error analysis.

use effres_sparse::CscMatrix;

/// Per-node depths in the filled graph of a lower-triangular factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilledGraphDepth {
    depths: Vec<usize>,
}

impl FilledGraphDepth {
    /// Computes the depth of every node from the factor pattern.
    ///
    /// The factor must be lower triangular (entries with row ≥ column); the
    /// values are irrelevant, only the pattern is used.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not square.
    pub fn from_factor(factor: &CscMatrix) -> Self {
        assert_eq!(
            factor.nrows(),
            factor.ncols(),
            "factor must be square to define a filled graph"
        );
        let n = factor.ncols();
        let mut depths = vec![0usize; n];
        // Process columns from the last to the first: all row indices in a
        // lower-triangular column are ≥ the column index, so the recursion of
        // Eq. (11) only references already-computed depths.
        for p in (0..n).rev() {
            let mut max_child: Option<usize> = None;
            for &i in factor.column_rows(p) {
                if i > p {
                    max_child = Some(max_child.map_or(depths[i], |m: usize| m.max(depths[i])));
                }
            }
            depths[p] = match max_child {
                Some(m) => m + 1,
                None => 0,
            };
        }
        FilledGraphDepth { depths }
    }

    /// Depth of node `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds.
    pub fn depth(&self, p: usize) -> usize {
        self.depths[p]
    }

    /// All depths, indexed by node.
    pub fn depths(&self) -> &[usize] {
        &self.depths
    }

    /// Maximum depth over all nodes (the `dpt` column of Table I).
    pub fn max_depth(&self) -> usize {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// Average depth over all nodes.
    pub fn average_depth(&self) -> f64 {
        if self.depths.is_empty() {
            0.0
        } else {
            self.depths.iter().sum::<usize>() as f64 / self.depths.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres_sparse::TripletMatrix;

    /// Bidiagonal factor of a path graph: depth decreases along the chain.
    #[test]
    fn path_factor_depths_form_a_chain() {
        let n = 5;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 1.0);
            if j + 1 < n {
                t.push(j + 1, j, -0.5);
            }
        }
        let d = FilledGraphDepth::from_factor(&t.to_csc());
        assert_eq!(d.depths(), &[4, 3, 2, 1, 0]);
        assert_eq!(d.max_depth(), 4);
        assert!((d.average_depth() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_factor_has_zero_depth() {
        let mut t = TripletMatrix::new(3, 3);
        for j in 0..3 {
            t.push(j, j, 2.0);
        }
        let d = FilledGraphDepth::from_factor(&t.to_csc());
        assert_eq!(d.depths(), &[0, 0, 0]);
        assert_eq!(d.max_depth(), 0);
    }

    #[test]
    fn star_factor_depth_is_one_for_leaves() {
        // Leaves 0..3 all connect to node 4 (the last column): their depth is
        // 1 + depth(4) = 1.
        let n = 5;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 1.0);
        }
        for leaf in 0..4 {
            t.push(4, leaf, -0.3);
        }
        let d = FilledGraphDepth::from_factor(&t.to_csc());
        assert_eq!(d.depths(), &[1, 1, 1, 1, 0]);
    }

    #[test]
    fn depth_follows_longest_downward_path() {
        // Column 0 connects to 1 and 3; column 1 connects to 2; column 2
        // connects to 3. Longest path from 0: 0-1-2-3 → depth 3.
        let n = 4;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 1.0);
        }
        t.push(1, 0, -1.0);
        t.push(3, 0, -1.0);
        t.push(2, 1, -1.0);
        t.push(3, 2, -1.0);
        let d = FilledGraphDepth::from_factor(&t.to_csc());
        assert_eq!(d.depths(), &[3, 2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular_factor() {
        let t = TripletMatrix::new(2, 3);
        let _ = FilledGraphDepth::from_factor(&t.to_csc());
    }
}
