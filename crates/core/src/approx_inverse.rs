//! Sparse approximate inverse of a Cholesky factor (Alg. 2 of the paper).
//!
//! Let `L` be the (incomplete) Cholesky factor of the grounded Laplacian and
//! `Z = L⁻¹`. Lemma 1 shows `Z` is nonnegative and that its columns obey the
//! recurrence
//!
//! ```text
//! z_j = (1 / L_jj) e_j + Σ_{i > j, L_ij ≠ 0} (−L_ij / L_jj) z_i
//! ```
//!
//! so the columns can be built from the last one backwards. The algorithm
//! keeps every column sparse by pruning: after assembling the candidate
//! column `z*_j` from the already-pruned columns, the smallest entries whose
//! absolute values sum to at most `ε · ‖z*_j‖₁` are dropped (the `trunc_k`
//! rule of Eq. (10)). Theorem 1 then bounds the column error by
//! `depth(j) · ε`.

use crate::error::EffresError;
use effres_sparse::sparse_vec::{SparseAccumulator, SparseVec};
use effres_sparse::CscMatrix;

/// Statistics gathered while building the approximate inverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApproxInverseStats {
    /// Total number of stored nonzeros across all columns of `Z̃`.
    pub nnz: usize,
    /// Largest number of nonzeros in a single column.
    pub max_column_nnz: usize,
    /// Number of entries removed by the pruning rule.
    pub pruned_entries: usize,
    /// Number of columns kept exactly because they were already small.
    pub small_columns_kept: usize,
}

/// A sparse approximation `Z̃ ≈ L⁻¹` of the inverse of a lower-triangular
/// Cholesky factor, stored column by column.
#[derive(Debug, Clone)]
pub struct SparseApproximateInverse {
    columns: Vec<SparseVec>,
    stats: ApproxInverseStats,
    epsilon: f64,
}

impl SparseApproximateInverse {
    /// Runs Alg. 2 on the factor `L` with pruning threshold `epsilon`.
    ///
    /// Columns whose candidate has at most `max(dense_column_threshold, ln n)`
    /// entries are kept without pruning, as in step 3 of Alg. 2.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::Sparse`] if the factor is not square, and
    /// [`EffresError::InvalidConfig`] if `epsilon` is not in `[0, 1)` or a
    /// diagonal entry of the factor is missing or nonpositive.
    pub fn from_factor(
        factor: &CscMatrix,
        epsilon: f64,
        dense_column_threshold: usize,
    ) -> Result<Self, EffresError> {
        if factor.nrows() != factor.ncols() {
            return Err(EffresError::Sparse(effres_sparse::SparseError::NotSquare {
                nrows: factor.nrows(),
                ncols: factor.ncols(),
            }));
        }
        if !(0.0..1.0).contains(&epsilon) {
            return Err(EffresError::InvalidConfig {
                name: "epsilon",
                message: "must lie in [0, 1)".to_string(),
            });
        }
        let n = factor.ncols();
        let keep_limit = dense_column_threshold.max((n.max(2) as f64).ln().ceil() as usize);
        let mut columns: Vec<SparseVec> = vec![SparseVec::new(n); n];
        let mut stats = ApproxInverseStats::default();
        let mut accumulator = SparseAccumulator::new(n);

        for j in (0..n).rev() {
            let rows = factor.column_rows(j);
            let vals = factor.column_values(j);
            let diag_pos = rows
                .binary_search(&j)
                .map_err(|_| EffresError::InvalidConfig {
                    name: "factor",
                    message: format!("missing diagonal entry in column {j}"),
                })?;
            let diag = vals[diag_pos];
            if !(diag > 0.0) {
                return Err(EffresError::InvalidConfig {
                    name: "factor",
                    message: format!("nonpositive diagonal {diag} in column {j}"),
                });
            }
            // z*_j = (1 / L_jj) e_j + Σ (−L_ij / L_jj) z̃_i.
            accumulator.add(j, 1.0 / diag);
            for (pos, &i) in rows.iter().enumerate() {
                if i <= j {
                    continue;
                }
                let scale = -vals[pos] / diag;
                if scale != 0.0 {
                    accumulator.axpy(scale, &columns[i]);
                }
            }
            let candidate = accumulator.take();

            let column = if candidate.nnz() <= keep_limit {
                stats.small_columns_kept += 1;
                candidate
            } else {
                let (pruned, dropped) = prune_column(&candidate, epsilon);
                stats.pruned_entries += dropped;
                pruned
            };
            stats.nnz += column.nnz();
            stats.max_column_nnz = stats.max_column_nnz.max(column.nnz());
            columns[j] = column;
        }

        Ok(SparseApproximateInverse {
            columns,
            stats,
            epsilon,
        })
    }

    /// Order of the factor (number of columns).
    pub fn order(&self) -> usize {
        self.columns.len()
    }

    /// The pruning threshold the inverse was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Column `j` of `Z̃` (an approximation of `L⁻¹ e_j`).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn column(&self, j: usize) -> &SparseVec {
        &self.columns[j]
    }

    /// Total number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.stats.nnz
    }

    /// `nnz(Z̃) / (n · log₂ n)`, the density figure reported in Table I.
    pub fn nnz_ratio(&self) -> f64 {
        let n = self.order().max(2) as f64;
        self.stats.nnz as f64 / (n * n.log2())
    }

    /// Build statistics.
    pub fn stats(&self) -> ApproxInverseStats {
        self.stats
    }

    /// Squared Euclidean distance between two columns — the effective
    /// resistance kernel `‖z̃_p − z̃_q‖²` of Eq. (22).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn column_distance_squared(&self, p: usize, q: usize) -> f64 {
        self.columns[p].distance_squared(&self.columns[q])
    }

    /// Inner product `⟨z̃_p, z̃_q⟩` of two columns.
    ///
    /// Columns of the inverse of a lower-triangular factor are themselves
    /// lower-triangular — column `j` is supported on indices `≥ j` — so the
    /// intersection of columns `p` and `q` lies entirely in
    /// `max(p, q)..n`. The merge therefore starts at that bound (found by
    /// binary search), which skips most of the longer column and is what
    /// makes the norm-table query kernel of
    /// [`SparseApproximateInverse::column_distance_squared_with_norms`]
    /// cheaper than the full union merge of
    /// [`SparseApproximateInverse::column_distance_squared`].
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn column_dot(&self, p: usize, q: usize) -> f64 {
        let bound = p.max(q);
        let a = &self.columns[p];
        let b = &self.columns[q];
        let (ai, av) = (a.indices(), a.values());
        let (bi, bv) = (b.indices(), b.values());
        let mut i = ai.partition_point(|&row| row < bound);
        let mut j = bi.partition_point(|&row| row < bound);
        let mut sum = 0.0;
        while i < ai.len() && j < bi.len() {
            match ai[i].cmp(&bi[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += av[i] * bv[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Squared Euclidean norms `‖z̃_j‖²` of every column, in column order.
    ///
    /// Query services precompute this once so a query reduces to one sparse
    /// dot product: `‖z̃_p − z̃_q‖² = ‖z̃_p‖² + ‖z̃_q‖² − 2⟨z̃_p, z̃_q⟩`.
    pub fn column_norms_squared(&self) -> Vec<f64> {
        self.columns.iter().map(|c| c.norm2_squared()).collect()
    }

    /// The effective-resistance kernel evaluated with precomputed column
    /// norms (see [`SparseApproximateInverse::column_norms_squared`]): one
    /// sparse dot product instead of a full two-column merge.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `norms_squared` is shorter
    /// than the factor order.
    pub fn column_distance_squared_with_norms(
        &self,
        p: usize,
        q: usize,
        norms_squared: &[f64],
    ) -> f64 {
        // Clamp: cancellation can produce a tiny negative value when the
        // columns are nearly identical, and resistances are nonnegative.
        (norms_squared[p] + norms_squared[q] - 2.0 * self.column_dot(p, q)).max(0.0)
    }

    /// Decomposes the inverse into its columns and build metadata, for
    /// serialization (see the `effres-io` snapshot format).
    pub fn into_parts(self) -> (Vec<SparseVec>, ApproxInverseStats, f64) {
        (self.columns, self.stats, self.epsilon)
    }

    /// Rebuilds an inverse from columns produced by
    /// [`SparseApproximateInverse::into_parts`] (or deserialized from a
    /// snapshot). The size-derived statistics (`nnz`, `max_column_nnz`) are
    /// recomputed from the columns; the build-history counters
    /// (`pruned_entries`, `small_columns_kept`) are taken from `stats`.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::InvalidConfig`] if `epsilon` is outside
    /// `[0, 1)` or any column's dimension differs from the column count.
    pub fn from_parts(
        columns: Vec<SparseVec>,
        stats: ApproxInverseStats,
        epsilon: f64,
    ) -> Result<Self, EffresError> {
        if !(0.0..1.0).contains(&epsilon) {
            return Err(EffresError::InvalidConfig {
                name: "epsilon",
                message: "must lie in [0, 1)".to_string(),
            });
        }
        let n = columns.len();
        let mut recomputed = ApproxInverseStats {
            pruned_entries: stats.pruned_entries,
            small_columns_kept: stats.small_columns_kept,
            ..ApproxInverseStats::default()
        };
        for (j, column) in columns.iter().enumerate() {
            if column.dim() != n {
                return Err(EffresError::InvalidConfig {
                    name: "columns",
                    message: format!(
                        "column {j} has dimension {} but the inverse has {n} columns",
                        column.dim()
                    ),
                });
            }
            // The query kernels rely on the lower-triangular support of the
            // columns (see `column_dot`), so the invariant is enforced here
            // rather than trusted from serialized input.
            if column.indices().first().is_some_and(|&i| i < j) {
                return Err(EffresError::InvalidConfig {
                    name: "columns",
                    message: format!(
                        "column {j} has an entry above the diagonal; \
                         inverse columns must be supported on {j}.."
                    ),
                });
            }
            recomputed.nnz += column.nnz();
            recomputed.max_column_nnz = recomputed.max_column_nnz.max(column.nnz());
        }
        Ok(SparseApproximateInverse {
            columns,
            stats: recomputed,
            epsilon,
        })
    }
}

/// Applies the `trunc_k` pruning rule: drops the largest possible set of
/// smallest-magnitude entries whose absolute values sum to at most
/// `epsilon * ‖x‖₁`. Returns the pruned vector and the number of dropped
/// entries.
fn prune_column(x: &SparseVec, epsilon: f64) -> (SparseVec, usize) {
    let norm1 = x.norm1();
    if norm1 == 0.0 || epsilon == 0.0 {
        return (x.clone(), 0);
    }
    let budget = epsilon * norm1;
    // Sort entry magnitudes ascending and find the largest prefix whose sum
    // stays within the budget.
    let mut magnitudes: Vec<f64> = x.values().iter().map(|v| v.abs()).collect();
    magnitudes.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let mut dropped = 0usize;
    let mut acc = 0.0;
    for &m in &magnitudes {
        if acc + m <= budget {
            acc += m;
            dropped += 1;
        } else {
            break;
        }
    }
    if dropped == 0 {
        return (x.clone(), 0);
    }
    let keep = x.nnz() - dropped;
    (x.truncate_to(keep), dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depth::FilledGraphDepth;
    use effres_sparse::cholesky::CholeskyFactor;
    use effres_sparse::trisolve;
    use effres_sparse::TripletMatrix;

    fn grid_laplacian(rows: usize, cols: usize, shift: f64) -> CscMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_laplacian_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    t.add_laplacian_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        t.push(0, 0, shift);
        t.to_csc()
    }

    #[test]
    fn zero_epsilon_reproduces_exact_inverse_columns() {
        let a = grid_laplacian(4, 4, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let l = chol.factor_l();
        let z = SparseApproximateInverse::from_factor(l, 0.0, 0).expect("valid");
        for j in 0..a.ncols() {
            let exact = trisolve::solve_lower_unit_sparse(l, j);
            let diff = z.column(j).diff_norm1(&exact);
            assert!(diff < 1e-12, "column {j}: diff {diff}");
        }
    }

    #[test]
    fn columns_are_nonnegative_for_laplacian_factor() {
        // Lemma 1: Z = L^{-1} is nonnegative for Laplacian Cholesky factors,
        // and pruning only removes entries, so Z̃ must stay nonnegative.
        let a = grid_laplacian(5, 5, 1e-4);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let z = SparseApproximateInverse::from_factor(chol.factor_l(), 1e-3, 4).expect("valid");
        for j in 0..a.ncols() {
            assert!(z.column(j).values().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn theorem1_error_bound_holds() {
        // ‖z_p − z̃_p‖₁ / ‖z_p‖₁ ≤ depth(p) · ε for every column.
        let a = grid_laplacian(6, 6, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let l = chol.factor_l();
        let epsilon = 1e-2;
        let z = SparseApproximateInverse::from_factor(l, epsilon, 0).expect("valid");
        let depth = FilledGraphDepth::from_factor(l);
        for p in 0..a.ncols() {
            let exact = trisolve::solve_lower_unit_sparse(l, p);
            let err = z.column(p).diff_norm1(&exact) / exact.norm1();
            let bound = depth.depth(p) as f64 * epsilon + 1e-12;
            assert!(
                err <= bound,
                "column {p}: error {err} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn pruning_reduces_nnz_monotonically_in_epsilon() {
        let a = grid_laplacian(8, 8, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let l = chol.factor_l();
        let tight = SparseApproximateInverse::from_factor(l, 1e-4, 0).expect("valid");
        let loose = SparseApproximateInverse::from_factor(l, 1e-1, 0).expect("valid");
        assert!(loose.nnz() < tight.nnz());
        assert!(loose.stats().pruned_entries > 0);
        assert!(loose.nnz_ratio() < tight.nnz_ratio());
    }

    #[test]
    fn small_columns_are_kept_exactly() {
        // A diagonal factor has single-entry columns: no pruning can occur.
        let mut t = TripletMatrix::new(4, 4);
        for j in 0..4 {
            t.push(j, j, 2.0);
        }
        let z = SparseApproximateInverse::from_factor(&t.to_csc(), 0.5, 4).expect("valid");
        assert_eq!(z.stats().small_columns_kept, 4);
        for j in 0..4 {
            assert_eq!(z.column(j).nnz(), 1);
            assert!((z.column(j).get(j) - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn column_distance_matches_effective_resistance_on_path() {
        // For a path graph grounded at node 0, the effective resistance
        // between adjacent nodes i and i+1 is 1 (unit conductances), and
        // Z = L^{-1} reproduces it through ‖z_p − z_q‖².
        let n = 6;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.add_laplacian_edge(i, i + 1, 1.0);
        }
        t.push(0, 0, 1e3); // strong ground so the matrix is well conditioned
        let a = t.to_csc();
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let z = SparseApproximateInverse::from_factor(chol.factor_l(), 0.0, 0).expect("valid");
        // R(2, 3) should be close to 1 (exact up to the 1e-3 ground leakage).
        let r = z.column_distance_squared(2, 3);
        assert!((r - 1.0).abs() < 1e-2, "R = {r}");
    }

    #[test]
    fn column_dot_matches_full_sparse_dot() {
        let a = grid_laplacian(6, 6, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let z = SparseApproximateInverse::from_factor(chol.factor_l(), 1e-3, 2).expect("valid");
        let norms = z.column_norms_squared();
        for &(p, q) in &[(0, 35), (3, 3), (10, 20), (34, 35), (0, 1)] {
            let fast = z.column_dot(p, q);
            let full = z.column(p).dot(z.column(q));
            assert!((fast - full).abs() < 1e-12, "({p},{q}): {fast} vs {full}");
            let d_fast = z.column_distance_squared_with_norms(p, q, &norms);
            let d_full = z.column_distance_squared(p, q);
            assert!(
                (d_fast - d_full).abs() <= 1e-9 * d_full.max(1.0),
                "({p},{q}): {d_fast} vs {d_full}"
            );
        }
    }

    #[test]
    fn from_parts_rejects_entries_above_the_diagonal() {
        let columns = vec![
            SparseVec::from_sorted(2, vec![0], vec![1.0]),
            SparseVec::from_sorted(2, vec![0, 1], vec![0.5, 1.0]), // 0 < 1: invalid
        ];
        let stats = ApproxInverseStats::default();
        assert!(SparseApproximateInverse::from_parts(columns, stats, 0.0).is_err());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let a = grid_laplacian(2, 2, 1.0);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        assert!(SparseApproximateInverse::from_factor(chol.factor_l(), 1.0, 0).is_err());
        assert!(SparseApproximateInverse::from_factor(chol.factor_l(), -0.1, 0).is_err());
        let rect = CscMatrix::zeros(2, 3);
        assert!(SparseApproximateInverse::from_factor(&rect, 0.1, 0).is_err());
        // Missing diagonal.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, -0.5);
        assert!(SparseApproximateInverse::from_factor(&t.to_csc(), 0.1, 0).is_err());
    }

    #[test]
    fn prune_column_respects_budget() {
        let x = SparseVec::from_sorted(6, vec![0, 1, 2, 3, 4], vec![10.0, 0.1, 0.2, 5.0, 0.05]);
        let (pruned, dropped) = prune_column(&x, 0.03);
        // Budget = 0.03 * 15.35 ≈ 0.46: can drop 0.05 + 0.1 + 0.2 = 0.35 but
        // not also 5.0.
        assert_eq!(dropped, 3);
        assert_eq!(pruned.nnz(), 2);
        assert!(pruned.get(0) == 10.0 && pruned.get(3) == 5.0);
        let (unchanged, zero_dropped) = prune_column(&x, 0.0);
        assert_eq!(zero_dropped, 0);
        assert_eq!(unchanged.nnz(), 5);
    }
}
